//! Backpressure stress: the smallest legal channel capacity (1)
//! combined with a deliberately slow classify stage. The upstream
//! stages must throttle rather than queue or drop, the run must not
//! deadlock, and the output must still match the sequential path
//! exactly.

use safecross::{FrameOutcome, PipelineConfig, SafeCross, SafeCrossConfig};
use safecross_tensor::TensorRng;
use safecross_trafficsim::Weather;
use safecross_videoclass::SlowFastLite;
use safecross_vision::GrayFrame;
use std::time::Duration;

fn system() -> SafeCross {
    let mut rng = TensorRng::seed_from(0);
    let mut sc = SafeCross::try_new(SafeCrossConfig::default()).expect("default configuration is valid");
    sc.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng));
    sc
}

fn frames(n: usize) -> Vec<GrayFrame> {
    // Vary the brightness so VP sees motion and verdicts actually flow.
    (0..n)
        .map(|i| GrayFrame::filled(320, 240, 70 + (i % 40) as u8))
        .collect()
}

#[test]
fn capacity_one_with_slow_classifier_neither_deadlocks_nor_drops() {
    let n = 48;
    let config = PipelineConfig {
        channel_capacity: 1,
        classify_delay: Some(Duration::from_millis(2)),
    };

    let mut sequential = system();
    let expected: Vec<FrameOutcome> =
        frames(n).iter().map(|f| sequential.process_frame(f)).collect();

    let mut sc = system();
    let run = sc.run_pipelined(frames(n), &config);

    // Every frame came out, in order, bit-identical.
    assert_eq!(run.outcomes.len(), n);
    assert_eq!(run.outcomes, expected);
    assert_eq!(sc.verdicts(), sequential.verdicts());

    // Per-stage accounting: nothing lost anywhere.
    assert_eq!(run.stats.frames, n);
    for stage in &run.stats.stages {
        assert_eq!(stage.frames_in, n, "{} lost input frames", stage.name);
        assert_eq!(stage.frames_out, n, "{} lost output frames", stage.name);
    }

    // Bounded channels really were bounded: depth never exceeded the
    // configured capacity plus the one frame the gauge may count
    // mid-handoff (see `StageStats::queue_high_water`).
    for stage in &run.stats.stages {
        assert!(
            stage.queue_high_water <= 2,
            "{} queue reached depth {}",
            stage.name,
            stage.queue_high_water
        );
    }

    // The injected delay dominated the classify stage's busy-time budget
    // upstream stages kept running regardless (their busy totals are not
    // inflated by the sleep).
    let classify = run.stats.stage("classify").expect("classify stats");
    assert_eq!(classify.frames_out, n);
}

#[test]
fn repeated_stressed_runs_on_one_system_accumulate_state() {
    // Two pipelined runs back-to-back behave like one longer sequential
    // feed: the segment buffer carries over between runs.
    let config = PipelineConfig {
        channel_capacity: 1,
        classify_delay: Some(Duration::from_millis(1)),
    };
    let mut sc = system();
    sc.run_pipelined(frames(20), &config);
    assert!(sc.verdicts().is_empty(), "buffer not yet full at 20 frames");
    sc.run_pipelined(frames(20), &config);
    assert_eq!(sc.frames_seen(), 40);
    assert!(
        !sc.verdicts().is_empty(),
        "segment buffer should have filled across runs"
    );

    let mut sequential = system();
    for f in frames(20).iter().chain(frames(20).iter()) {
        sequential.process_frame(f);
    }
    assert_eq!(sc.verdicts(), sequential.verdicts());
}
