//! End-to-end continual learning: a fleet serving a stream whose scene
//! drifts onto a *degraded* checkpoint must harvest the low-margin
//! clips, few-shot-adapt a challenger in the background, grade it on
//! held-out canary clips, and promote it through the switcher — while
//! every stream the learner never touched stays bit-identical to the
//! deterministic reference executor.
//!
//! The distribution shift is injected at the model: the Rain base
//! checkpoint's weights are scaled toward zero (near-uniform logits,
//! ~0.5 confidence), while Daytime and Snow are sharpened (saturated
//! softmax, ~1.0 confidence). Only the shifted stream's rain clips
//! fall under the harvest margin, so adaptation pressure lands exactly
//! where the paper's per-intersection adaptation loop would put it.

use safecross::SafeCrossConfig;
use safecross_learn::{ContinualLearner, LearnConfig};
use safecross_modelswitch::SwitchRecord;
use safecross_serve::{FleetServer, PromotionOutcome, ServeConfig, StreamSpec};
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{RenderConfig, Renderer, Scenario, Simulator, Weather};
use safecross_videoclass::{SlowFastLite, VideoClassifier};
use safecross_vision::GrayFrame;
use std::collections::HashMap;

const W: usize = 64;
const H: usize = 48;
const FRAMES: usize = 48;
const ROUNDS: usize = 2;

fn config(shards: usize) -> ServeConfig {
    ServeConfig::builder()
        .shards(shards)
        .shedding(false)
        .stream(SafeCrossConfig {
            frame_width: W,
            frame_height: H,
            segment_frames: 8,
            scene_window: 4,
            min_confidence: 0.0,
            ..SafeCrossConfig::default()
        })
        .build()
        .expect("config is valid")
}

/// One base model per weather, with the distribution shift baked in:
/// Rain is degraded toward zero weights (near-uniform logits, ~0.5
/// confidence on every rain clip), while Daytime and Snow get a large
/// class bias stamped into their heads so nothing they serve ever
/// falls under the harvest margin (~0.9997 confidence).
fn shifted_models() -> Vec<(Weather, SlowFastLite)> {
    let mut rng = TensorRng::seed_from(3);
    Weather::ALL
        .iter()
        .map(|&w| {
            let mut model = SlowFastLite::new(2, &mut rng);
            let mut state = model.state_dict();
            if w == Weather::Rain {
                for (_, tensor) in state.iter_mut() {
                    for v in tensor.data_mut() {
                        *v *= 0.05;
                    }
                }
            } else {
                for (name, tensor) in state.iter_mut() {
                    if name.ends_with("bias") && tensor.len() == 2 {
                        tensor.data_mut().copy_from_slice(&[8.0, 0.0]);
                    }
                }
            }
            model.load_state_dict(&state);
            (w, model)
        })
        .collect()
}

fn fleet(shards: usize, streams: usize) -> FleetServer {
    let mut fleet = FleetServer::new(config(shards)).expect("valid config");
    for (w, m) in shifted_models() {
        fleet.register_model(w, m).expect("no streams yet");
    }
    for _ in 0..streams {
        fleet.open_stream(StreamSpec::new()).expect("models registered");
    }
    fleet
}

fn rendered(weather: Weather, frames: usize, seed: u64) -> Vec<GrayFrame> {
    let mut sim = Simulator::new(Scenario::new(weather, true, 0.15), seed);
    let rc = RenderConfig {
        width: W,
        height: H,
        ..RenderConfig::default()
    };
    let mut renderer = Renderer::new(rc, weather, seed);
    (0..frames)
        .map(|_| {
            sim.step(DT);
            renderer.render(&sim)
        })
        .collect()
}

/// Stream 1 carries the injected shift: it drifts into rain — the
/// scene served by the degraded checkpoint — and stays there. Streams
/// 0 and 2 never leave scenes served by sharpened checkpoints.
fn shifted_feeds() -> Vec<Vec<GrayFrame>> {
    let mut rain = rendered(Weather::Daytime, 16, 21);
    rain.extend(rendered(Weather::Rain, FRAMES - 16, 22));
    let mut snow = rendered(Weather::Daytime, 24, 31);
    snow.extend(rendered(Weather::Snow, FRAMES - 24, 32));
    vec![rendered(Weather::Daytime, FRAMES, 11), rain, snow]
}

fn learn_config() -> LearnConfig {
    LearnConfig {
        seed: 42,
        // Sharpened checkpoints serve well above this; the degraded
        // Rain checkpoint's near-uniform logits land far below it.
        harvest_below: 0.9,
        min_support: 4,
        canary_k: 4,
        adapt_steps: 5,
        adapt_lr: 0.1,
        min_win: 0.0,
        max_generations: 8,
        ..LearnConfig::default()
    }
}

fn switch_key(log: &[SwitchRecord]) -> Vec<(String, u64)> {
    log.iter().map(|r| (r.model.clone(), r.frame)).collect()
}

#[test]
fn distribution_shift_is_harvested_adapted_and_promoted() {
    let streams = shifted_feeds().len();

    // Ground truth: the reference executor, no learner installed.
    let mut reference = fleet(1, streams);
    for _ in 0..ROUNDS {
        reference
            .run_reference(shifted_feeds())
            .expect("reference runs");
    }

    // The learning fleet: sharded, with the continual learner wired to
    // the shared store and telemetry.
    let mut learning = fleet(2, streams);
    let templates: HashMap<Weather, SlowFastLite> = shifted_models().into_iter().collect();
    let learner = ContinualLearner::new(
        learn_config(),
        learning.model_store().clone(),
        templates,
        learning.telemetry(),
    );
    learning.set_learn_hook(learner.clone());
    for round in 0..ROUNDS {
        let report = learning.run(shifted_feeds()).expect("learning fleet runs");
        assert_eq!(
            report.completed,
            (FRAMES * streams) as u64,
            "round {round} lost frames while learning"
        );
    }

    // The pipeline fired end to end: harvest → adapt → canary →
    // promote, on the shifted stream's rain lane.
    let stats = learner.stats();
    assert!(stats.harvested > 0, "the degraded checkpoint harvested nothing");
    assert!(stats.adaptations > 0, "no adaptation ever ran");
    assert!(stats.activated >= 1, "no challenger was promoted: {stats:?}");
    let records = learner.records();
    let promoted = records
        .iter()
        .find(|r| {
            r.stream == 1
                && r.weather == Weather::Rain
                && r.outcome == Some(PromotionOutcome::Activated)
        })
        .unwrap_or_else(|| panic!("no activated rain promotion on stream 1: {records:?}"));
    assert!(
        promoted.challenger_margin > promoted.incumbent_margin,
        "journaled canary margins do not show a strict win: {promoted:?}"
    );
    assert!(promoted.canary_clips >= 1, "canary graded zero held-out clips");
    assert_eq!(promoted.parent, Weather::Rain.label(), "first promotion's parent");

    // The learner's binding moved off the base checkpoint, the
    // challenger is live in the store, and the stream's switch log
    // shows it activated through the switcher's pipelined-swap path.
    let binding = learner.binding(1, Weather::Rain);
    assert_ne!(binding, Weather::Rain.label(), "binding never moved");
    let store = learning.model_store();
    assert!(store.contains(&binding), "bound challenger missing from store");
    let handles = learning.handles();
    let promoted_log = handles[1].session(&learning).switch_log();
    assert!(
        promoted_log.iter().any(|r| r.model.contains('#')),
        "no challenger activation in the promoted stream's switch log"
    );

    // Streams the learner never promoted are bit-identical to the
    // reference executor — verdicts and switch sequences alike.
    let ref_handles = reference.handles();
    for s in [0usize, 2] {
        assert_eq!(
            ref_handles[s].verdicts(&reference),
            handles[s].verdicts(&learning),
            "stream {s} verdicts diverged under a learner that never touched it"
        );
        assert_eq!(
            switch_key(&ref_handles[s].session(&reference).switch_log()),
            switch_key(&handles[s].session(&learning).switch_log()),
            "stream {s} switch log diverged under a learner that never touched it"
        );
    }

    // Store accounting stays exact with challengers registered.
    assert_eq!(
        store.logical_bytes(),
        store.stored_bytes() + store.dedup_bytes(),
        "store accounting drifted across adaptation and promotion"
    );
}

/// A fleet with no learner must behave exactly as before the learn
/// hook existed: no `learn.*` telemetry, no promotions, sharded output
/// bit-identical to the reference executor (the hook seam is free when
/// unused).
#[test]
fn fleet_without_a_learner_is_unchanged_by_the_hook_seam() {
    let streams = shifted_feeds().len();
    let mut reference = fleet(1, streams);
    reference
        .run_reference(shifted_feeds())
        .expect("reference runs");
    let mut sharded = fleet(2, streams);
    let report = sharded.run(shifted_feeds()).expect("sharded run completes");
    assert_eq!(report.completed, (FRAMES * streams) as u64);
    let ref_handles = reference.handles();
    let got_handles = sharded.handles();
    for s in 0..streams {
        assert_eq!(
            ref_handles[s].verdicts(&reference),
            got_handles[s].verdicts(&sharded),
            "stream {s} verdicts diverged with no learner installed"
        );
    }
}
