//! Concurrency contract of the telemetry registry: handles are shared
//! across threads without locks on the hot path, and no update is lost
//! — counters, gauge extrema, histogram count/sum, and the bounded
//! journal all reconcile exactly after a many-thread hammer.

use safecross_telemetry::Registry;
use std::thread;

const THREADS: usize = 8;
const OPS: usize = 2_000;

#[test]
fn hammered_registry_loses_nothing() {
    let registry = Registry::with_journal_capacity(THREADS * OPS);
    thread::scope(|s| {
        for t in 0..THREADS {
            let registry = registry.clone();
            s.spawn(move || {
                // Half the threads fetch handles once (the documented hot
                // path), the other half re-look-up every time, so the
                // get-or-create path is hammered too.
                if t % 2 == 0 {
                    let counter = registry.counter("hammer.count");
                    let hist = registry.histogram("hammer.ms");
                    let gauge = registry.gauge("hammer.peak");
                    for i in 0..OPS {
                        counter.inc();
                        hist.observe_ms(1.0);
                        gauge.set_max((t * OPS + i) as f64);
                    }
                } else {
                    for i in 0..OPS {
                        registry.counter("hammer.count").inc();
                        registry.histogram("hammer.ms").observe_ms(1.0);
                        registry.gauge("hammer.peak").set_max((t * OPS + i) as f64);
                        registry.event(
                            "hammer",
                            vec![("thread".to_owned(), (t as u64).into())],
                        );
                    }
                }
            });
        }
    });

    let total = (THREADS * OPS) as u64;
    let snap = registry.snapshot();
    assert_eq!(snap.counter("hammer.count"), Some(total));

    let hist = snap.histogram("hammer.ms").expect("histogram exists");
    assert_eq!(hist.count, total, "lost histogram observations");
    // The f64 CAS loop makes the sum exact: every observation was 1.0 ms.
    assert!(
        (hist.sum_ms - total as f64).abs() < 1e-6,
        "lost histogram sum: {}",
        hist.sum_ms
    );
    assert_eq!(hist.min_ms, 1.0);
    assert_eq!(hist.max_ms, 1.0);

    // set_max keeps the global maximum across all interleavings.
    let expected_peak = (THREADS * OPS - 1) as f64;
    assert_eq!(snap.gauge("hammer.peak"), Some(expected_peak));

    // Journal: the odd threads each logged OPS events, none dropped at
    // this capacity, and sequence numbers are unique.
    let events = registry.events();
    assert_eq!(events.len(), (THREADS / 2) * OPS);
    assert_eq!(registry.events_dropped(), 0);
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    seqs.dedup();
    assert_eq!(seqs.len(), events.len(), "duplicate journal sequence numbers");
}

#[test]
fn hammered_disabled_registry_stays_inert() {
    let registry = Registry::disabled();
    thread::scope(|s| {
        for _ in 0..THREADS {
            let registry = registry.clone();
            s.spawn(move || {
                let counter = registry.counter("idle.count");
                let hist = registry.histogram("idle.ms");
                for _ in 0..OPS {
                    counter.inc();
                    hist.observe_ms(5.0);
                    let timer = hist.start_timer();
                    drop(timer);
                    registry.event("idle", vec![]);
                }
            });
        }
    });
    let snap = registry.snapshot();
    assert_eq!(snap.counter("idle.count"), Some(0));
    assert_eq!(snap.histogram("idle.ms").map(|h| h.count), Some(0));
    assert!(snap.events.is_empty());
}
