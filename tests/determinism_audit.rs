//! The determinism audit: the record/replay contract only holds if no
//! serve- or replay-path code consults ambient entropy or wall-clock
//! time to make decisions. Two layers of defence:
//!
//! 1. A source scan over `crates/serve/src`, `crates/replay/src`,
//!    `crates/modelswitch/src`, and `crates/learn/src` for
//!    ambient-entropy constructors. Every
//!    RNG in those paths must be seeded from configuration (the shim
//!    `rand` exposes `thread_rng`-style entry points; none may appear
//!    here).
//! 2. Repeated-run equality: recording the same fleet input twice
//!    yields byte-identical traces, and a seeded fault plan consulted
//!    twice yields the same schedule.

use safecross::SafeCrossConfig;
use safecross_replay::{record_reference_run, ChaosConfig, FaultPlan, FeedChaos, ModelSpec};
use safecross_serve::ServeConfig;
use safecross_trafficsim::Weather;
use safecross_vision::GrayFrame;
use std::path::Path;
use std::time::Duration;

/// Constructors that smuggle in nondeterminism. `SystemTime` is banned
/// outright in these paths; `Instant` is allowed for *measuring* (it
/// never feeds back into verdicts — that's what reference mode pins).
const BANNED: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "rand::random",
    "SystemTime",
    "getrandom",
];

fn scan_dir(dir: &Path, violations: &mut Vec<String>) {
    for entry in std::fs::read_dir(dir).expect("source dir exists") {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            scan_dir(&path, violations);
            continue;
        }
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("readable source");
        for (lineno, line) in source.lines().enumerate() {
            // The audit scans code, not prose about the audit itself.
            let code = line.split("//").next().unwrap_or("");
            for banned in BANNED {
                if code.contains(banned) {
                    violations.push(format!(
                        "{}:{}: `{banned}` — ambient entropy/time in a replay path",
                        path.display(),
                        lineno + 1
                    ));
                }
            }
        }
    }
}

#[test]
fn serve_and_replay_paths_use_no_ambient_entropy() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    for krate in ["serve", "replay", "modelswitch", "learn"] {
        scan_dir(&root.join("crates").join(krate).join("src"), &mut violations);
    }
    assert!(
        violations.is_empty(),
        "ambient entropy found in replay-critical paths:\n{}",
        violations.join("\n")
    );
}

#[test]
fn recording_the_same_input_twice_is_byte_identical() {
    let config = ServeConfig::builder()
        .shards(1)
        .shedding(false)
        .stream(SafeCrossConfig {
            frame_width: 32,
            frame_height: 24,
            segment_frames: 8,
            scene_window: 2,
            min_confidence: 0.0,
            ..SafeCrossConfig::default()
        })
        .build()
        .expect("config is valid");
    let spec = ModelSpec {
        seed: 41,
        classes: 2,
        weathers: vec![Weather::Daytime, Weather::Rain],
    };
    let feeds = || -> Vec<Vec<GrayFrame>> {
        (0..2)
            .map(|s| {
                (0..16)
                    .map(|t| GrayFrame::filled(32, 24, ((s * 16 + t) * 5 % 251) as u8))
                    .collect()
            })
            .collect()
    };
    let (a, _) = record_reference_run(config, &spec, feeds(), Duration::from_millis(10))
        .expect("first recording");
    let (b, _) = record_reference_run(config, &spec, feeds(), Duration::from_millis(10))
        .expect("second recording");
    assert_eq!(
        a.to_bytes(),
        b.to_bytes(),
        "same input, same config, same seed — the traces must be byte-identical"
    );
}

#[test]
fn fault_schedules_replay_from_their_seed_alone() {
    let config = ChaosConfig {
        seed: 1234,
        worker_death_period: 5,
        worker_stall_period: 11,
        worker_stall_for: Duration::from_micros(100),
        oom_period: 4,
        trainer_death_period: 6,
        challenger_oom_period: 3,
    };
    let (a, b) = (FaultPlan::new(config), FaultPlan::new(config));
    for worker in 0..8 {
        for batch in 0..500 {
            assert_eq!(a.would_kill(worker, batch), b.would_kill(worker, batch));
            assert_eq!(a.would_stall(worker, batch), b.would_stall(worker, batch));
        }
    }
    for name in ["daytime", "rain", "snow"] {
        for attempt in 0..500 {
            assert_eq!(a.would_oom(name, attempt), b.would_oom(name, attempt));
        }
    }
    // Continual-learning chaos schedules are pure too.
    for stream in 0..4 {
        for attempt in 0..200 {
            assert_eq!(
                a.would_kill_trainer(stream, Weather::Rain, attempt),
                b.would_kill_trainer(stream, Weather::Rain, attempt)
            );
            assert_eq!(
                a.would_oom_challenger("rain#s0g1", attempt),
                b.would_oom_challenger("rain#s0g1", attempt)
            );
        }
    }
    // Feed chaos too: skewed intervals and stall schedules are pure.
    let chaos = FeedChaos {
        seed: 1234,
        stall_streams: vec![0, 3],
        stall_every: 7,
        skew: true,
        ..FeedChaos::default()
    };
    let base = Duration::from_millis(5);
    for stream in 0..8 {
        assert_eq!(
            chaos.interval_for(stream, base),
            chaos.interval_for(stream, base)
        );
        for frame in 0..100 {
            assert_eq!(
                chaos.would_stall(stream, frame),
                chaos.would_stall(stream, frame)
            );
        }
    }
}
