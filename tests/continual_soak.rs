//! The continual-learning soak: repeated fleet rounds with an eager
//! learner that promotes a challenger on every adaptation, run under a
//! counting global allocator with a hard live-memory ceiling and a
//! deliberately tight store ceiling. Generations of challengers churn
//! through the registry; the LRU evictor must keep reclaiming retired
//! checkpoints so that (1) eviction actually fires, (2) the pinned
//! base checkpoints survive untouched, (3) the store accounting stays
//! exact, and (4) the whole process never crosses the live-memory
//! high-water ceiling. The file holds a single test: the allocator
//! counters are process-global.

use safecross::SafeCrossConfig;
use safecross_learn::{ContinualLearner, LearnConfig};
use safecross_serve::{FleetServer, ServeConfig, StreamSpec};
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{RenderConfig, Renderer, Scenario, Simulator, Weather};
use safecross_videoclass::SlowFastLite;
use safecross_vision::GrayFrame;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    HIGH_WATER.fetch_max(live, Ordering::Relaxed);
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counters
// are side effects only.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc`; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc(layout)
    }

    // SAFETY: same contract as `System::dealloc`; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    // SAFETY: same contract as `System::realloc`; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        on_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Hard ceiling on live heap bytes for the whole soak — same budget as
/// the chaos soak: the working set here is a few tens of MB, so 256 MB
/// catches unbounded challenger accumulation with room for allocator
/// bookkeeping noise.
const MEMORY_CEILING: usize = 256 * 1024 * 1024;

const W: usize = 64;
const H: usize = 48;
const FRAMES: usize = 48;

fn rendered(weather: Weather, frames: usize, seed: u64) -> Vec<GrayFrame> {
    let mut sim = Simulator::new(Scenario::new(weather, true, 0.15), seed);
    let rc = RenderConfig {
        width: W,
        height: H,
        ..RenderConfig::default()
    };
    let mut renderer = Renderer::new(rc, weather, seed);
    (0..frames)
        .map(|_| {
            sim.step(DT);
            renderer.render(&sim)
        })
        .collect()
}

fn feeds() -> Vec<Vec<GrayFrame>> {
    let mut rain = rendered(Weather::Daytime, 24, 2);
    rain.extend(rendered(Weather::Rain, FRAMES - 24, 21));
    let mut snow = rendered(Weather::Daytime, 24, 3);
    snow.extend(rendered(Weather::Snow, FRAMES - 24, 31));
    vec![rendered(Weather::Daytime, FRAMES, 1), rain, snow]
}

#[test]
fn challenger_churn_stays_bounded_under_the_lru_evictor() {
    let config = ServeConfig::builder()
        .shards(2)
        .shedding(false)
        .stream(SafeCrossConfig {
            frame_width: W,
            frame_height: H,
            segment_frames: 8,
            scene_window: 4,
            min_confidence: 0.0,
            ..SafeCrossConfig::default()
        })
        .build()
        .expect("config is valid");
    let mut fleet = FleetServer::new(config).expect("valid config");
    let mut rng = TensorRng::seed_from(3);
    let mut templates: HashMap<Weather, SlowFastLite> = HashMap::new();
    for &w in Weather::ALL.iter() {
        let model = SlowFastLite::new(2, &mut rng);
        templates.insert(w, model.clone());
        fleet.register_model(w, model).expect("no streams yet");
    }
    let streams = feeds().len();
    for _ in 0..streams {
        fleet.open_stream(StreamSpec::new()).expect("models registered");
    }

    // An eager learner: every clip harvests, every adaptation wins its
    // canary, generations never run out — maximum checkpoint churn.
    let learner = ContinualLearner::new(
        LearnConfig {
            seed: 7,
            harvest_below: 1.1,
            min_support: 2,
            min_win: -1.0,
            max_generations: 64,
            ..LearnConfig::default()
        },
        fleet.model_store().clone(),
        templates,
        fleet.telemetry(),
    );
    fleet.set_learn_hook(learner.clone());

    // Store ceiling just above the pinned bases: every challenger that
    // outlives its promotion pushes the registry over and the LRU
    // evictor must reclaim retired generations to get back under.
    let store = fleet.model_store().clone();
    let base_bytes = store.stored_bytes();
    assert!(base_bytes > 0, "base checkpoints registered");
    store.set_memory_ceiling(Some(base_bytes + base_bytes / 2));

    for round in 0..6 {
        let report = fleet.run(feeds()).expect("soak round completes");
        assert_eq!(
            report.completed,
            (FRAMES * streams) as u64,
            "round {round} lost frames under challenger churn"
        );
    }

    let stats = learner.stats();
    assert!(stats.adaptations > 0, "the soak never adapted anything");
    assert!(stats.activated > 0, "the soak never promoted anything");
    assert!(
        store.evictions() > 0,
        "challenger churn never triggered the LRU evictor (stored {} bytes, ceiling {:?})",
        store.stored_bytes(),
        store.memory_ceiling()
    );

    // The pinned base checkpoints are untouchable: still stored, still
    // serving as the eviction fallback.
    for &w in Weather::ALL.iter() {
        assert!(
            store.state_dict(w.label()).is_some(),
            "pinned base checkpoint {} was evicted",
            w.label()
        );
    }

    // Accounting is exact through register/evict/remove churn.
    assert_eq!(
        store.logical_bytes(),
        store.stored_bytes() + store.dedup_bytes(),
        "store accounting drifted under eviction churn"
    );
    assert!(store.evicted_bytes() > 0, "evictions freed no bytes");

    let high = HIGH_WATER.load(Ordering::Relaxed);
    assert!(
        high < MEMORY_CEILING,
        "soak high-water {high} bytes crossed the {MEMORY_CEILING}-byte ceiling"
    );
}
