//! The shard-per-core serving contract at scale, pinned three ways:
//!
//! 1. **Shard-count bit-identity**: the shard count (1, 2, 4, 7 —
//!    including counts that don't divide the stream count and a count
//!    above it) changes executor interleaving and steal traffic, never
//!    one bit of any stream's verdict or switch sequence versus the
//!    deterministic reference executor.
//! 2. **Shed fairness under zipf load**: when a few hot streams flood
//!    the fleet, the shedding pain stays on the offenders — no healthy
//!    stream (one whose feed fits its own admission queue) sheds at
//!    all, and fleet accounting balances exactly.
//! 3. **The 10k-stream lossless soak**: ten thousand zipf-skewed
//!    synthetic streams served losslessly on a handful of shards, under
//!    a counting global allocator with the same 256 MB live-memory
//!    ceiling the chaos soak enforces. Sessions are inert state
//!    machines; 10k streams must cost 10k small structs, not 10k
//!    threads. The file holds the allocator-dependent test plus the
//!    cheap ones: the allocator counters are process-global, and the
//!    lighter tests' allocations are noise against the 256 MB bar.
//!
//! Set `SAFECROSS_SCALE_STREAMS` to shrink the soak (CI smoke uses
//! 1000; the default is the full 10 000).

use safecross::SafeCrossConfig;
use safecross_serve::{
    BoxedSource, FleetServer, FrameSource, ServeConfig, SourcePoll, StreamSpec,
};
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{RenderConfig, Renderer, Scenario, Simulator, Weather};
use safecross_videoclass::SlowFastLite;
use safecross_vision::GrayFrame;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    HIGH_WATER.fetch_max(live, Ordering::Relaxed);
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counters
// are side effects only.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc`; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc(layout)
    }

    // SAFETY: same contract as `System::dealloc`; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    // SAFETY: same contract as `System::realloc`; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        on_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Same ceiling as `tests/chaos_soak.rs`: live heap bytes for the whole
/// run, sessions and queues and models included.
const MEMORY_CEILING: usize = 256 * 1024 * 1024;

const W: usize = 64;
const H: usize = 48;

fn shared_models(seed: u64) -> Vec<(Weather, SlowFastLite)> {
    let mut rng = TensorRng::seed_from(seed);
    Weather::ALL
        .iter()
        .map(|&w| (w, SlowFastLite::new(2, &mut rng)))
        .collect()
}

fn small_stream_config() -> SafeCrossConfig {
    SafeCrossConfig {
        frame_width: W,
        frame_height: H,
        segment_frames: 8,
        scene_window: 4,
        min_confidence: 0.0,
        ..SafeCrossConfig::default()
    }
}

/// 10k-soak geometry: a surveillance thumbnail stream. Per-session
/// state (the background model) and queued-frame bytes both scale with
/// frame area, and the ceiling prices the whole fleet.
const TW: usize = 32;
const TH: usize = 24;

fn tiny_stream_config() -> SafeCrossConfig {
    SafeCrossConfig {
        frame_width: TW,
        frame_height: TH,
        ..small_stream_config()
    }
}

fn fleet(config: ServeConfig, models: &[(Weather, SlowFastLite)], streams: usize) -> FleetServer {
    let mut fleet = FleetServer::new(config).expect("valid config");
    for (w, m) in models {
        fleet.register_model(*w, m.clone()).expect("models first");
    }
    for _ in 0..streams {
        fleet.open_stream(StreamSpec::new()).expect("models registered");
    }
    fleet
}

fn rendered(weather: Weather, frames: usize, seed: u64) -> Vec<GrayFrame> {
    let mut sim = Simulator::new(Scenario::new(weather, true, 0.15), seed);
    let rc = RenderConfig {
        width: W,
        height: H,
        ..RenderConfig::default()
    };
    let mut renderer = Renderer::new(rc, weather, seed);
    (0..frames)
        .map(|_| {
            sim.step(DT);
            renderer.render(&sim)
        })
        .collect()
}

/// Eight streams in mixed regimes so batches interleave weathers and
/// switch logs are non-trivial.
fn sweep_feeds() -> Vec<Vec<GrayFrame>> {
    (0..8)
        .map(|i| {
            let seed = i as u64 + 1;
            match i % 4 {
                0 => rendered(Weather::Daytime, 40, seed),
                1 => {
                    let mut f = rendered(Weather::Daytime, 20, seed);
                    f.extend(rendered(Weather::Rain, 20, 100 + seed));
                    f
                }
                2 => {
                    let mut f = rendered(Weather::Snow, 20, seed);
                    f.extend(rendered(Weather::Daytime, 20, 100 + seed));
                    f
                }
                _ => rendered(Weather::Rain, 40, seed),
            }
        })
        .collect()
}

#[test]
fn every_shard_count_is_bit_identical_to_the_reference_executor() {
    let models = shared_models(3);
    let feeds = sweep_feeds();
    let total: u64 = feeds.iter().map(|f| f.len() as u64).sum();

    let config = |shards: usize| {
        ServeConfig::builder()
            .shards(shards)
            .shedding(false)
            .batch_max(3)
            .stream(small_stream_config())
            .build()
            .expect("valid config")
    };

    let mut reference = fleet(config(1), &models, feeds.len());
    let ref_report = reference
        .run_reference(feeds.clone())
        .expect("reference runs");
    assert_eq!(ref_report.completed, total);
    let ref_handles = reference.handles();

    // 7 does not divide 8 and exceeds half of it; the mix catches both
    // uneven partitions and shards that mostly steal.
    for shards in [1, 2, 4, 7] {
        let mut sharded = fleet(config(shards), &models, feeds.len());
        let report = sharded
            .run(feeds.clone())
            .expect("sharded run succeeds");
        assert_eq!(
            report.completed, total,
            "{shards} shards: lossless mode completed every frame"
        );
        assert_eq!(report.shed, 0);
        let handles = sharded.handles();
        for (i, (r, s)) in ref_handles.iter().zip(&handles).enumerate() {
            assert_eq!(
                r.verdicts(&reference),
                s.verdicts(&sharded),
                "stream {i} verdicts diverged at {shards} shards"
            );
            assert_eq!(
                r.session(&reference).frames_seen(),
                s.session(&sharded).frames_seen(),
                "stream {i} frame count diverged at {shards} shards"
            );
            let want = r.session(&reference).switch_log();
            let got = s.session(&sharded).switch_log();
            assert_eq!(want, got, "stream {i} switch log diverged at {shards} shards");
        }
    }
}

// ---------------------------------------------------------------------
// Synthetic sources for the scale runs: frames are generated on poll,
// never materialised up front — 10k pre-rendered feeds would hold
// hundreds of MB of pixels before the run started.
// ---------------------------------------------------------------------

struct SynthSource {
    width: usize,
    height: usize,
    remaining: usize,
    tick: u8,
}

impl SynthSource {
    fn new(width: usize, height: usize, frames: usize, phase: u8) -> Self {
        SynthSource {
            width,
            height,
            remaining: frames,
            tick: phase,
        }
    }

    fn next_frame(&mut self) -> GrayFrame {
        self.remaining -= 1;
        self.tick = self.tick.wrapping_add(1);
        // Brightness wobbles inside the daytime band so frames are not
        // byte-identical but never trip a scene switch.
        GrayFrame::filled(self.width, self.height, 96 + (self.tick % 16))
    }
}

impl FrameSource for SynthSource {
    fn poll(&mut self, _now: Instant) -> SourcePoll {
        if self.remaining == 0 {
            return SourcePoll::Done;
        }
        SourcePoll::Ready(self.next_frame())
    }

    fn drain(&mut self) -> Vec<GrayFrame> {
        let mut frames = Vec::with_capacity(self.remaining);
        while self.remaining > 0 {
            frames.push(self.next_frame());
        }
        frames
    }
}

/// Zipf-skewed per-stream frame counts: stream `i` gets `base` frames
/// plus a `1/(i+1)`-weighted share of `extra`.
fn zipf_frames(streams: usize, base: usize, extra: usize) -> Vec<usize> {
    let harmonic: f64 = (1..=streams).map(|r| 1.0 / r as f64).sum();
    (0..streams)
        .map(|i| base + ((extra as f64 / harmonic) / (i + 1) as f64).round() as usize)
        .collect()
}

#[test]
fn shedding_pain_stays_on_the_offending_streams_under_zipf_load() {
    const STREAMS: usize = 48;
    const OFFENDERS: usize = 2;
    const QUEUE: usize = 8;
    const FLOOD: usize = 400;

    let models = shared_models(7);
    let config = ServeConfig::builder()
        .shards(2)
        .queue_capacity(QUEUE)
        .stream(small_stream_config())
        .build()
        .expect("valid config");
    assert!(config.shedding, "shedding is on by default");
    let mut fleet = fleet(config, &models, STREAMS);

    // The head of the zipf curve floods; the tail's feeds fit their own
    // admission queues, so any shed they suffered would be another
    // stream's overload landing on them.
    let feeds: Vec<BoxedSource> = (0..STREAMS)
        .map(|i| {
            let frames = if i < OFFENDERS { FLOOD } else { 2 + i % (QUEUE - 1) };
            SynthSource::new(W, H, frames, (i * 13 % 251) as u8).boxed()
        })
        .collect();
    let fed_total: u64 = (0..STREAMS)
        .map(|i| if i < OFFENDERS { FLOOD as u64 } else { (2 + i % (QUEUE - 1)) as u64 })
        .sum();
    let report = fleet.run(feeds).expect("zipf run succeeds");

    let handles = fleet.handles();
    let mean_shed_rate = report.shed as f64 / fed_total as f64;
    assert!(report.shed > 0, "the offenders must actually overflow");
    for (i, handle) in handles.iter().enumerate() {
        let stats = handle.stats(&fleet);
        if i < OFFENDERS {
            assert!(
                stats.shed_overflow > 0,
                "offender {i} flooded {FLOOD} frames into a {QUEUE}-slot queue"
            );
        } else {
            assert_eq!(stats.shed(), 0, "healthy stream {i} paid for the offenders");
            assert_eq!(
                stats.completed, stats.fed,
                "healthy stream {i} must complete everything it fed"
            );
            // The fairness bound as stated: no healthy stream's shed
            // rate may exceed the fleet mean (itself inflated by the
            // offenders) — here it is structurally zero.
            let rate = stats.shed() as f64 / stats.fed.max(1) as f64;
            assert!(
                rate <= 1.5 * mean_shed_rate,
                "healthy stream {i} shed rate {rate} vs fleet mean {mean_shed_rate}"
            );
        }
        assert_eq!(
            stats.completed + stats.shed(),
            stats.fed,
            "stream {i} accounting must balance"
        );
    }
    assert_eq!(
        report.completed + report.shed,
        fed_total,
        "fleet accounting must balance"
    );
}

fn soak_streams() -> usize {
    std::env::var("SAFECROSS_SCALE_STREAMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

#[test]
fn ten_thousand_stream_soak_is_lossless_under_the_memory_ceiling() {
    let streams = soak_streams();
    let models = shared_models(23);
    let config = ServeConfig::builder()
        .shards(4)
        .batch_max(8)
        .shedding(false)
        .stream(tiny_stream_config())
        .build()
        .expect("valid config");
    let mut fleet = fleet(config, &models, streams);

    // Zipf skew: a handful of hot cameras, a very long near-idle tail.
    let counts = zipf_frames(streams, 2, 2 * streams);
    let total: u64 = counts.iter().map(|&n| n as u64).sum();
    let feeds: Vec<BoxedSource> = counts
        .iter()
        .enumerate()
        .map(|(i, &n)| SynthSource::new(TW, TH, n, (i % 251) as u8).boxed())
        .collect();

    let report = fleet.run(feeds).expect("soak run succeeds");
    assert_eq!(
        report.completed, total,
        "lossless mode completed every one of {total} frames across {streams} streams"
    );
    assert_eq!(report.shed, 0);
    assert!(report.batches > 0, "the hot head produced real batches");

    let high_water = HIGH_WATER.load(Ordering::Relaxed);
    assert!(
        high_water < MEMORY_CEILING,
        "{streams}-stream soak high-water {high_water} bytes breached the \
         {MEMORY_CEILING}-byte ceiling"
    );

    // Spot-check per-stream accounting at the head, middle, and tail.
    let handles = fleet.handles();
    for &i in &[0, streams / 2, streams - 1] {
        let stats = handles[i].stats(&fleet);
        assert_eq!(stats.fed, counts[i] as u64, "stream {i} fed count");
        assert_eq!(stats.completed, stats.fed, "stream {i} completed everything");
        assert_eq!(stats.shed(), 0, "stream {i} shed in lossless mode");
    }
}
