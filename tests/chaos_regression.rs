//! Chaos faults must be semantically invisible. Two regressions are
//! pinned here:
//!
//! 1. **Worker death mid-batch**: killing a worker's warm state (model
//!    clone cache, kernel scratch) before every single batch of a
//!    threaded lossless run must not change one bit of any stream's
//!    verdict or switch sequence versus the deterministic reference
//!    executor.
//! 2. **OOM-failing `switch_to` under load**: forcing switch attempts
//!    to fail with OOM mid-run must leave the content-addressed store
//!    accounting, the layer-group refcounts, and every session's
//!    resident weights bit-identical — the rollback path restores the
//!    previous model completely (extends the invariants of
//!    `tests/model_registry.rs`).
//! 3. **Trainer death mid-adaptation**: killing the continual-learning
//!    trainer after every challenger checkpoint registration must lose
//!    only that attempt's work — no orphan checkpoints, no promotion,
//!    incumbent still resident, fleet still lossless.
//! 4. **Canary promotion OOM**: when every challenger activation fails
//!    with a synthetic OOM, the switcher rolls back to the incumbent,
//!    the learner retires the challenger's blobs, and the store
//!    accounting balances exactly.

use safecross::SafeCrossConfig;
use safecross_learn::{ContinualLearner, LearnConfig};
use safecross_replay::{chaos_feeds, ChaosConfig, FaultPlan, FeedChaos};
use safecross_serve::{FleetServer, ServeConfig, StreamSpec};
use safecross_tensor::{Tensor, TensorRng};
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{RenderConfig, Renderer, Scenario, Simulator, Weather};
use safecross_videoclass::SlowFastLite;
use safecross_vision::GrayFrame;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const W: usize = 64;
const H: usize = 48;

fn config(shards: usize) -> ServeConfig {
    ServeConfig::builder()
        .shards(shards)
        .shedding(false)
        .stream(SafeCrossConfig {
            frame_width: W,
            frame_height: H,
            segment_frames: 8,
            scene_window: 4,
            min_confidence: 0.0,
            ..SafeCrossConfig::default()
        })
        .build()
        .expect("config is valid")
}

fn shared_models() -> Vec<(Weather, SlowFastLite)> {
    let mut rng = TensorRng::seed_from(3);
    Weather::ALL
        .iter()
        .map(|&w| (w, SlowFastLite::new(2, &mut rng)))
        .collect()
}

fn fleet(shards: usize, streams: usize) -> FleetServer {
    let mut fleet = FleetServer::new(config(shards)).expect("valid config");
    for (w, m) in shared_models() {
        fleet.register_model(w, m).expect("no streams yet");
    }
    for _ in 0..streams {
        fleet.open_stream(StreamSpec::new()).expect("models registered");
    }
    fleet
}

fn rendered(weather: Weather, frames: usize, seed: u64) -> Vec<GrayFrame> {
    let mut sim = Simulator::new(Scenario::new(weather, true, 0.15), seed);
    let rc = RenderConfig {
        width: W,
        height: H,
        ..RenderConfig::default()
    };
    let mut renderer = Renderer::new(rc, weather, seed);
    (0..frames)
        .map(|_| {
            sim.step(DT);
            renderer.render(&sim)
        })
        .collect()
}

/// Streams with weather transitions, so switches happen mid-run.
fn transition_feeds() -> Vec<Vec<GrayFrame>> {
    let mut rain = rendered(Weather::Daytime, 24, 2);
    rain.extend(rendered(Weather::Rain, 24, 21));
    let mut snow = rendered(Weather::Daytime, 24, 3);
    snow.extend(rendered(Weather::Snow, 24, 31));
    vec![rendered(Weather::Daytime, 48, 1), rain, snow]
}

fn tensor_bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn worker_death_before_every_batch_changes_no_output_bit() {
    let feeds = transition_feeds();
    let streams = feeds.len();

    // Ground truth: the deterministic reference executor.
    let mut reference = fleet(1, streams);
    reference.run_reference(feeds.clone()).expect("reference runs");

    // Chaotic threaded run: every shard loses its warm compute state
    // before every batch it dequeues (death period 1 = fire always).
    let mut chaotic = fleet(2, streams);
    let plan = FaultPlan::new(ChaosConfig {
        seed: 7,
        worker_death_period: 1,
        ..ChaosConfig::default()
    });
    chaotic.set_fault_hook(plan.clone());
    let report = chaotic
        .run(chaos_feeds(feeds, Duration::ZERO, &FeedChaos::default()))
        .expect("chaotic run completes");
    assert_eq!(report.completed, (48 * 3) as u64, "lossless despite deaths");
    assert!(plan.deaths() > 0, "the fault actually fired");

    let ref_handles = reference.handles();
    let chaos_handles = chaotic.handles();
    for s in 0..streams {
        assert_eq!(
            ref_handles[s].verdicts(&reference),
            chaos_handles[s].verdicts(&chaotic),
            "stream {s} verdicts diverged under worker death"
        );
        let expected = ref_handles[s].session(&reference).switch_log();
        let got = chaos_handles[s].session(&chaotic).switch_log();
        assert_eq!(expected, got, "stream {s} switch log diverged under worker death");
    }
}

#[test]
fn forced_oom_switches_leave_store_and_resident_weights_intact() {
    let feeds = transition_feeds();
    let streams = feeds.len();
    let mut fleet = fleet(2, streams);

    // Baseline invariants before chaos: store accounting and refcounts.
    let (refs_before, logical_before): (Vec<(String, u64, usize)>, usize) = {
        let store = fleet.model_store();
        let mut refs = Vec::new();
        for name in store.models() {
            for g in store.manifest(&name).expect("registered").groups {
                refs.push((g.name.clone(), g.hash, store.group_refs(g.hash)));
            }
        }
        (refs, store.logical_bytes())
    };

    // Force every other switch attempt to fail with OOM, fleet-wide.
    let plan = FaultPlan::new(ChaosConfig {
        seed: 11,
        oom_period: 2,
        ..ChaosConfig::default()
    });
    fleet.set_switch_fault_hook(plan.clone());

    let report = fleet
        .run(chaos_feeds(feeds, Duration::ZERO, &FeedChaos::default()))
        .expect("run completes despite forced OOM");
    assert_eq!(report.completed, (48 * 3) as u64, "no frame lost to failed switches");
    assert!(plan.ooms() > 0, "the fault actually fired");

    let store = fleet.model_store();
    assert_eq!(
        store.logical_bytes(),
        store.stored_bytes() + store.dedup_bytes(),
        "store accounting drifted after OOM rollbacks"
    );
    assert_eq!(store.logical_bytes(), logical_before, "checkpoints mutated");
    for (name, hash, before) in refs_before {
        assert_eq!(
            store.group_refs(hash),
            before,
            "group {name} refcount changed: rollback leaked or dropped a reference"
        );
    }

    // Every session's resident weights are bit-identical to the stored
    // checkpoint of whatever model it ended up on: a failed swap
    // rolled back completely, a successful one activated real bytes.
    assert_residents_match_store(&fleet, streams);
}

/// Every session's resident weights must be bit-identical to the
/// stored checkpoint of whatever model it is serving.
fn assert_residents_match_store(fleet: &FleetServer, streams: usize) {
    let store = fleet.model_store();
    let handles = fleet.handles();
    assert_eq!(handles.len(), streams);
    for (s, handle) in handles.iter().enumerate() {
        let session = handle.session(fleet);
        let name = session.resident_model().expect("a model is active");
        let resident = session
            .resident_state_dict()
            .expect("active model has weights");
        let stored = store.state_dict(&name).expect("resident model is stored");
        assert_eq!(resident.len(), stored.len(), "stream {s}: state dict shape");
        for ((rn, rt), (sn, st)) in resident.iter().zip(&stored) {
            assert_eq!(rn, sn, "stream {s}: state dict entry order");
            assert!(
                tensor_bits_equal(rt, st),
                "stream {s}: resident tensor {rn} diverged from checkpoint under chaos"
            );
        }
    }
}

/// A continual learner wired to the fleet's store and telemetry, with
/// the architecture templates cloned from the shared weather models.
fn learner_for(fleet: &FleetServer, config: LearnConfig) -> Arc<ContinualLearner> {
    let templates: HashMap<Weather, SlowFastLite> = shared_models().into_iter().collect();
    ContinualLearner::new(
        config,
        fleet.model_store().clone(),
        templates,
        fleet.telemetry(),
    )
}

/// Learner knobs that make chaos bite fast: harvest every clip, adapt
/// from tiny support sets, and let any canary margin win.
fn eager_learn_config() -> LearnConfig {
    LearnConfig {
        seed: 99,
        harvest_below: 1.1, // every verdict confidence is below this
        min_support: 2,
        min_win: -1.0, // any challenger wins its canary
        max_generations: 8,
        ..LearnConfig::default()
    }
}

#[test]
fn trainer_death_mid_adaptation_leaves_no_orphans_and_no_promotions() {
    let feeds = transition_feeds();
    let streams = feeds.len();
    let mut fleet = fleet(2, streams);

    // Every single adaptation attempt dies right after the challenger
    // checkpoint lands in the store — the worst-case orphan window.
    let plan = FaultPlan::new(ChaosConfig {
        seed: 13,
        trainer_death_period: 1,
        ..ChaosConfig::default()
    });
    let learner = learner_for(&fleet, eager_learn_config());
    learner.set_fault_hook(plan.clone());
    fleet.set_learn_hook(learner.clone());

    let report = fleet
        .run(chaos_feeds(feeds, Duration::ZERO, &FeedChaos::default()))
        .expect("run completes despite trainer deaths");
    assert_eq!(report.completed, (48 * 3) as u64, "fleet stays lossless");
    assert!(plan.trainer_deaths() > 0, "the fault actually fired");

    let stats = learner.stats();
    assert!(stats.harvested > 0, "chaos run harvested nothing");
    assert!(stats.adaptations > 0, "no adaptation ever started");
    assert_eq!(stats.trainer_deaths, stats.adaptations, "every attempt died");
    assert_eq!(stats.promotions_queued, 0, "a dead trainer promoted a model");

    // Recovery removed every orphan challenger: only the three pinned
    // base checkpoints remain, and the accounting balances.
    let store = fleet.model_store();
    assert_eq!(store.model_count(), 3, "orphan challenger left in the store");
    assert_eq!(
        store.logical_bytes(),
        store.stored_bytes() + store.dedup_bytes(),
        "store accounting drifted after trainer deaths"
    );
    assert_residents_match_store(&fleet, streams);
}

#[test]
fn challenger_activation_oom_rolls_back_to_the_incumbent() {
    let streams = transition_feeds().len();
    let mut fleet = fleet(2, streams);

    // Base-model switches succeed (oom_period 0); every *challenger*
    // activation fails with a synthetic OOM (period 1), so each canary
    // winner exercises the rollback path on its owning shard.
    let plan = FaultPlan::new(ChaosConfig {
        seed: 17,
        challenger_oom_period: 1,
        ..ChaosConfig::default()
    });
    fleet.set_switch_fault_hook(plan.clone());
    let learner = learner_for(&fleet, eager_learn_config());
    fleet.set_learn_hook(learner.clone());

    // Two rounds: the first harvests and (at run end) adapts + queues
    // promotions deterministically; the second applies them at the top
    // of its serve loop, where each activation OOMs and rolls back.
    for round in 0..2 {
        let report = fleet
            .run(chaos_feeds(
                transition_feeds(),
                Duration::ZERO,
                &FeedChaos::default(),
            ))
            .expect("run completes despite challenger OOMs");
        assert_eq!(
            report.completed,
            (48 * 3) as u64,
            "round {round} lost frames to failed promotions"
        );
    }

    assert!(plan.challenger_ooms() > 0, "the fault actually fired");
    let stats = learner.stats();
    assert!(stats.promotions_queued > 0, "no canary winner was ever queued");
    assert!(stats.rolled_back > 0, "no activation hit the OOM rollback path");
    assert_eq!(stats.activated, 0, "an activation survived a forced OOM");

    // Rolled-back and deferred challengers were retired; only winners
    // still queued (earned by the final run's end-of-run training pass
    // and never applied) keep their checkpoints.
    let outstanding = stats.promotions_queued - stats.rolled_back - stats.deferred;
    let store = fleet.model_store();
    assert_eq!(
        store.model_count() as u64,
        3 + outstanding,
        "retired challengers must leave the store"
    );
    assert_eq!(
        store.logical_bytes(),
        store.stored_bytes() + store.dedup_bytes(),
        "store accounting drifted after promotion rollbacks"
    );
    assert_residents_match_store(&fleet, streams);
}
