//! Chaos faults must be semantically invisible. Two regressions are
//! pinned here:
//!
//! 1. **Worker death mid-batch**: killing a worker's warm state (model
//!    clone cache, kernel scratch) before every single batch of a
//!    threaded lossless run must not change one bit of any stream's
//!    verdict or switch sequence versus the deterministic reference
//!    executor.
//! 2. **OOM-failing `switch_to` under load**: forcing switch attempts
//!    to fail with OOM mid-run must leave the content-addressed store
//!    accounting, the layer-group refcounts, and every session's
//!    resident weights bit-identical — the rollback path restores the
//!    previous model completely (extends the invariants of
//!    `tests/model_registry.rs`).

use safecross::SafeCrossConfig;
use safecross_replay::{chaos_feeds, ChaosConfig, FaultPlan, FeedChaos};
use safecross_serve::{FleetServer, ServeConfig, StreamSpec};
use safecross_tensor::{Tensor, TensorRng};
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{RenderConfig, Renderer, Scenario, Simulator, Weather};
use safecross_videoclass::SlowFastLite;
use safecross_vision::GrayFrame;
use std::time::Duration;

const W: usize = 64;
const H: usize = 48;

fn config(shards: usize) -> ServeConfig {
    ServeConfig::builder()
        .shards(shards)
        .shedding(false)
        .stream(SafeCrossConfig {
            frame_width: W,
            frame_height: H,
            segment_frames: 8,
            scene_window: 4,
            min_confidence: 0.0,
            ..SafeCrossConfig::default()
        })
        .build()
        .expect("config is valid")
}

fn shared_models() -> Vec<(Weather, SlowFastLite)> {
    let mut rng = TensorRng::seed_from(3);
    Weather::ALL
        .iter()
        .map(|&w| (w, SlowFastLite::new(2, &mut rng)))
        .collect()
}

fn fleet(shards: usize, streams: usize) -> FleetServer {
    let mut fleet = FleetServer::new(config(shards)).expect("valid config");
    for (w, m) in shared_models() {
        fleet.register_model(w, m).expect("no streams yet");
    }
    for _ in 0..streams {
        fleet.open_stream(StreamSpec::new()).expect("models registered");
    }
    fleet
}

fn rendered(weather: Weather, frames: usize, seed: u64) -> Vec<GrayFrame> {
    let mut sim = Simulator::new(Scenario::new(weather, true, 0.15), seed);
    let rc = RenderConfig {
        width: W,
        height: H,
        ..RenderConfig::default()
    };
    let mut renderer = Renderer::new(rc, weather, seed);
    (0..frames)
        .map(|_| {
            sim.step(DT);
            renderer.render(&sim)
        })
        .collect()
}

/// Streams with weather transitions, so switches happen mid-run.
fn transition_feeds() -> Vec<Vec<GrayFrame>> {
    let mut rain = rendered(Weather::Daytime, 24, 2);
    rain.extend(rendered(Weather::Rain, 24, 21));
    let mut snow = rendered(Weather::Daytime, 24, 3);
    snow.extend(rendered(Weather::Snow, 24, 31));
    vec![rendered(Weather::Daytime, 48, 1), rain, snow]
}

fn tensor_bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn worker_death_before_every_batch_changes_no_output_bit() {
    let feeds = transition_feeds();
    let streams = feeds.len();

    // Ground truth: the deterministic reference executor.
    let mut reference = fleet(1, streams);
    reference.run_reference(feeds.clone()).expect("reference runs");

    // Chaotic threaded run: every shard loses its warm compute state
    // before every batch it dequeues (death period 1 = fire always).
    let mut chaotic = fleet(2, streams);
    let plan = FaultPlan::new(ChaosConfig {
        seed: 7,
        worker_death_period: 1,
        ..ChaosConfig::default()
    });
    chaotic.set_fault_hook(plan.clone());
    let report = chaotic
        .run(chaos_feeds(feeds, Duration::ZERO, &FeedChaos::default()))
        .expect("chaotic run completes");
    assert_eq!(report.completed, (48 * 3) as u64, "lossless despite deaths");
    assert!(plan.deaths() > 0, "the fault actually fired");

    let ref_handles = reference.handles();
    let chaos_handles = chaotic.handles();
    for s in 0..streams {
        assert_eq!(
            ref_handles[s].verdicts(&reference),
            chaos_handles[s].verdicts(&chaotic),
            "stream {s} verdicts diverged under worker death"
        );
        let expected = ref_handles[s].session(&reference).switch_log();
        let got = chaos_handles[s].session(&chaotic).switch_log();
        assert_eq!(expected, got, "stream {s} switch log diverged under worker death");
    }
}

#[test]
fn forced_oom_switches_leave_store_and_resident_weights_intact() {
    let feeds = transition_feeds();
    let streams = feeds.len();
    let mut fleet = fleet(2, streams);

    // Baseline invariants before chaos: store accounting and refcounts.
    let (refs_before, logical_before): (Vec<(String, u64, usize)>, usize) = {
        let store = fleet.model_store();
        let mut refs = Vec::new();
        for name in store.models() {
            for g in store.manifest(&name).expect("registered").groups {
                refs.push((g.name.clone(), g.hash, store.group_refs(g.hash)));
            }
        }
        (refs, store.logical_bytes())
    };

    // Force every other switch attempt to fail with OOM, fleet-wide.
    let plan = FaultPlan::new(ChaosConfig {
        seed: 11,
        oom_period: 2,
        ..ChaosConfig::default()
    });
    fleet.set_switch_fault_hook(plan.clone());

    let report = fleet
        .run(chaos_feeds(feeds, Duration::ZERO, &FeedChaos::default()))
        .expect("run completes despite forced OOM");
    assert_eq!(report.completed, (48 * 3) as u64, "no frame lost to failed switches");
    assert!(plan.ooms() > 0, "the fault actually fired");

    let store = fleet.model_store();
    assert_eq!(
        store.logical_bytes(),
        store.stored_bytes() + store.dedup_bytes(),
        "store accounting drifted after OOM rollbacks"
    );
    assert_eq!(store.logical_bytes(), logical_before, "checkpoints mutated");
    for (name, hash, before) in refs_before {
        assert_eq!(
            store.group_refs(hash),
            before,
            "group {name} refcount changed: rollback leaked or dropped a reference"
        );
    }

    // Every session's resident weights are bit-identical to the stored
    // checkpoint of whatever model it ended up on: a failed swap
    // rolled back completely, a successful one activated real bytes.
    let handles = fleet.handles();
    assert_eq!(handles.len(), streams);
    for (s, handle) in handles.iter().enumerate() {
        let session = handle.session(&fleet);
        let name = session.resident_model().expect("a model is active");
        let resident = session
            .resident_state_dict()
            .expect("active model has weights");
        let stored = store.state_dict(&name).expect("resident model is stored");
        assert_eq!(resident.len(), stored.len(), "stream {s}: state dict shape");
        for ((rn, rt), (sn, st)) in resident.iter().zip(&stored) {
            assert_eq!(rn, sn, "stream {s}: state dict entry order");
            assert!(
                tensor_bits_equal(rt, st),
                "stream {s}: resident tensor {rn} diverged from checkpoint after OOM chaos"
            );
        }
    }
}
