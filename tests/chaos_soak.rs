//! The chaos soak: repeated fleet iterations with worker deaths,
//! forced switch OOMs, and feed-side stalls/floods/skew, run under a
//! counting global allocator with a hard live-memory ceiling. The run
//! must (1) complete every iteration's invariant checks, (2) stay
//! under the ceiling at its high-water mark, (3) not leak across
//! iterations, and (4) keep the steady-state classify path at zero
//! allocations afterwards — chaos must not have poisoned the scratch
//! arena discipline.
//!
//! Soak length defaults to ~2 wall seconds so the suite stays quick;
//! set `SAFECROSS_SOAK_SECS` (CI smoke uses 3, a nightly soak uses
//! 120+) to stretch it. The file holds a single test: the allocator
//! counters are process-global.

use safecross::{classify_with_model, SafeCrossConfig};
use safecross_replay::{run_soak, ChaosConfig, FeedChaos, ModelSpec, SoakConfig};
use safecross_serve::ServeConfig;
use safecross_tensor::{kernel, KernelScratch, TensorRng};
use safecross_trafficsim::Weather;
use safecross_videoclass::SlowFastLite;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    HIGH_WATER.fetch_max(live, Ordering::Relaxed);
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counters
// are side effects only.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc`; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc(layout)
    }

    // SAFETY: same contract as `System::dealloc`; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    // SAFETY: same contract as `System::realloc`; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        on_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Hard ceiling on live heap bytes for the whole soak, frames and
/// models and queues included. The working set of this configuration
/// is a few tens of MB; 256 MB catches runaway growth with margin for
/// allocator bookkeeping noise.
const MEMORY_CEILING: usize = 256 * 1024 * 1024;

fn soak_secs() -> f64 {
    std::env::var("SAFECROSS_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0)
}

#[test]
fn chaos_soak_stays_under_the_memory_ceiling_with_zero_steady_state_allocs() {
    let config = SoakConfig {
        serve: ServeConfig::builder()
            .shards(2)
            .shedding(false)
            .stream(SafeCrossConfig {
                frame_width: 64,
                frame_height: 48,
                segment_frames: 8,
                scene_window: 4,
                min_confidence: 0.0,
                ..SafeCrossConfig::default()
            })
            .build()
            .expect("config is valid"),
        models: ModelSpec {
            seed: 23,
            classes: 2,
            weathers: Weather::ALL.to_vec(),
        },
        streams: 4,
        frames_per_stream: 48,
        base_interval: Duration::ZERO,
        chaos: ChaosConfig {
            seed: 97,
            worker_death_period: 4,
            worker_stall_period: 9,
            worker_stall_for: Duration::from_micros(200),
            oom_period: 3,
            ..ChaosConfig::default()
        },
        feed_chaos: FeedChaos {
            seed: 97,
            stall_streams: vec![1],
            stall_every: 16,
            stall_for: Duration::from_micros(500),
            flood_streams: vec![2],
            skew: true,
        },
        duration: Duration::from_secs_f64(soak_secs()),
    };

    // Live bytes at the end of each iteration: the plateau check.
    let mut live_per_iteration: Vec<usize> = Vec::new();
    let report = run_soak(&config, |_, _| {
        live_per_iteration.push(LIVE_BYTES.load(Ordering::Relaxed));
    })
    .expect("soak passes its invariant checks");

    assert!(report.iterations >= 1);
    assert_eq!(
        report.completed,
        report.iterations * (config.streams * config.frames_per_stream) as u64,
        "lossless fleet: every fed frame completed every iteration"
    );
    assert_eq!(report.shed, 0);
    assert!(report.worker_deaths > 0, "death schedule never fired");
    assert!(report.forced_ooms > 0, "OOM schedule never fired");
    assert!(report.switches > 0, "weather phases must drive switches");

    let high_water = HIGH_WATER.load(Ordering::Relaxed);
    assert!(
        high_water < MEMORY_CEILING,
        "soak high-water {high_water} bytes breached the {MEMORY_CEILING}-byte ceiling"
    );

    // No leak across iterations: once warm, end-of-iteration live
    // bytes must plateau. Iteration 1 pays one-time costs (thread-local
    // buffers, channel spine); later iterations may not keep growing.
    if live_per_iteration.len() >= 3 {
        let warm = live_per_iteration[0];
        let last = *live_per_iteration.last().expect("non-empty");
        let slack = 8 * 1024 * 1024;
        assert!(
            last <= warm + slack,
            "live bytes grew across iterations: {warm} after warmup, {last} at the end"
        );
    }

    // Steady-state classify is still allocation-free after all that
    // chaos (serial kernel path; scoped GEMM workers would allocate
    // stacks). Mirrors tests/kernel_alloc.rs, post-soak.
    kernel::set_threads(1);
    let mut rng = TensorRng::seed_from(23);
    let mut model = SlowFastLite::new(2, &mut rng);
    let clip = rng.uniform(&[1, 8, 20, 20], 0.0, 1.0);
    let mut scratch = KernelScratch::new();
    let expected = classify_with_model(&mut model, &clip, Weather::Daytime, &mut scratch);
    for _ in 0..3 {
        classify_with_model(&mut model, &clip, Weather::Daytime, &mut scratch);
    }
    let allocs_before = ALLOCS.load(Ordering::SeqCst);
    let mut verdict = expected;
    for _ in 0..8 {
        verdict = classify_with_model(&mut model, &clip, Weather::Daytime, &mut scratch);
    }
    assert_eq!(
        ALLOCS.load(Ordering::SeqCst) - allocs_before,
        0,
        "steady-state classify allocated after the soak"
    );
    assert_eq!(verdict, expected, "warm classifies diverged");
}
