//! The record/replay contract, end to end: a real multi-stream fleet
//! run recorded into a trace (1) serialises to bytes and back
//! bit-identically, (2) replays through the reference executor with
//! every verdict and switch-log entry bit-identical to the recording,
//! and (3) surfaces corruption and truncation as typed errors instead
//! of panics.

use safecross::SafeCrossConfig;
use safecross_replay::{record_reference_run, replay_trace, ModelSpec, Trace, TraceError};
use safecross_serve::ServeConfig;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{RenderConfig, Renderer, Scenario, Simulator, Weather};
use safecross_vision::GrayFrame;
use std::time::Duration;

const W: usize = 64;
const H: usize = 48;

fn small_config() -> ServeConfig {
    ServeConfig::builder()
        .shards(2)
        .shedding(false)
        .stream(SafeCrossConfig {
            frame_width: W,
            frame_height: H,
            segment_frames: 8,
            scene_window: 4,
            min_confidence: 0.0,
            ..SafeCrossConfig::default()
        })
        .build()
        .expect("config is valid")
}

fn spec() -> ModelSpec {
    ModelSpec {
        seed: 11,
        classes: 2,
        weathers: Weather::ALL.to_vec(),
    }
}

/// Renders `frames` simulator frames of one weather at test size.
fn rendered(weather: Weather, frames: usize, seed: u64) -> Vec<GrayFrame> {
    let mut sim = Simulator::new(Scenario::new(weather, true, 0.15), seed);
    let config = RenderConfig {
        width: W,
        height: H,
        ..RenderConfig::default()
    };
    let mut renderer = Renderer::new(config, weather, seed);
    (0..frames)
        .map(|_| {
            sim.step(DT);
            renderer.render(&sim)
        })
        .collect()
}

/// Three streams in distinct regimes, including weather transitions so
/// the recorded switch logs are non-trivial.
fn feeds() -> Vec<Vec<GrayFrame>> {
    let mut rain_transition = rendered(Weather::Daytime, 20, 2);
    rain_transition.extend(rendered(Weather::Rain, 20, 21));
    let mut snow_round_trip = rendered(Weather::Snow, 20, 3);
    snow_round_trip.extend(rendered(Weather::Daytime, 20, 31));
    vec![rendered(Weather::Daytime, 32, 1), rain_transition, snow_round_trip]
}

#[test]
fn recorded_fleet_run_replays_bit_identically() {
    let (trace, report) =
        record_reference_run(small_config(), &spec(), feeds(), Duration::from_millis(33))
            .expect("recording runs");
    assert_eq!(report.completed, 32 + 40 + 40, "reference mode is lossless");
    assert!(
        trace.outputs.verdicts.iter().any(|v| !v.is_empty()),
        "run long enough to produce verdicts"
    );
    assert!(
        trace.outputs.switches.iter().any(|s| !s.is_empty()),
        "weather transitions produce switch-log entries"
    );

    // Byte roundtrip is bit-identical: the format is canonical.
    let bytes = trace.to_bytes();
    let decoded = Trace::from_bytes(&bytes).expect("own bytes parse");
    assert_eq!(decoded.to_bytes(), bytes);

    // Replaying the decoded trace reproduces every verdict and switch
    // bit-for-bit (replay_trace errors on the first divergence).
    let replayed = replay_trace(&decoded).expect("replay is bit-identical");
    assert_eq!(replayed.streams, 3);
    assert_eq!(replayed.frames, 112);
    let recorded_verdicts: usize = trace.outputs.verdicts.iter().map(Vec::len).sum();
    let recorded_switches: usize = trace.outputs.switches.iter().map(Vec::len).sum();
    assert_eq!(replayed.verdicts_checked, recorded_verdicts);
    assert_eq!(replayed.switches_checked, recorded_switches);
}

#[test]
fn tampering_with_recorded_outputs_is_detected_as_divergence() {
    let (mut trace, _) =
        record_reference_run(small_config(), &spec(), feeds(), Duration::ZERO)
            .expect("recording runs");
    let verdict = trace
        .outputs
        .verdicts
        .iter_mut()
        .flat_map(|v| v.iter_mut())
        .next()
        .expect("at least one verdict");
    verdict.confidence = f32::from_bits(verdict.confidence.to_bits() ^ 1);
    assert!(
        replay_trace(&trace).is_err(),
        "a single flipped confidence bit must fail replay"
    );
}

#[test]
fn trace_survives_a_file_roundtrip() {
    let (trace, _) = record_reference_run(
        small_config(),
        &spec(),
        vec![rendered(Weather::Daytime, 16, 5)],
        Duration::from_millis(40),
    )
    .expect("recording runs");
    let path = std::env::temp_dir().join("safecross_replay_roundtrip.scrt");
    trace.save(&path).expect("save");
    let loaded = Trace::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.to_bytes(), trace.to_bytes());
}

#[test]
fn corrupted_trailer_reads_back_as_hash_mismatch() {
    let (trace, _) = record_reference_run(
        small_config(),
        &spec(),
        vec![rendered(Weather::Daytime, 10, 7)],
        Duration::ZERO,
    )
    .expect("recording runs");
    let mut bytes = trace.to_bytes();

    // Flip a content byte: the trailer no longer matches.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    match Trace::from_bytes(&bytes) {
        Err(TraceError::HashMismatch { expected, computed }) => {
            assert_ne!(expected, computed)
        }
        other => panic!("expected HashMismatch, got {other:?}"),
    }

    // Flip a trailer byte instead: also a hash mismatch, attributed the
    // other way around.
    let mut bytes = trace.to_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    assert!(matches!(
        Trace::from_bytes(&bytes),
        Err(TraceError::HashMismatch { .. })
    ));
}

#[test]
fn truncated_trace_reads_back_as_typed_error() {
    let (trace, _) = record_reference_run(
        small_config(),
        &spec(),
        vec![rendered(Weather::Daytime, 10, 9)],
        Duration::ZERO,
    )
    .expect("recording runs");
    let bytes = trace.to_bytes();

    // Cut mid-record: Truncated. Cut at the record boundary right
    // before the trailer: MissingTrailer. Never a panic.
    for cut in [3, 9, bytes.len() / 3, bytes.len() - 4, bytes.len() - 1] {
        let err = Trace::from_bytes(&bytes[..cut]).expect_err("truncation must error");
        assert!(
            matches!(
                err,
                TraceError::Truncated { .. }
                    | TraceError::MissingTrailer
                    | TraceError::Format(_)
            ),
            "cut at {cut}: unexpected {err:?}"
        );
    }
    // Empty and magic-only inputs too.
    assert!(Trace::from_bytes(&[]).is_err());
    assert!(Trace::from_bytes(b"SCRT").is_err());
    // Foreign bytes: Format, not a panic.
    assert!(matches!(
        Trace::from_bytes(b"not a trace at all"),
        Err(TraceError::Format(_))
    ));
    // A version from the future is refused by number.
    let mut future = trace.to_bytes();
    future[4..8].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        Trace::from_bytes(&future),
        Err(TraceError::UnsupportedVersion(99))
    ));
}
