//! End-to-end int8 serving: a mixed-precision fleet completes a run.
//!
//! Three streams share the same weather models — one served at f32, two
//! at int8 (`StreamSpec::with_precision`). The contract under test:
//!
//! - the fleet run is lossless end to end with int8 streams in it
//!   (every frame completes, verdicts are produced);
//! - the f32 stream stays bit-identical to a standalone sequential
//!   system — int8 neighbours in the fleet must not perturb it, which
//!   is exactly what precision-tagged batch keys guarantee (mixed
//!   precisions never co-batch);
//! - the int8 streams are deterministic: the threaded run reproduces
//!   the single-threaded reference run bit-for-bit, because int8
//!   accumulation is integer-exact.

use safecross::{SafeCross, SafeCrossConfig};
use safecross_serve::{paced_feed, FleetServer, Precision, ServeConfig, StreamSpec};
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{RenderConfig, Renderer, Scenario, Simulator, Weather};
use safecross_videoclass::SlowFastLite;
use safecross_vision::GrayFrame;
use std::time::Duration;

fn shared_models() -> Vec<(Weather, SlowFastLite)> {
    let mut rng = TensorRng::seed_from(0);
    Weather::ALL
        .iter()
        .map(|&w| (w, SlowFastLite::new(2, &mut rng)))
        .collect()
}

fn rendered(weather: Weather, frames: usize, seed: u64) -> Vec<GrayFrame> {
    let mut sim = Simulator::new(Scenario::new(weather, true, 0.15), seed);
    let mut renderer = Renderer::new(RenderConfig::default(), weather, seed);
    (0..frames)
        .map(|_| {
            sim.step(DT);
            renderer.render(&sim)
        })
        .collect()
}

fn stream(phases: &[(Weather, usize)], seed: u64) -> Vec<GrayFrame> {
    phases
        .iter()
        .enumerate()
        .flat_map(|(i, &(weather, frames))| rendered(weather, frames, seed * 100 + i as u64))
        .collect()
}

/// Stream 0 serves f32, streams 1–2 serve int8; stream 2 crosses a
/// weather switch so the int8 path also exercises replica activation.
const PRECISIONS: [Precision; 3] = [Precision::F32, Precision::Int8, Precision::Int8];

fn feeds() -> Vec<Vec<GrayFrame>> {
    vec![
        stream(&[(Weather::Daytime, 60)], 1),
        stream(&[(Weather::Daytime, 60)], 2),
        stream(&[(Weather::Daytime, 34), (Weather::Rain, 34)], 3),
    ]
}

fn fleet(models: &[(Weather, SlowFastLite)], shards: usize) -> FleetServer {
    let config = ServeConfig::builder()
        .shards(shards)
        .shedding(false)
        .build()
        .expect("valid serve configuration");
    let mut fleet = FleetServer::new(config).expect("valid serve configuration");
    for (w, m) in models {
        fleet.register_model(*w, m.clone()).expect("models first");
    }
    for &precision in &PRECISIONS {
        fleet
            .open_stream(StreamSpec::new().with_precision(precision))
            .expect("models are registered");
    }
    fleet
}

#[test]
fn mixed_precision_fleet_completes_and_keeps_f32_bit_identity() {
    let models = shared_models();
    let feeds = feeds();
    let total: usize = feeds.iter().map(Vec::len).sum();

    // Standalone sequential f32 reference for stream 0.
    let mut standalone = SafeCross::try_new(SafeCrossConfig::default()).expect("valid config");
    for (w, m) in &models {
        standalone.register_model(*w, m.clone());
    }
    for f in &feeds[0] {
        standalone.process_frame(f);
    }

    // Reference-mode fleet: the single-threaded determinism baseline
    // for the int8 streams.
    let mut reference = fleet(&models, 2);
    reference.run_reference(feeds.clone()).expect("reference run succeeds");

    // Threaded fleet on the same feeds.
    let mut served = fleet(&models, 2);
    let report = served
        .run(
            feeds
                .iter()
                .map(|frames| paced_feed(frames.clone(), Duration::ZERO))
                .collect(),
        )
        .expect("threaded run succeeds");
    assert_eq!(report.completed as usize, total, "int8 streams complete losslessly");
    assert_eq!(report.shed, 0);
    assert!(report.batches > 0, "the executor actually batched");

    let handles = served.handles();
    assert_eq!(handles[0].precision(), Precision::F32);
    assert_eq!(handles[1].precision(), Precision::Int8);

    // f32 stream: bit-identical to the standalone sequential system
    // even with int8 neighbours sharing the executor.
    let f32_session = handles[0].session(&served);
    assert_eq!(
        f32_session.verdicts(),
        standalone.verdicts(),
        "f32 stream perturbed by int8 fleet neighbours"
    );
    assert_eq!(f32_session.frames_seen(), standalone.frames_seen());
    assert_eq!(f32_session.current_scene(), standalone.current_scene());

    // int8 streams: complete, verdict-producing, and bit-identical to
    // the reference-mode run.
    let ref_handles = reference.handles();
    for i in 1..PRECISIONS.len() {
        let got = handles[i].session(&served);
        let want = ref_handles[i].session(&reference);
        assert!(!got.verdicts().is_empty(), "int8 stream {i} produced no verdicts");
        assert_eq!(got.frames_seen(), feeds[i].len(), "int8 stream {i} dropped frames");
        assert_eq!(
            got.verdicts(),
            want.verdicts(),
            "int8 stream {i} diverged between threaded and reference runs"
        );
        assert_eq!(got.current_scene(), want.current_scene());
        got.with_switch_log(|got_log| {
            want.with_switch_log(|want_log| {
                assert_eq!(got_log, want_log, "int8 stream {i} switch log diverged");
            });
        });
    }
}
