//! Integration of the scene detector with the model-switching runtime:
//! a weather transition in the rendered stream must flip the active
//! model exactly once, with pipelined (<10 ms) latency.

use safecross::{SafeCross, SafeCrossConfig};
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{Renderer, RenderConfig, Scenario, Simulator, Weather};
use safecross_videoclass::SlowFastLite;

fn system() -> SafeCross {
    let mut rng = TensorRng::seed_from(0);
    let mut sc = SafeCross::try_new(SafeCrossConfig::default()).expect("default configuration is valid");
    for w in Weather::ALL {
        sc.register_model(w, SlowFastLite::new(2, &mut rng));
    }
    sc
}

fn feed(sc: &mut SafeCross, weather: Weather, frames: usize, seed: u64) -> Vec<(Weather, f64)> {
    let mut sim = Simulator::new(Scenario::new(weather, true, 0.15), seed);
    let mut renderer = Renderer::new(RenderConfig::default(), weather, seed);
    let mut switches = Vec::new();
    for _ in 0..frames {
        sim.step(DT);
        let out = sc.process_frame(&renderer.render(&sim));
        if let Some((scene, report)) = out.scene_switch {
            switches.push((scene, report.switch_overhead_ms));
        }
    }
    switches
}

#[test]
fn weather_transitions_switch_models_once_each() {
    let mut sc = system();
    // Daytime start: the detector already believes daytime, no switch.
    let s1 = feed(&mut sc, Weather::Daytime, 30, 1);
    assert!(s1.is_empty(), "unexpected switches {s1:?}");
    // Snow arrives: exactly one switch, pipelined latency.
    let s2 = feed(&mut sc, Weather::Snow, 30, 2);
    assert_eq!(s2.len(), 1, "switches {s2:?}");
    assert_eq!(s2[0].0, Weather::Snow);
    assert!(s2[0].1 < 10.0, "switch overhead {} ms", s2[0].1);
    // Back to daytime: one more switch.
    let s3 = feed(&mut sc, Weather::Daytime, 30, 3);
    assert_eq!(s3.len(), 1);
    assert_eq!(s3[0].0, Weather::Daytime);
    assert_eq!(sc.current_scene(), Weather::Daytime);
    // The switch log saw: initial daytime registration, snow, daytime.
    assert_eq!(sc.switch_count(), 3);
}

#[test]
fn rain_scene_is_detected_and_served() {
    let mut sc = system();
    let switches = feed(&mut sc, Weather::Rain, 40, 4);
    assert_eq!(switches.len(), 1);
    assert_eq!(switches[0].0, Weather::Rain);
    // Verdicts after the switch carry the rain model's identity.
    let last = sc.verdicts().last().expect("full buffer produced verdicts");
    assert_eq!(last.weather, Weather::Rain);
}
