//! The content-addressed model store end-to-end: a switch activates the
//! checkpoint's real weights bit-for-bit, and a fleet of sessions holds
//! each unique layer group exactly once.

use safecross_modelswitch::{GpuSpec, ModelRegistry, ModelSwitcher, SwitchStrategy};
use safecross_nn::Mode;
use safecross_serve::{FleetServer, ServeConfig, StreamSpec};
use safecross_tensor::{Tensor, TensorRng};
use safecross_trafficsim::Weather;
use safecross_videoclass::{SlowFastLite, VideoClassifier};

fn checkpoint(seed: u64) -> SlowFastLite {
    let mut rng = TensorRng::seed_from(seed);
    let mut model = SlowFastLite::new(2, &mut rng);
    // Non-trivial batch-norm statistics so buffers matter too.
    let clip = rng.uniform(&[1, 1, 32, 16, 16], 0.0, 1.0);
    model.forward(&clip, Mode::Train);
    model
}

/// Perturbs only the classifier head, leaving the trunk byte-identical
/// to the source — the shape of a few-shot-adapted checkpoint.
fn with_adapted_head(base: &SlowFastLite, delta: f32) -> SlowFastLite {
    let mut out = base.clone();
    let mut params = out.params_mut();
    let head_weight = params.last_mut().expect("model has parameters");
    let bump = Tensor::full(head_weight.value.dims(), delta);
    head_weight.value.add_scaled(&bump, 1.0);
    out
}

#[test]
fn switch_activation_is_bit_identical_to_direct_checkpoint_load() {
    let stored = checkpoint(5);
    let store = ModelRegistry::new();
    store.register_model("daytime", &stored.state_groups());

    let switcher = ModelSwitcher::new(
        GpuSpec::rtx_2080_ti(),
        11_000_000_000,
        SwitchStrategy::PipelinedOptimal,
    );
    switcher.attach_store(&store);
    switcher.register_from_store("daytime", 36.0e9).expect("stored checkpoint");
    switcher.switch_to("daytime").expect("fits the empty pool");

    // Rebuild one model from the switcher's resident arena, one straight
    // from the store, and compare against the original.
    let resident = switcher
        .resident_state_dict()
        .expect("switch activated real weights");
    let mut from_switch = SlowFastLite::new(2, &mut TensorRng::seed_from(99));
    from_switch.load_state_dict(&resident);
    let mut from_store = SlowFastLite::new(2, &mut TensorRng::seed_from(123));
    from_store.load_state_dict(&store.state_dict("daytime").expect("stored"));

    let mut rng = TensorRng::seed_from(7);
    let clip = rng.uniform(&[2, 1, 32, 16, 16], 0.0, 1.0);
    let mut original = stored.clone();
    let want = original.forward(&clip, Mode::Eval);
    let via_switch = from_switch.forward(&clip, Mode::Eval);
    let via_store = from_store.forward(&clip, Mode::Eval);
    assert_eq!(want.data(), via_switch.data(), "switch-activated weights diverge");
    assert_eq!(want.data(), via_store.data(), "store-resolved weights diverge");
}

#[test]
fn fleet_stores_each_unique_group_exactly_once() {
    // Three weather checkpoints sharing a trunk (only the head was
    // adapted), served to four streams.
    let daytime = checkpoint(11);
    let rain = with_adapted_head(&daytime, 0.25);
    let snow = with_adapted_head(&daytime, -0.5);

    let mut fleet = FleetServer::new(ServeConfig::default()).expect("valid config");
    fleet.register_model(Weather::Daytime, daytime).expect("no streams yet");
    fleet.register_model(Weather::Rain, rain).expect("no streams yet");
    fleet.register_model(Weather::Snow, snow).expect("no streams yet");
    let handles: Vec<_> = (0..4)
        .map(|_| fleet.open_stream(StreamSpec::new()).expect("models registered"))
        .collect();

    let store = fleet.model_store();
    assert_eq!(store.model_count(), 3, "one stored model per weather, not per stream");
    // 5 stage groups per model; fast1/fast2/slow1/slow2 are shared
    // across all three checkpoints, each head is unique: 4 + 3.
    assert_eq!(store.unique_groups(), 7);
    assert!(store.dedup_bytes() > 0, "shared trunk groups must dedup");
    assert_eq!(
        store.logical_bytes(),
        store.stored_bytes() + store.dedup_bytes()
    );

    // Refcounts: every shared trunk group is referenced by exactly the
    // three model names (streams add no references of their own).
    let manifest = store.manifest("daytime").expect("registered");
    for g in &manifest.groups {
        let expected = if g.name == "head" { 1 } else { 3 };
        assert_eq!(store.group_refs(g.hash), expected, "group {} refcount", g.name);
    }

    // Every session holds the same store handle as the fleet.
    for handle in handles {
        let session = handle.session(&fleet);
        assert_eq!(session.model_store().unique_groups(), 7);
        assert_eq!(session.model_store().model_count(), 3);
    }
}

#[test]
fn private_sessions_pay_for_their_own_copies() {
    // The counter-case proving the fleet numbers above come from
    // sharing: two standalone sessions registering the same checkpoints
    // each hold a private store with its own blobs.
    use safecross::{SafeCross, SafeCrossConfig};

    let daytime = checkpoint(17);
    let rain = with_adapted_head(&daytime, 0.125);
    let mut a = SafeCross::try_new(SafeCrossConfig::default()).expect("valid");
    let mut b = SafeCross::try_new(SafeCrossConfig::default()).expect("valid");
    for sc in [&mut a, &mut b] {
        sc.register_model(Weather::Daytime, daytime.clone());
        sc.register_model(Weather::Rain, rain.clone());
    }
    // Within one session the shared trunk still dedups (4 trunk groups
    // + 2 heads), but each session stores its own 6 unique groups.
    assert_eq!(a.model_store().unique_groups(), 6);
    assert_eq!(b.model_store().unique_groups(), 6);
    assert!(a.model_store().dedup_bytes() > 0);
}
