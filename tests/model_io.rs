//! Weight persistence across crates: train -> save -> load -> identical
//! behaviour, plus the model-switching payload derived from real models.

use safecross_dataset::{DatasetSpec, SegmentGenerator};
use safecross_modelswitch::{simulate_switch, GpuSpec, ModelDesc, SwitchStrategy};
use safecross_nn::{load_tensors, save_tensors, Mode};
use safecross_tensor::TensorRng;
use safecross_videoclass::{train, SlowFastLite, TrainConfig, VideoClassifier};

fn trained_model() -> (SlowFastLite, safecross_dataset::Dataset) {
    let spec = DatasetSpec {
        daytime_segments: 8,
        rain_segments: 0,
        snow_segments: 0,
        ..DatasetSpec::tiny()
    };
    let data = SegmentGenerator::new(50).generate_dataset(&spec);
    let mut rng = TensorRng::seed_from(3);
    let mut model = SlowFastLite::new(2, &mut rng);
    let all: Vec<usize> = (0..data.len()).collect();
    train(
        &mut model,
        &data,
        &all,
        &TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        },
    );
    (model, data)
}

#[test]
fn save_load_roundtrip_preserves_behaviour() {
    let (mut model, data) = trained_model();
    let path = std::env::temp_dir().join(format!("safecross_weights_{}.scnn", std::process::id()));
    save_tensors(&path, &model.state_dict()).expect("save");

    let mut rng = TensorRng::seed_from(77); // different init
    let mut restored = SlowFastLite::new(2, &mut rng);
    let state = load_tensors(&path).expect("load");
    restored.load_state_dict(&state);
    std::fs::remove_file(&path).ok();

    let (clip, _) = data.batch(&[0, 1]);
    let original = model.forward(&clip, Mode::Eval);
    let reloaded = restored.forward(&clip, Mode::Eval);
    assert!(
        original.allclose(&reloaded, 1e-5),
        "restored model diverges: {original:?} vs {reloaded:?}"
    );
}

#[test]
fn switch_payload_matches_real_model_size() {
    let (model, _) = trained_model();
    let sizes: Vec<(String, usize)> = model
        .state_dict()
        .iter()
        .map(|(n, t)| (n.clone(), t.len()))
        .collect();
    let desc = ModelDesc::from_state_sizes("slowfast_lite", &sizes, 1.0e9);
    assert_eq!(desc.total_bytes(), model.num_parameters() * 4 + buffer_bytes(&model));
    // Even the lite model switches in pipelined mode far faster than a
    // cold start.
    let gpu = GpuSpec::rtx_2080_ti();
    let pipe = simulate_switch(&gpu, &desc, &SwitchStrategy::PipelinedOptimal);
    let cold = simulate_switch(&gpu, &desc, &SwitchStrategy::StopAndStart);
    assert!(pipe.total_ms < cold.total_ms / 50.0);
}

fn buffer_bytes(model: &SlowFastLite) -> usize {
    model.buffers().iter().map(|(_, t)| t.len() * 4).sum()
}
