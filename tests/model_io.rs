//! Weight persistence across crates: train -> save -> load -> identical
//! behaviour, plus the model-switching payload derived from real models.

use safecross_dataset::{DatasetSpec, SegmentGenerator};
use safecross_modelswitch::{simulate_switch, GpuSpec, ModelDesc, SwitchStrategy};
use safecross_nn::{
    load_grouped, load_tensors, save_grouped, save_tensors, Mode, V1_COMPAT_GROUP,
};
use safecross_tensor::TensorRng;
use safecross_videoclass::{train, SlowFastLite, TrainConfig, VideoClassifier};

fn trained_model() -> (SlowFastLite, safecross_dataset::Dataset) {
    let spec = DatasetSpec {
        daytime_segments: 8,
        rain_segments: 0,
        snow_segments: 0,
        ..DatasetSpec::tiny()
    };
    let data = SegmentGenerator::new(50).generate_dataset(&spec);
    let mut rng = TensorRng::seed_from(3);
    let mut model = SlowFastLite::new(2, &mut rng);
    let all: Vec<usize> = (0..data.len()).collect();
    train(
        &mut model,
        &data,
        &all,
        &TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        },
    );
    (model, data)
}

#[test]
fn save_load_roundtrip_preserves_behaviour() {
    let (mut model, data) = trained_model();
    let path = std::env::temp_dir().join(format!("safecross_weights_{}.scnn", std::process::id()));
    save_tensors(&path, &model.state_dict()).expect("save");

    let mut rng = TensorRng::seed_from(77); // different init
    let mut restored = SlowFastLite::new(2, &mut rng);
    let state = load_tensors(&path).expect("load");
    restored.load_state_dict(&state);
    std::fs::remove_file(&path).ok();

    let (clip, _) = data.batch(&[0, 1]);
    let original = model.forward(&clip, Mode::Eval);
    let reloaded = restored.forward(&clip, Mode::Eval);
    assert!(
        original.allclose(&reloaded, 1e-5),
        "restored model diverges: {original:?} vs {reloaded:?}"
    );
}

#[test]
fn switch_payload_matches_real_model_size() {
    let (model, _) = trained_model();
    let sizes: Vec<(String, usize)> = model
        .state_dict()
        .iter()
        .map(|(n, t)| (n.clone(), t.len()))
        .collect();
    let desc = ModelDesc::from_state_sizes("slowfast_lite", &sizes, 1.0e9);
    assert_eq!(desc.total_bytes(), model.num_parameters() * 4 + buffer_bytes(&model));
    // Even the lite model switches in pipelined mode far faster than a
    // cold start.
    let gpu = GpuSpec::rtx_2080_ti();
    let pipe = simulate_switch(&gpu, &desc, &SwitchStrategy::PipelinedOptimal);
    let cold = simulate_switch(&gpu, &desc, &SwitchStrategy::StopAndStart);
    assert!(pipe.total_ms < cold.total_ms / 50.0);
}

fn buffer_bytes(model: &SlowFastLite) -> usize {
    model.buffers().iter().map(|(_, t)| t.len() * 4).sum()
}

#[test]
fn v1_checkpoints_read_back_through_the_v2_loader() {
    // Files written by the original flat `save_tensors` (format v1) must
    // stay readable forever: the v2 loader presents them as a single
    // compat group holding every entry, bit-identical.
    let (model, _) = trained_model();
    let path = std::env::temp_dir().join(format!("safecross_v1_compat_{}.scnn", std::process::id()));
    let state = model.state_dict();
    save_tensors(&path, &state).expect("save v1");

    let (manifest, entries) = load_grouped(&path).expect("v2 loader reads v1");
    std::fs::remove_file(&path).ok();
    assert_eq!(manifest.groups.len(), 1, "v1 file maps to one group");
    assert_eq!(manifest.groups[0].name, V1_COMPAT_GROUP);
    assert_eq!(manifest.groups[0].params.len(), state.len());
    assert_eq!(entries.len(), state.len());
    for ((sn, st), (ln, lt)) in state.iter().zip(&entries) {
        assert_eq!(sn, ln);
        assert_eq!(st.dims(), lt.dims());
        let same = st
            .data()
            .iter()
            .zip(lt.data())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "entry {sn} not bit-identical after v1->v2 read");
    }
}

#[test]
fn grouped_checkpoints_roundtrip_through_both_loaders() {
    // A v2 grouped save must read back through `load_grouped` (manifest
    // intact) and through the flat `load_tensors` view.
    let (mut model, data) = trained_model();
    let path = std::env::temp_dir().join(format!("safecross_v2_groups_{}.scnn", std::process::id()));
    let groups = model.state_groups();
    let manifest = save_grouped(&path, model.name(), &groups).expect("save v2");
    assert_eq!(
        manifest.groups.iter().map(|g| g.name.as_str()).collect::<Vec<_>>(),
        ["fast1", "fast2", "slow1", "slow2", "head"],
    );

    let (read_manifest, _) = load_grouped(&path).expect("load v2");
    assert_eq!(read_manifest, manifest);
    let flat = load_tensors(&path).expect("flat view of v2");
    std::fs::remove_file(&path).ok();
    let mut restored = SlowFastLite::new(2, &mut TensorRng::seed_from(123));
    restored.load_state_dict(&flat);
    let (clip, _) = data.batch(&[0, 1]);
    let original = model.forward(&clip, Mode::Eval);
    let reloaded = restored.forward(&clip, Mode::Eval);
    assert_eq!(
        original.data(), reloaded.data(),
        "grouped roundtrip must preserve behaviour bit-for-bit"
    );
}
