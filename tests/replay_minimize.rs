//! The bisection minimizer's acceptance bar: a seeded failing trace —
//! hundreds of frames across several streams, of which only a short
//! run on one stream actually matters — must shrink to a small
//! fraction of its original frames while still reproducing the
//! failure.

use safecross::SafeCrossConfig;
use safecross_dataset::Class;
use safecross_replay::{build_fleet, minimize, record_reference_run, ModelSpec};
use safecross_serve::ServeConfig;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{RenderConfig, Renderer, Scenario, Simulator, Weather};
use safecross_vision::GrayFrame;
use std::time::Duration;

const W: usize = 64;
const H: usize = 48;

fn config() -> ServeConfig {
    ServeConfig::builder()
        .shards(1)
        .shedding(false)
        .stream(SafeCrossConfig {
            frame_width: W,
            frame_height: H,
            segment_frames: 8,
            scene_window: 4,
            min_confidence: 0.0,
            ..SafeCrossConfig::default()
        })
        .build()
        .expect("config is valid")
}

fn rendered(weather: Weather, frames: usize, seed: u64) -> Vec<GrayFrame> {
    let mut sim = Simulator::new(Scenario::new(weather, true, 0.15), seed);
    let rc = RenderConfig {
        width: W,
        height: H,
        ..RenderConfig::default()
    };
    let mut renderer = Renderer::new(rc, weather, seed);
    (0..frames)
        .map(|_| {
            sim.step(DT);
            renderer.render(&sim)
        })
        .collect()
}

#[test]
fn minimizer_shrinks_a_failing_trace_below_a_quarter() {
    // Three streams, 240 frames total. The "failure" is a property only
    // stream 1 can trigger: it produces at least one danger verdict.
    let feeds = vec![
        rendered(Weather::Daytime, 80, 1),
        rendered(Weather::Daytime, 80, 2),
        rendered(Weather::Rain, 80, 3),
    ];
    let spec = ModelSpec {
        seed: 5,
        classes: 2,
        weathers: Weather::ALL.to_vec(),
    };
    let (trace, _) = record_reference_run(config(), &spec, feeds, Duration::ZERO)
        .expect("recording runs");
    let original = trace.frame_count();
    assert_eq!(original, 240);

    // The failure predicate replays the candidate input through the
    // reference executor and checks a property of the *replayed*
    // output — exactly how a shrunk repro is used in anger. (It must
    // not compare against the recorded outputs: a subset of the input
    // legitimately produces different outputs.)
    let still_fails = |candidate: &safecross_replay::Trace| {
        let mut fleet = build_fleet(candidate).expect("candidate builds");
        let feeds: Vec<Vec<GrayFrame>> = candidate
            .streams
            .iter()
            .map(|s| s.iter().map(|rf| rf.frame.clone()).collect())
            .collect();
        fleet.run_reference(feeds).expect("candidate runs");
        let handles = fleet.handles();
        (0..candidate.streams.len()).any(|s| {
            handles[s]
                .verdicts(&fleet)
                .iter()
                .any(|v| v.class == Class::Danger)
        })
    };

    // The full trace must exhibit the failure or there is nothing to
    // minimize.
    assert!(still_fails(&trace), "seeded trace must fail to begin with");

    let shrunk = minimize(&trace, still_fails);
    let kept = shrunk.frame_count();
    assert!(
        kept * 4 <= original,
        "minimizer kept {kept} of {original} frames; bar is <= 25%"
    );
    assert!(kept > 0, "an empty trace cannot fail");
    assert!(
        still_fails(&shrunk),
        "the shrunk trace must still reproduce the failure"
    );
    assert_eq!(
        shrunk.streams.len(),
        trace.streams.len(),
        "stream count (and round-robin shape) is preserved"
    );

    // The shrunk trace is a portable artifact: it serialises like any
    // other, so the repro can be attached to a bug report.
    let bytes = shrunk.to_bytes();
    let reloaded = safecross_replay::Trace::from_bytes(&bytes).expect("shrunk trace parses");
    assert!(still_fails(&reloaded));
}
