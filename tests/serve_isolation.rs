//! Stream isolation under overload: one stalled feed and one flooded
//! feed must not perturb the seven healthy streams sharing the fleet.
//! Healthy streams complete every frame with zero shed and verdicts
//! bit-identical to a standalone run; shed counters move only on the
//! offender; the stalled stream still completes everything it sends.

use safecross::{SafeCross, SafeCrossConfig};
use safecross_serve::{paced_feed, FleetServer, ServeConfig, StreamSpec};
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{RenderConfig, Renderer, Scenario, Simulator, Weather};
use safecross_videoclass::SlowFastLite;
use safecross_vision::GrayFrame;
use std::time::Duration;

const STALLED: usize = 0;
const FLOODED: usize = 1;
const HEALTHY: std::ops::Range<usize> = 2..9;

const HEALTHY_FRAMES: usize = 56;
const FLOOD_FRAMES: usize = 300;
const STALL_FRAMES: usize = 10;
const QUEUE_CAPACITY: usize = 64;

fn shared_models() -> Vec<(Weather, SlowFastLite)> {
    let mut rng = TensorRng::seed_from(3);
    Weather::ALL
        .iter()
        .map(|&w| (w, SlowFastLite::new(2, &mut rng)))
        .collect()
}

/// Daytime footage for one healthy stream.
fn healthy_frames(seed: u64) -> Vec<GrayFrame> {
    let mut sim = Simulator::new(Scenario::new(Weather::Daytime, true, 0.15), seed);
    let mut renderer = Renderer::new(RenderConfig::default(), Weather::Daytime, seed);
    (0..HEALTHY_FRAMES)
        .map(|_| {
            sim.step(DT);
            renderer.render(&sim)
        })
        .collect()
}

/// Cheap synthetic frames for the offender streams — most are shed or
/// never classified, so their content only needs to be well-formed.
fn synthetic_frames(count: usize, phase: u8) -> Vec<GrayFrame> {
    (0..count)
        .map(|i| GrayFrame::filled(320, 240, phase.wrapping_add((i % 97) as u8)))
        .collect()
}

#[test]
fn overloaded_streams_do_not_perturb_healthy_ones() {
    let models = shared_models();

    // Standalone comparators for the healthy streams.
    let healthy: Vec<Vec<GrayFrame>> = HEALTHY.map(|i| healthy_frames(i as u64)).collect();
    let expected: Vec<SafeCross> = healthy
        .iter()
        .map(|frames| {
            let mut sc =
                SafeCross::try_new(SafeCrossConfig::default()).expect("default config is valid");
            for (w, m) in &models {
                sc.register_model(*w, m.clone());
            }
            for f in frames {
                sc.process_frame(f);
            }
            sc
        })
        .collect();

    let config = ServeConfig::builder()
        .shards(2)
        .queue_capacity(QUEUE_CAPACITY)
        .build()
        .expect("valid serve configuration");
    assert!(config.shedding, "shedding is on by default");
    let mut fleet = FleetServer::new(config).expect("valid serve configuration");
    for (w, m) in &models {
        fleet.register_model(*w, m.clone()).expect("models first");
    }
    let handles: Vec<_> = (0..9)
        .map(|_| fleet.open_stream(StreamSpec::new()).expect("models are registered"))
        .collect();

    // Stream 0 stalls (long gaps between frames), stream 1 floods its
    // whole backlog at once, streams 2..9 deliver a normal clip whose
    // frame count fits their admission queue.
    let feeds = (0..9)
        .map(|i| match i {
            STALLED => paced_feed(
                synthetic_frames(STALL_FRAMES, 11),
                Duration::from_millis(25),
            ),
            FLOODED => paced_feed(synthetic_frames(FLOOD_FRAMES, 53), Duration::ZERO),
            _ => paced_feed(healthy[i - HEALTHY.start].clone(), Duration::ZERO),
        })
        .collect();
    let report = fleet.run(feeds).expect("overload run succeeds");

    // Healthy streams: complete coverage, zero shed, bit-identical
    // verdicts.
    for (k, i) in HEALTHY.enumerate() {
        let stats = handles[i].stats(&fleet);
        assert_eq!(stats.fed, HEALTHY_FRAMES as u64, "stream {i} fed count");
        assert_eq!(
            stats.completed, HEALTHY_FRAMES as u64,
            "healthy stream {i} must complete every frame"
        );
        assert_eq!(stats.shed(), 0, "healthy stream {i} must shed nothing");
        let session = handles[i].session(&fleet);
        assert_eq!(
            session.verdicts(),
            expected[k].verdicts(),
            "healthy stream {i} verdicts diverged under overload"
        );
        assert!(
            !session.verdicts().is_empty(),
            "healthy stream {i} produced verdicts (the comparison is non-vacuous)"
        );
    }

    // The stalled stream is slow, not broken: everything it sent
    // completed, nothing was shed.
    let stalled = handles[STALLED].stats(&fleet);
    assert_eq!(stalled.fed, STALL_FRAMES as u64);
    assert_eq!(stalled.completed, STALL_FRAMES as u64);
    assert_eq!(stalled.shed(), 0, "a slow feed never fills its queue");

    // The flooded stream overflowed its bounded queue and paid for it
    // alone. Accounting is exact: every fed frame either completed or
    // was counted shed.
    let flooded = handles[FLOODED].stats(&fleet);
    assert_eq!(flooded.fed, FLOOD_FRAMES as u64);
    assert!(
        flooded.shed_overflow > 0,
        "flooding past queue_capacity must shed (got {flooded:?})"
    );
    assert_eq!(
        flooded.completed + flooded.shed(),
        FLOOD_FRAMES as u64,
        "flooded stream accounting must balance"
    );
    assert!(
        flooded.queue_peak <= QUEUE_CAPACITY as u64 + 1,
        "admission keeps the queue bounded (peak {})",
        flooded.queue_peak
    );

    // Fleet-level shed equals the offender's shed: nobody else paid.
    assert_eq!(report.shed, flooded.shed(), "only the flooded stream shed");
    let total_fed = STALL_FRAMES + FLOOD_FRAMES + 7 * HEALTHY_FRAMES;
    assert_eq!(
        report.completed + report.shed,
        total_fed as u64,
        "fleet accounting must balance"
    );
}
