//! Fixed-seed int8-vs-f32 accuracy gates, tiered per classifier
//! family.
//!
//! The f32 path is the bit-identity reference; int8 trades a bounded
//! amount of logit accuracy for throughput. These gates pin that trade
//! with family-specific tolerances (deeper stacks accumulate more
//! quantization noise, so each family gets its own tier) plus a
//! decision-level check: on every clip whose f32 logit margin is
//! comfortably above the tier, int8 must pick the same class. Seeds and
//! shapes are fixed, and the int8 path is integer-exact, so these
//! bounds are exact regressions — not flaky statistical tests.

use safecross_nn::Mode;
use safecross_tensor::{kernel, Precision, Tensor, TensorRng};
use safecross_videoclass::{C3dLite, SlowFastLite, TsnLite, VideoClassifier};

const CLASSES: usize = 2;
const CLIPS: usize = 8;

/// Renders a deterministic batch of clips in the models' input domain.
fn clip_batch(seed: u64) -> Tensor {
    let mut rng = TensorRng::seed_from(seed);
    rng.uniform(&[CLIPS, 1, 32, 20, 20], 0.0, 1.0)
}

/// Worst logit disagreement and decision agreement between the f32 and
/// int8 forwards of one model.
fn compare(model: &mut dyn VideoClassifier, clips: &Tensor, tol: f32) -> f32 {
    model.set_precision(Precision::F32);
    let f32_logits = model.forward(clips, Mode::Eval);
    model.set_precision(Precision::Int8);
    let int8_logits = model.forward(clips, Mode::Eval);
    model.set_precision(Precision::F32);
    assert_eq!(f32_logits.dims(), &[CLIPS, CLASSES]);
    assert_eq!(int8_logits.dims(), &[CLIPS, CLASSES]);

    let mut worst = 0.0f32;
    for c in 0..CLIPS {
        let fl = &f32_logits.data()[c * CLASSES..(c + 1) * CLASSES];
        let il = &int8_logits.data()[c * CLASSES..(c + 1) * CLASSES];
        for (a, b) in fl.iter().zip(il) {
            worst = worst.max((a - b).abs());
        }
        // Decision agreement wherever f32 is confident relative to the
        // tier: a margin above 2·tol cannot be flipped by per-logit
        // error within tol.
        let margin = (fl[0] - fl[1]).abs();
        if margin > 2.0 * tol {
            let f_arg = (fl[1] > fl[0]) as usize;
            let i_arg = (il[1] > il[0]) as usize;
            assert_eq!(
                f_arg, i_arg,
                "{}: int8 flipped a confident decision (clip {c}, margin {margin})",
                model.name()
            );
        }
    }
    worst
}

/// The per-family tolerance tiers. SlowFast runs two conv stacks and a
/// channel fusion, C3D a single deeper conv stack, TSN a shallow 2-D
/// backbone over snippets — quantization noise grows with conv depth
/// and fan-in, which is what the tiers encode. Values are roughly 2×
/// the worst observed drift at these seeds, so genuine regressions
/// (a broken quantizer, a scale mismatch) trip them while benign
/// rounding churn does not.
#[test]
fn int8_logits_track_f32_within_family_tiers() {
    let mut rng = TensorRng::seed_from(11);
    let clips = clip_batch(12);
    let families: [(Box<dyn VideoClassifier>, f32); 3] = [
        (Box::new(SlowFastLite::new(CLASSES, &mut rng)), 0.02),
        (Box::new(C3dLite::new(CLASSES, &mut rng)), 0.04),
        (Box::new(TsnLite::new(CLASSES, &mut rng)), 0.02),
    ];
    for (mut model, tol) in families {
        let worst = compare(model.as_mut(), &clips, tol);
        println!("{}: worst int8 logit drift {worst:.5} (tier {tol})", model.name());
        assert!(
            worst <= tol,
            "{}: int8 drift {worst} exceeds the {tol} tier",
            model.name()
        );
        assert!(worst > 0.0, "{}: int8 suspiciously exact — is it quantizing at all?", model.name());
    }
}

/// The int8 forward is integer-exact, so its logits must be
/// bit-identical across instruction sets and thread counts — the same
/// invariance contract the f32 path has, just at the quantized level.
#[test]
fn int8_logits_are_isa_and_thread_invariant() {
    let mut rng = TensorRng::seed_from(13);
    let clips = clip_batch(14);
    let mut model = SlowFastLite::new(CLASSES, &mut rng);
    model.set_precision(Precision::Int8);

    let detected = kernel::isa();
    let threads = kernel::threads();
    let mut reference: Option<Vec<u32>> = None;
    for isa in [kernel::Isa::Scalar, detected] {
        for workers in [1usize, 4] {
            kernel::set_isa(isa);
            kernel::set_threads(workers);
            let logits = model.forward(&clips, Mode::Eval);
            kernel::set_isa(detected);
            kernel::set_threads(threads);
            let bits: Vec<u32> = logits.data().iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(want) => {
                    assert_eq!(&bits, want, "int8 logits diverged at isa={isa:?} workers={workers}")
                }
            }
        }
    }
}
