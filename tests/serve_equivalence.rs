//! The serving layer's core contract: multiplexing N streams over a
//! shared batched-inference pool must not change a single bit of any
//! stream's output. Every stream's verdict sequence, switch log, frame
//! counter, and final scene must match a standalone sequential
//! `process_frame` loop over the same frames with the same models —
//! in the deterministic single-threaded reference mode AND in the real
//! threaded mode with shedding disabled (lossless serving).

use safecross::{SafeCross, SafeCrossConfig};
use safecross_serve::{paced_feed, FleetServer, ServeConfig, StreamSpec};
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{RenderConfig, Renderer, Scenario, Simulator, Weather};
use safecross_videoclass::SlowFastLite;
use safecross_vision::GrayFrame;
use std::time::Duration;

/// One shared model per weather, built deterministically. The fleet and
/// every standalone comparator register clones of these same models in
/// the same order — the precondition for bit-identity.
fn shared_models() -> Vec<(Weather, SlowFastLite)> {
    let mut rng = TensorRng::seed_from(0);
    Weather::ALL
        .iter()
        .map(|&w| (w, SlowFastLite::new(2, &mut rng)))
        .collect()
}

fn standalone(models: &[(Weather, SlowFastLite)]) -> SafeCross {
    let mut sc = SafeCross::try_new(SafeCrossConfig::default()).expect("default config is valid");
    for (w, m) in models {
        sc.register_model(*w, m.clone());
    }
    sc
}

/// Renders `frames` frames of one weather's footage.
fn rendered(weather: Weather, frames: usize, seed: u64) -> Vec<GrayFrame> {
    let mut sim = Simulator::new(Scenario::new(weather, true, 0.15), seed);
    let mut renderer = Renderer::new(RenderConfig::default(), weather, seed);
    (0..frames)
        .map(|_| {
            sim.step(DT);
            renderer.render(&sim)
        })
        .collect()
}

fn stream(phases: &[(Weather, usize)], seed: u64) -> Vec<GrayFrame> {
    phases
        .iter()
        .enumerate()
        .flat_map(|(i, &(weather, frames))| rendered(weather, frames, seed * 100 + i as u64))
        .collect()
}

/// Four streams in distinct regimes: steady daytime, a rain transition,
/// a snow round trip, and rain-from-the-start (early switch away from
/// the initial scene).
fn fleet_feeds() -> Vec<Vec<GrayFrame>> {
    vec![
        stream(&[(Weather::Daytime, 50)], 1),
        stream(&[(Weather::Daytime, 30), (Weather::Rain, 30)], 2),
        stream(
            &[
                (Weather::Daytime, 26),
                (Weather::Snow, 26),
                (Weather::Daytime, 26),
            ],
            3,
        ),
        stream(&[(Weather::Rain, 40)], 4),
    ]
}

/// Runs every feed through a standalone sequential system and returns
/// the per-stream expected states.
fn expected_states(
    models: &[(Weather, SlowFastLite)],
    feeds: &[Vec<GrayFrame>],
) -> Vec<SafeCross> {
    feeds
        .iter()
        .map(|frames| {
            let mut sc = standalone(models);
            for f in frames {
                sc.process_frame(f);
            }
            sc
        })
        .collect()
}

fn assert_streams_match(fleet: &FleetServer, expected: &[SafeCross]) {
    let handles = fleet.handles();
    for (i, want) in expected.iter().enumerate() {
        let got = handles[i].session(fleet);
        assert_eq!(got.verdicts(), want.verdicts(), "stream {i} verdicts diverged");
        assert_eq!(
            got.frames_seen(),
            want.frames_seen(),
            "stream {i} frame count diverged"
        );
        assert_eq!(
            got.current_scene(),
            want.current_scene(),
            "stream {i} final scene diverged"
        );
        got.with_switch_log(|got_log| {
            want.with_switch_log(|want_log| {
                assert_eq!(got_log, want_log, "stream {i} switch log diverged");
            });
        });
    }
}

fn fleet(models: &[(Weather, SlowFastLite)], streams: usize) -> FleetServer {
    let config = ServeConfig::builder()
        .shards(2)
        .shedding(false)
        .build()
        .expect("valid serve configuration");
    let mut fleet = FleetServer::new(config).expect("valid serve configuration");
    for (w, m) in models {
        fleet.register_model(*w, m.clone()).expect("models first");
    }
    for _ in 0..streams {
        fleet.open_stream(StreamSpec::new()).expect("models are registered");
    }
    fleet
}

#[test]
fn reference_mode_is_bit_identical_to_standalone() {
    let models = shared_models();
    let feeds = fleet_feeds();
    let expected = expected_states(&models, &feeds);

    let mut served = fleet(&models, feeds.len());
    let total: usize = feeds.iter().map(Vec::len).sum();
    let report = served.run_reference(feeds).expect("reference run succeeds");

    assert_eq!(report.completed as usize, total, "reference mode is lossless");
    assert_eq!(report.shed, 0);
    assert_streams_match(&served, &expected);
}

#[test]
fn threaded_lossless_mode_is_bit_identical_to_standalone() {
    let models = shared_models();
    let feeds = fleet_feeds();
    let expected = expected_states(&models, &feeds);

    let mut served = fleet(&models, feeds.len());
    let total: usize = feeds.iter().map(Vec::len).sum();
    let report = served
        .run(
            feeds
                .into_iter()
                .map(|frames| paced_feed(frames, Duration::ZERO))
                .collect(),
        )
        .expect("threaded run succeeds");

    assert_eq!(
        report.completed as usize, total,
        "shedding disabled means every frame completes"
    );
    assert_eq!(report.shed, 0);
    assert!(report.batches > 0, "the executor actually batched");
    assert_streams_match(&served, &expected);
}

#[test]
fn threaded_equivalence_is_shard_count_independent() {
    // Shard count changes executor interleaving, never per-stream
    // results — same role the channel-capacity sweep plays for the
    // staged pipeline.
    let models = shared_models();
    let feeds: Vec<Vec<GrayFrame>> = vec![
        stream(&[(Weather::Daytime, 20), (Weather::Snow, 22)], 7),
        stream(&[(Weather::Daytime, 40)], 8),
        stream(&[(Weather::Rain, 34)], 9),
        stream(&[(Weather::Snow, 18), (Weather::Daytime, 18)], 10),
    ];
    let expected = expected_states(&models, &feeds);

    for shards in [1, 4] {
        let config = ServeConfig::builder()
            .shards(shards)
            .shedding(false)
            .batch_max(3)
            .build()
            .expect("valid serve configuration");
        let mut served = FleetServer::new(config).expect("valid serve configuration");
        for (w, m) in &models {
            served.register_model(*w, m.clone()).expect("models first");
        }
        for _ in 0..feeds.len() {
            served.open_stream(StreamSpec::new()).expect("models are registered");
        }
        served
            .run(
                feeds
                    .iter()
                    .map(|frames| paced_feed(frames.clone(), Duration::ZERO))
                    .collect(),
            )
            .expect("threaded run succeeds");
        assert_streams_match(&served, &expected);
    }
}

#[test]
fn reference_and_threaded_agree_with_each_other() {
    let models = shared_models();
    let feeds = fleet_feeds();

    let mut reference = fleet(&models, feeds.len());
    reference
        .run_reference(feeds.clone())
        .expect("reference run succeeds");

    let mut threaded = fleet(&models, feeds.len());
    threaded
        .run(
            feeds
                .into_iter()
                .map(|frames| paced_feed(frames, Duration::ZERO))
                .collect(),
        )
        .expect("threaded run succeeds");

    let ref_handles = reference.handles();
    let thr_handles = threaded.handles();
    for i in 0..reference.streams() {
        assert_eq!(
            ref_handles[i].verdicts(&reference),
            thr_handles[i].verdicts(&threaded),
            "stream {i} diverged between modes"
        );
    }
}
