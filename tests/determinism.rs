//! Reproducibility guarantees across the whole stack: identical seeds
//! must give bit-identical datasets, training runs, and switch logs.

use safecross_dataset::{DatasetSpec, SegmentGenerator};
use safecross_modelswitch::{simulate_switch, GpuSpec, ModelDesc, SwitchStrategy};
use safecross_tensor::TensorRng;
use safecross_trafficsim::{Scenario, Simulator, Weather};
use safecross_videoclass::{train, SlowFastLite, TrainConfig, VideoClassifier};

fn small_spec() -> DatasetSpec {
    DatasetSpec {
        daytime_segments: 6,
        rain_segments: 0,
        snow_segments: 2,
        ..DatasetSpec::tiny()
    }
}

#[test]
fn datasets_are_bit_identical_per_seed() {
    let a = SegmentGenerator::new(42).generate_dataset(&small_spec());
    let b = SegmentGenerator::new(42).generate_dataset(&small_spec());
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        assert_eq!(a.get(i).clip, b.get(i).clip, "segment {i} differs");
        assert_eq!(a.get(i).label, b.get(i).label);
    }
    // A different seed must differ somewhere.
    let c = SegmentGenerator::new(43).generate_dataset(&small_spec());
    assert!((0..a.len()).any(|i| a.get(i).clip != c.get(i).clip));
}

#[test]
fn training_is_deterministic_per_seed() {
    let data = SegmentGenerator::new(1).generate_dataset(&small_spec());
    let all: Vec<usize> = (0..data.len()).collect();
    let cfg = TrainConfig {
        epochs: 2,
        seed: 9,
        ..TrainConfig::default()
    };
    let run = || {
        let mut rng = TensorRng::seed_from(4);
        let mut model = SlowFastLite::new(2, &mut rng);
        let report = train(&mut model, &data, &all, &cfg);
        let weights: Vec<f32> = model
            .params()
            .iter()
            .flat_map(|p| p.value.data().to_vec())
            .collect();
        (report.epoch_losses.clone(), weights)
    };
    let (la, wa) = run();
    let (lb, wb) = run();
    assert_eq!(la, lb);
    assert_eq!(wa, wb);
}

#[test]
fn simulation_event_logs_replay_identically() {
    let scenario = Scenario::new(Weather::Rain, true, 0.25);
    let mut a = Simulator::new(scenario, 11);
    let mut b = Simulator::new(scenario, 11);
    a.run(30.0);
    b.run(30.0);
    assert_eq!(a.events(), b.events());
    assert_eq!(a.turns_completed(), b.turns_completed());
}

#[test]
fn switch_simulation_is_pure() {
    let gpu = GpuSpec::rtx_2080_ti();
    let model = ModelDesc::slowfast_r50();
    let a = simulate_switch(&gpu, &model, &SwitchStrategy::PipelinedOptimal);
    let b = simulate_switch(&gpu, &model, &SwitchStrategy::PipelinedOptimal);
    assert_eq!(a, b);
}
