//! The staged pipeline's core contract: for the same frame stream, the
//! same system state, and any channel capacity, `run_pipelined` must
//! produce outcomes bit-identical to a sequential `process_frame` loop —
//! verdicts, confidences, scene switches, and all post-run state.
//!
//! Three synthetic streams cover the interesting regimes: steady
//! daytime (no switches), a daytime-to-rain transition, and a
//! daytime-to-snow-and-back round trip (two switches, model reuse).

use safecross::{FrameOutcome, PipelineConfig, SafeCross, SafeCrossConfig};
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{RenderConfig, Renderer, Scenario, Simulator, Weather};
use safecross_videoclass::SlowFastLite;
use safecross_vision::GrayFrame;

fn system_with_telemetry(telemetry: bool) -> SafeCross {
    let mut rng = TensorRng::seed_from(0);
    let config = SafeCrossConfig::builder()
        .telemetry(telemetry)
        .build()
        .expect("valid configuration");
    let mut sc = SafeCross::try_new(config).expect("validated configuration");
    for w in Weather::ALL {
        sc.register_model(w, SlowFastLite::new(2, &mut rng));
    }
    sc
}

fn system() -> SafeCross {
    system_with_telemetry(false)
}

/// Renders `frames` frames of one weather's footage.
fn rendered(weather: Weather, frames: usize, seed: u64) -> Vec<GrayFrame> {
    let mut sim = Simulator::new(Scenario::new(weather, true, 0.15), seed);
    let mut renderer = Renderer::new(RenderConfig::default(), weather, seed);
    (0..frames)
        .map(|_| {
            sim.step(DT);
            renderer.render(&sim)
        })
        .collect()
}

/// Concatenates rendered phases into one stream.
fn stream(phases: &[(Weather, usize)]) -> Vec<GrayFrame> {
    phases
        .iter()
        .enumerate()
        .flat_map(|(i, &(weather, frames))| rendered(weather, frames, i as u64 + 1))
        .collect()
}

/// Runs the same stream sequentially and pipelined (at the given
/// capacity) on identically-initialised systems and asserts every
/// observable output matches bit for bit.
fn assert_equivalent(frames: &[GrayFrame], capacity: usize) {
    let mut sequential = system();
    let expected: Vec<FrameOutcome> = frames
        .iter()
        .map(|f| sequential.process_frame(f))
        .collect();

    let mut pipelined = system();
    let run = pipelined.run_pipelined(
        frames.to_vec(),
        &PipelineConfig {
            channel_capacity: capacity,
            classify_delay: None,
        },
    );

    assert_eq!(run.outcomes.len(), expected.len(), "outcome count");
    for (i, (got, want)) in run.outcomes.iter().zip(&expected).enumerate() {
        assert_eq!(got, want, "frame {i} diverged (capacity {capacity})");
    }
    // Post-run system state matches too.
    assert_eq!(pipelined.verdicts(), sequential.verdicts());
    assert_eq!(pipelined.frames_seen(), sequential.frames_seen());
    assert_eq!(pipelined.current_scene(), sequential.current_scene());
    pipelined.with_switch_log(|a| {
        sequential.with_switch_log(|b| assert_eq!(a, b, "switch logs diverged"));
    });
}

#[test]
fn daytime_stream_is_equivalent() {
    let frames = stream(&[(Weather::Daytime, 70)]);
    assert_equivalent(&frames, 8);
}

#[test]
fn rain_transition_is_equivalent() {
    // Daytime footage, then rain: the mid-stream model switch must land
    // on exactly the same frame in both execution modes.
    let frames = stream(&[(Weather::Daytime, 40), (Weather::Rain, 40)]);
    assert_equivalent(&frames, 8);
}

#[test]
fn snow_round_trip_is_equivalent() {
    let frames = stream(&[
        (Weather::Daytime, 36),
        (Weather::Snow, 36),
        (Weather::Daytime, 36),
    ]);
    assert_equivalent(&frames, 8);
}

#[test]
fn equivalence_is_capacity_independent() {
    // The channel capacity changes scheduling, never results.
    let frames = stream(&[(Weather::Daytime, 20), (Weather::Snow, 25)]);
    for capacity in [1, 2, 32] {
        assert_equivalent(&frames, capacity);
    }
}

#[test]
fn instrumentation_does_not_perturb_outcomes() {
    // The bit-identity guarantee must survive live telemetry: a fully
    // instrumented pipelined run against an uninstrumented sequential
    // loop, and vice versa, all four combinations agreeing.
    let frames = stream(&[(Weather::Daytime, 36), (Weather::Snow, 36)]);

    let mut plain_seq = system_with_telemetry(false);
    let expected: Vec<FrameOutcome> = frames
        .iter()
        .map(|f| plain_seq.process_frame(f))
        .collect();

    let mut timed_seq = system_with_telemetry(true);
    let timed_outcomes: Vec<FrameOutcome> = frames
        .iter()
        .map(|f| timed_seq.process_frame(f))
        .collect();
    assert_eq!(timed_outcomes, expected, "sequential diverged under telemetry");

    let mut timed_pipe = system_with_telemetry(true);
    let run = timed_pipe.run_pipelined(frames.to_vec(), &PipelineConfig::default());
    assert_eq!(run.outcomes, expected, "pipelined diverged under telemetry");
    assert_eq!(timed_pipe.verdicts(), plain_seq.verdicts());
    timed_pipe.with_switch_log(|a| {
        plain_seq.with_switch_log(|b| assert_eq!(a, b, "switch logs diverged"));
    });

    // And the instrumentation actually recorded the run: both modes
    // counted every frame through every stage.
    for sc in [&timed_seq, &timed_pipe] {
        let snap = sc.telemetry().snapshot();
        assert_eq!(snap.counter("stage.scene.frames"), Some(72));
        assert_eq!(snap.counter("vp.frames"), Some(72));
        assert_eq!(
            snap.histogram("stage.classify.step_ms").map(|h| h.count),
            Some(72)
        );
        // One initial daytime switch plus the mid-stream snow switch.
        assert_eq!(snap.counter("ms.switches"), Some(2));
    }
}

#[test]
fn switch_log_frames_match_across_modes() {
    // The frame a switch is attributed to comes from the scene stage's
    // own counter, so it is deterministic and mode-independent.
    let frames = stream(&[(Weather::Daytime, 30), (Weather::Rain, 30)]);
    let mut seq = system();
    for f in &frames {
        seq.process_frame(f);
    }
    let mut pipe = system();
    pipe.run_pipelined(frames, &PipelineConfig::default());
    seq.with_switch_log(|a| {
        pipe.with_switch_log(|b| assert_eq!(a, b));
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].frame, 0, "initial registration switch is frame 0");
        assert!(a[1].frame >= 30, "rain switch must land after the transition");
    });
}

#[test]
fn switch_reports_surface_in_pipelined_outcomes() {
    let frames = stream(&[(Weather::Daytime, 30), (Weather::Snow, 30)]);
    let mut sc = system();
    let run = sc.run_pipelined(frames, &PipelineConfig::default());
    let switches: Vec<_> = run
        .outcomes
        .iter()
        .filter_map(|o| o.scene_switch.as_ref())
        .collect();
    assert_eq!(switches.len(), 1, "exactly one snow switch");
    assert_eq!(switches[0].0, Weather::Snow);
    assert!(switches[0].1.switch_overhead_ms < 10.0);
}
