//! Zero-allocation guarantee of the steady-state classification path.
//!
//! `classify_with_model` routes every intermediate — the batched clip
//! view, all layer activations, im2col/vol2col patch matrices, and the
//! probability row — through a caller-owned [`KernelScratch`] arena.
//! After a few warm-up clips the pool reaches a fixed point and a
//! classify performs **no** heap allocation at all. This test pins that
//! down with a counting global allocator.
//!
//! The file deliberately holds a single test: the allocator counters
//! are process-global, so a sibling test running on another thread
//! would corrupt the measurement.

use safecross::classify_with_model;
use safecross_tensor::{kernel, KernelScratch, TensorRng};
use safecross_trafficsim::Weather;
use safecross_videoclass::SlowFastLite;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static DEALLOCS: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counters
// are side effects only.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc`; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: same contract as `System::dealloc`; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    // SAFETY: same contract as `System::realloc`; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_classify_allocates_nothing() {
    // Spawning scoped GEMM workers allocates (thread stacks, join
    // handles), so the zero-allocation guarantee is specific to the
    // serial kernel path; pin it explicitly rather than relying on the
    // host's core count.
    kernel::set_threads(1);

    let mut rng = TensorRng::seed_from(0);
    let mut model = SlowFastLite::new(2, &mut rng);
    let clip = rng.uniform(&[1, 32, 20, 20], 0.0, 1.0);
    let mut scratch = KernelScratch::new();

    // Warm the arena until the buffer pool reaches its fixed point.
    let expected = classify_with_model(&mut model, &clip, Weather::Daytime, &mut scratch);
    for _ in 0..3 {
        classify_with_model(&mut model, &clip, Weather::Daytime, &mut scratch);
    }

    let allocs_before = ALLOCS.load(Ordering::SeqCst);
    let deallocs_before = DEALLOCS.load(Ordering::SeqCst);
    let mut verdicts = [expected; 8];
    for v in &mut verdicts {
        *v = classify_with_model(&mut model, &clip, Weather::Daytime, &mut scratch);
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - allocs_before;
    let deallocs = DEALLOCS.load(Ordering::SeqCst) - deallocs_before;

    assert_eq!(allocs, 0, "steady-state classify hit the allocator");
    assert_eq!(deallocs, 0, "steady-state classify freed memory");
    for v in verdicts {
        assert_eq!(v, expected, "warm classifies diverged");
    }
}
