//! Cross-crate integration: simulator -> camera -> VP -> VC -> warning.

use safecross::{SafeCross, SafeCrossConfig};
use safecross_dataset::{Class, DatasetSpec, SegmentGenerator};
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{Renderer, RenderConfig, Scenario, Simulator, VehicleKind, Weather};
use safecross_videoclass::{train, SlowFastLite, TrainConfig};
use safecross_vision::{PreprocessConfig, Preprocessor, SegmentBuffer};

/// The full frame path produces a verdict after exactly one segment of
/// frames, and the verdict stream keeps flowing afterwards.
#[test]
fn frames_to_verdicts() {
    let mut rng = TensorRng::seed_from(0);
    let mut system = SafeCross::try_new(SafeCrossConfig::default()).expect("default configuration is valid");
    system.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng));

    let mut sim = Simulator::new(Scenario::new(Weather::Daytime, true, 0.2), 5);
    let mut renderer = Renderer::new(RenderConfig::default(), Weather::Daytime, 5);
    let mut first_verdict_at = None;
    for step in 0..40 {
        sim.step(DT);
        let outcome = system.process_frame(&renderer.render(&sim));
        if outcome.verdict.is_some() && first_verdict_at.is_none() {
            first_verdict_at = Some(step);
        }
    }
    assert_eq!(first_verdict_at, Some(31), "segment buffer holds 32 frames");
    assert_eq!(system.verdicts().len(), 40 - 31);
}

/// The VP pipeline erases the static occluder but keeps the moving
/// vehicle: exactly the property the paper's architecture relies on.
#[test]
fn vp_keeps_movers_drops_parked_occluder() {
    let mut sim = Simulator::new(Scenario::new(Weather::Daytime, true, 0.0), 8);
    let mut renderer = Renderer::new(RenderConfig::default(), Weather::Daytime, 8);
    let mut vp = Preprocessor::new(320, 240, PreprocessConfig::default());
    // Let the background learn the parked occluder.
    for _ in 0..20 {
        sim.step(DT);
        vp.process(&renderer.render(&sim));
    }
    // Scene with only the static occluder and a waiting turner: the grid
    // carries (almost) no energy.
    sim.step(DT);
    let quiet = vp.process(&renderer.render(&sim));
    // Inject a mover through the camera view and let it travel.
    sim.inject_oncoming(VehicleKind::Car, 40.0, 13.0);
    let mut moving_energy = 0.0f32;
    for _ in 0..10 {
        sim.step(DT);
        moving_energy = moving_energy.max(vp.process(&renderer.render(&sim)).sum());
    }
    assert!(
        moving_energy > quiet.sum() + 0.05,
        "moving {moving_energy} vs quiet {}",
        quiet.sum()
    );
}

/// A model trained on generated segments beats chance on fresh segments
/// from a different generator seed (cross-crate generalisation).
#[test]
fn trained_model_generalises_to_fresh_segments() {
    let spec = DatasetSpec {
        daytime_segments: 48,
        rain_segments: 0,
        snow_segments: 0,
        ..DatasetSpec::tiny()
    };
    let train_data = SegmentGenerator::new(100).generate_dataset(&spec);
    let mut rng = TensorRng::seed_from(1);
    let mut model = SlowFastLite::new(2, &mut rng);
    let all: Vec<usize> = (0..train_data.len()).collect();
    train(
        &mut model,
        &train_data,
        &all,
        &TrainConfig {
            epochs: 12,
            ..TrainConfig::default()
        },
    );

    let fresh = SegmentGenerator::new(999).generate_dataset(&DatasetSpec {
        daytime_segments: 16,
        rain_segments: 0,
        snow_segments: 0,
        ..DatasetSpec::tiny()
    });
    let mut system = SafeCross::try_new(SafeCrossConfig::default()).expect("default configuration is valid");
    system.register_model(Weather::Daytime, model);
    let correct = (0..fresh.len())
        .filter(|&i| {
            let seg = fresh.get(i);
            system
                .classify_clip(&seg.clip, seg.weather)
                .expect("daytime model is registered")
                .class
                == seg.label.class
        })
        .count();
    assert!(
        correct * 3 >= fresh.len() * 2,
        "only {correct}/{} fresh segments correct",
        fresh.len()
    );
}

/// The segment buffer and the dataset generator agree on clip geometry,
/// so a deployed system can consume dataset clips and vice versa.
#[test]
fn clip_shapes_are_interchangeable() {
    let spec = DatasetSpec::tiny();
    let mut gen = SegmentGenerator::new(3);
    let seg = gen.generate(Weather::Daytime, true, false, &spec);

    let mut vp = Preprocessor::new(
        spec.frame_width,
        spec.frame_height,
        PreprocessConfig::default(),
    );
    let mut buffer = SegmentBuffer::new(spec.frames_per_segment);
    let mut sim = Simulator::new(Scenario::new(Weather::Daytime, true, 0.0), 4);
    let mut renderer = Renderer::new(RenderConfig::default(), Weather::Daytime, 4);
    for _ in 0..spec.frames_per_segment {
        sim.step(DT);
        buffer.push(vp.process(&renderer.render(&sim)));
    }
    let live_clip = buffer.as_clip().expect("buffer full");
    assert_eq!(live_clip.dims(), seg.clip.dims());
}

/// Ground-truth blind-zone labels line up with the simulator geometry:
/// blind occupancy only occurs in blind-area segments, danger scripting
/// labels danger, and the threat is genuinely hidden in some segments.
#[test]
fn labels_respect_blind_zone_geometry() {
    let spec = DatasetSpec::tiny();
    let mut gen = SegmentGenerator::new(6);
    let mut hidden_danger_seen = false;
    for blind in [false, true] {
        for _ in 0..6 {
            let seg = gen.generate(Weather::Daytime, blind, true, &spec);
            assert_eq!(seg.label.blind_area, blind);
            if !blind {
                assert!(
                    !seg.label.blind_occupied,
                    "no occluder means nothing can be hidden"
                );
            }
            assert_eq!(seg.label.class, Class::Danger, "danger script drifted");
            hidden_danger_seen |= seg.label.blind_occupied;
        }
    }
    assert!(hidden_danger_seen, "scripting never hid the threat");
}
