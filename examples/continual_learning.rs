//! Continual learning: background per-intersection adaptation with
//! shadow canary promotion.
//!
//! A three-stream fleet serves daytime/rain/snow checkpoints, but the
//! rain checkpoint has been degraded (weights scaled toward zero) — an
//! injected distribution shift. The `ContinualLearner` harvests the
//! low-confidence rain clips from the verdict path, few-shot-adapts a
//! challenger in the background, grades it against the incumbent on
//! held-out canary clips, and promotes it through the switcher's
//! pipelined-swap path on the stream's owning shard. Streams the
//! learner never touches keep serving their base checkpoints
//! unchanged.
//!
//! Run with: `cargo run --release --example continual_learning`

use safecross::SafeCrossConfig;
use safecross_learn::{ContinualLearner, LearnConfig};
use safecross_serve::{FleetServer, ServeConfig, StreamSpec};
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{RenderConfig, Renderer, Scenario, Simulator, Weather};
use safecross_videoclass::{SlowFastLite, VideoClassifier};
use safecross_vision::GrayFrame;
use std::collections::HashMap;

const W: usize = 64;
const H: usize = 48;
const FRAMES: usize = 48;

fn rendered(weather: Weather, frames: usize, seed: u64) -> Vec<GrayFrame> {
    let mut sim = Simulator::new(Scenario::new(weather, true, 0.15), seed);
    let rc = RenderConfig {
        width: W,
        height: H,
        ..RenderConfig::default()
    };
    let mut renderer = Renderer::new(rc, weather, seed);
    (0..frames)
        .map(|_| {
            sim.step(DT);
            renderer.render(&sim)
        })
        .collect()
}

/// Stream 1 drifts into rain — the scene served by the degraded
/// checkpoint. Streams 0 and 2 stay on healthy checkpoints.
fn feeds() -> Vec<Vec<GrayFrame>> {
    let mut rain = rendered(Weather::Daytime, 16, 21);
    rain.extend(rendered(Weather::Rain, FRAMES - 16, 22));
    let mut snow = rendered(Weather::Daytime, 24, 31);
    snow.extend(rendered(Weather::Snow, FRAMES - 24, 32));
    vec![rendered(Weather::Daytime, FRAMES, 11), rain, snow]
}

/// Base checkpoints with the shift baked in: Rain degraded toward zero
/// weights (~0.5 confidence on everything), Daytime/Snow given a large
/// head bias so they serve well above the harvest margin.
fn models() -> Vec<(Weather, SlowFastLite)> {
    let mut rng = TensorRng::seed_from(3);
    Weather::ALL
        .iter()
        .map(|&w| {
            let mut model = SlowFastLite::new(2, &mut rng);
            let mut state = model.state_dict();
            if w == Weather::Rain {
                for (_, tensor) in state.iter_mut() {
                    for v in tensor.data_mut() {
                        *v *= 0.05;
                    }
                }
            } else {
                for (name, tensor) in state.iter_mut() {
                    if name.ends_with("bias") && tensor.len() == 2 {
                        tensor.data_mut().copy_from_slice(&[8.0, 0.0]);
                    }
                }
            }
            model.load_state_dict(&state);
            (w, model)
        })
        .collect()
}

fn main() {
    println!("=== SafeCross continual learning (harvest -> adapt -> canary -> promote) ===\n");

    let config = ServeConfig::builder()
        .shards(2)
        .shedding(false)
        .stream(SafeCrossConfig {
            frame_width: W,
            frame_height: H,
            segment_frames: 8,
            scene_window: 4,
            min_confidence: 0.0,
            ..SafeCrossConfig::default()
        })
        .build()
        .expect("config is valid");
    let mut fleet = FleetServer::new(config).expect("valid config");
    let mut templates: HashMap<Weather, SlowFastLite> = HashMap::new();
    for (w, m) in models() {
        templates.insert(w, m.clone());
        fleet.register_model(w, m).expect("no streams yet");
    }
    for _ in 0..3 {
        fleet.open_stream(StreamSpec::new()).expect("models registered");
    }
    println!("fleet: 3 streams on 2 shards; rain checkpoint degraded (injected shift)\n");

    let learner = ContinualLearner::new(
        LearnConfig {
            seed: 42,
            harvest_below: 0.9,
            min_support: 4,
            canary_k: 4,
            adapt_steps: 5,
            adapt_lr: 0.1,
            min_win: 0.0,
            max_generations: 8,
            ..LearnConfig::default()
        },
        fleet.model_store().clone(),
        templates,
        fleet.telemetry(),
    );
    fleet.set_learn_hook(learner.clone());

    // Round 1 harvests the shifted stream's rain clips and adapts at
    // run end; round 2 applies the promotion on the owning shard.
    for round in 1..=2 {
        let report = fleet.run(feeds()).expect("fleet runs");
        let stats = learner.stats();
        println!(
            "round {round}: {} frames served; harvested {} clips, {} adaptations, \
             {} canary rejects, {} promotions activated",
            report.completed,
            stats.harvested,
            stats.adaptations,
            stats.canary_rejects,
            stats.activated,
        );
    }

    println!("\npromotion journal:");
    for r in learner.records() {
        println!(
            "  stream {} [{}] gen {}: {} (parent {}) canary {:.4} vs {:.4} on {} clips -> {:?}",
            r.stream,
            r.weather.label(),
            r.generation,
            r.challenger,
            r.parent,
            r.challenger_margin,
            r.incumbent_margin,
            r.canary_clips,
            r.outcome,
        );
    }

    let binding = learner.binding(1, Weather::Rain);
    let store = fleet.model_store();
    println!(
        "\nstream 1 rain binding: {binding} (store: {} checkpoints, {:.1} KiB stored, \
         dedup ratio {:.2})",
        store.model_count(),
        store.stored_bytes() as f64 / 1024.0,
        store.logical_bytes() as f64 / store.stored_bytes().max(1) as f64,
    );
    let handles = fleet.handles();
    let promoted = handles[1]
        .session(&fleet)
        .switch_log()
        .iter()
        .any(|r| r.model.contains('#'));
    println!(
        "challenger activated through the switcher on stream 1: {}",
        if promoted { "yes" } else { "no (still queued)" }
    );
}
