//! Pipelined intersection monitor: the staged execution engine in
//! action.
//!
//! Renders a two-weather camera stream (daytime footage that turns to
//! snow), runs it twice — once through the sequential `process_frame`
//! loop and once through `run_pipelined` — and prints the per-stage
//! pipeline accounting plus a bit-level comparison of the two verdict
//! sequences. Finishes with the data-parallel batch classifier scaling
//! over worker counts.
//!
//! Run with: `cargo run --release --example pipelined_monitor`

use safecross::{PipelineConfig, SafeCross, SafeCrossConfig};
use safecross_tensor::{Tensor, TensorRng};
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{RenderConfig, Renderer, Scenario, Simulator, Weather};
use safecross_videoclass::SlowFastLite;
use safecross_vision::GrayFrame;
use std::time::Instant;

fn system() -> SafeCross {
    let mut rng = TensorRng::seed_from(0);
    let config = SafeCrossConfig::builder()
        .telemetry(true)
        .build()
        .expect("valid configuration");
    let mut sc = SafeCross::try_new(config).expect("validated configuration");
    for weather in Weather::ALL {
        sc.register_model(weather, SlowFastLite::new(2, &mut rng));
    }
    sc
}

fn rendered(weather: Weather, frames: usize, seed: u64) -> Vec<GrayFrame> {
    let mut sim = Simulator::new(Scenario::new(weather, true, 0.2), seed);
    let mut renderer = Renderer::new(RenderConfig::default(), weather, seed);
    (0..frames)
        .map(|_| {
            sim.step(DT);
            renderer.render(&sim)
        })
        .collect()
}

fn main() {
    println!("=== SafeCross pipelined monitor ===\n");

    // A stream with a mid-way weather transition, so the pipeline also
    // exercises the model-switching path.
    let mut frames = rendered(Weather::Daytime, 90, 1);
    frames.extend(rendered(Weather::Snow, 90, 2));
    println!("stream: {} frames (daytime -> snow)\n", frames.len());

    // Sequential reference.
    let mut sequential = system();
    let t = Instant::now();
    for frame in &frames {
        sequential.process_frame(frame);
    }
    let seq_wall = t.elapsed();
    println!("sequential loop : {seq_wall:?}  ({} verdicts)", sequential.verdicts().len());

    // Staged pipeline.
    let mut pipelined = system();
    let run = pipelined.run_pipelined(frames.iter().cloned(), &PipelineConfig::default());
    println!("staged pipeline : {:?}  ({} verdicts)\n", run.stats.wall, pipelined.verdicts().len());
    println!("{}", run.stats);

    let identical = pipelined.verdicts() == sequential.verdicts()
        && pipelined.with_switch_log(|a| sequential.with_switch_log(|b| a == b));
    println!(
        "verdicts and switch log bit-identical to sequential: {}",
        if identical { "yes" } else { "NO — bug!" }
    );
    pipelined.with_switch_log(|log| {
        for record in log {
            println!(
                "model switch -> {} at frame {} ({:.2} ms: {:.2} transmit / {:.2} compute)",
                record.model,
                record.frame,
                record.latency_ms,
                record.breakdown.transmit_ms,
                record.breakdown.compute_ms
            );
        }
    });

    // Everything the instrumented run recorded, in one snapshot.
    println!("\n--- telemetry snapshot (pipelined run) ---");
    println!("{}", pipelined.telemetry().snapshot());

    // Data-parallel batch classification.
    println!("\n--- batch classification scaling (24 clips) ---");
    let mut rng = TensorRng::seed_from(7);
    let jobs: Vec<(Tensor, Weather)> = (0..24)
        .map(|i| {
            (
                rng.uniform(&[1, 32, 20, 20], 0.0, 1.0),
                Weather::ALL[i % Weather::ALL.len()],
            )
        })
        .collect();
    let sc = system();
    let mut reference = None;
    for workers in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let verdicts = sc
            .classify_clips_parallel(&jobs, workers)
            .expect("all scenes have models");
        let wall = t.elapsed();
        let same = match &reference {
            None => {
                reference = Some(verdicts);
                true
            }
            Some(r) => r == &verdicts,
        };
        println!(
            "  {workers} worker(s): {wall:?}{}",
            if same { "" } else { "  MISMATCH!" }
        );
    }
}
