//! Quickstart: the SafeCross pipeline in one minute.
//!
//! Renders a blind-area intersection scene, walks one frame through the
//! paper's Fig. 3 pre-processing stages (raw frame -> background
//! subtraction -> morphological opening -> 2-D occupancy grid), then
//! trains a small SlowFast model on a handful of labelled segments and
//! asks it for a turn/no-turn verdict.
//!
//! Run with: `cargo run --release --example quickstart`

use safecross::{SafeCross, SafeCrossConfig};
use safecross_dataset::{Class, DatasetSpec, SegmentGenerator};
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{Renderer, RenderConfig, Scenario, Simulator, VehicleKind, Weather};
use safecross_videoclass::{train, SlowFastLite, TrainConfig};
use safecross_vision::{PreprocessConfig, Preprocessor};

fn main() {
    println!("=== SafeCross quickstart ===\n");

    // 1. A blind-area scene: occluder parked, hidden vehicle approaching.
    let mut sim = Simulator::new(Scenario::new(Weather::Daytime, true, 0.0), 42);
    let mut renderer = Renderer::new(RenderConfig::default(), Weather::Daytime, 42);
    let (lo, hi) = sim
        .intersection()
        .blind_interval(VehicleKind::Van)
        .expect("van occludes");
    println!(
        "blind interval on the oncoming lane: {:.1} m of hidden road",
        hi - lo
    );
    sim.inject_oncoming(VehicleKind::Car, (lo + hi) / 2.0, 13.0);
    let hidden = sim.oncoming_observations();
    println!(
        "hidden vehicle visible to the waiting driver? {}\n",
        if hidden[0].2 { "yes" } else { "NO — this is the danger" }
    );

    // 2. Fig. 3: the VP pipeline stages on one frame.
    let mut vp = Preprocessor::new(320, 240, PreprocessConfig::default());
    let mut last = None;
    for _ in 0..12 {
        sim.step(DT);
        let frame = renderer.render(&sim);
        last = Some(vp.stages(&frame));
    }
    let (raw_mask, opened, grid) = last.expect("frames were processed");
    println!("--- Fig. 3(b): raw foreground mask ({} px set) ---", raw_mask.count());
    println!("--- after opening: {} px set (noise removed) ---", opened.count());
    println!("--- Fig. 3(c): 20x20 occupancy grid (sum {:.2}) ---", grid.sum());
    let gray = opened.to_gray();
    println!("{}", gray.to_ascii(64));

    // 3. Train a small model and get a verdict.
    println!("generating a small labelled dataset (this takes a few seconds)...");
    let spec = DatasetSpec {
        daytime_segments: 40,
        rain_segments: 0,
        snow_segments: 0,
        ..DatasetSpec::tiny()
    };
    let data = SegmentGenerator::new(7).generate_dataset(&spec);
    println!("{}\n", data.stats());

    let mut rng = TensorRng::seed_from(0);
    let mut model = SlowFastLite::new(2, &mut rng);
    let all: Vec<usize> = (0..data.len()).collect();
    println!("training SlowFast-lite for 14 epochs...");
    let report = train(
        &mut model,
        &data,
        &all,
        &TrainConfig {
            epochs: 14,
            ..TrainConfig::default()
        },
    );
    println!(
        "loss: {:.3} -> {:.3}\n",
        report.epoch_losses[0],
        report.final_loss()
    );

    let mut system = SafeCross::try_new(SafeCrossConfig::default()).expect("default configuration is valid");
    system.register_model(Weather::Daytime, model);
    let mut shown = 0;
    for i in 0..data.len() {
        let seg = data.get(i);
        if !seg.label.blind_area || shown >= 4 {
            continue;
        }
        let verdict = system
            .classify_clip(&seg.clip, seg.weather)
            .expect("daytime model is registered");
        println!(
            "blind-zone segment {i}: truth={} verdict={} (confidence {:.2}) {}",
            seg.label.class,
            verdict.class,
            verdict.confidence,
            if verdict.class == seg.label.class { "[correct]" } else { "[wrong]" }
        );
        shown += 1;
    }
    let correct = (0..data.len())
        .filter(|&i| {
            let seg = data.get(i);
            system
                .classify_clip(&seg.clip, seg.weather)
                .expect("daytime model is registered")
                .class
                == seg.label.class
        })
        .count();
    println!(
        "\ntraining-set accuracy: {}/{} — when the verdict is {}, the driver may turn immediately",
        correct,
        data.len(),
        Class::Safe
    );
}
