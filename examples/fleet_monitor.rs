//! Fleet monitor: one serving process watching many intersections.
//!
//! Builds a nine-intersection fleet over shared scene models, with
//! mixed feed behavior — seven healthy camera streams, one camera that
//! stalls between frames, and one that floods its whole backlog at once
//! — and runs it through `safecross-serve` with admission control and
//! load shedding live. Prints the fleet report, the per-stream verdict
//! and shed accounting, a bit-identity check of one healthy stream
//! against a standalone `process_frame` loop, and the telemetry
//! snapshot.
//!
//! Run with: `cargo run --release --example fleet_monitor`

use safecross::{SafeCross, SafeCrossConfig};
use safecross_serve::{paced_feed, FleetServer, ServeConfig, StreamSpec};
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{RenderConfig, Renderer, Scenario, Simulator, Weather};
use safecross_videoclass::SlowFastLite;
use safecross_vision::GrayFrame;
use std::time::Duration;

fn rendered(weather: Weather, frames: usize, seed: u64) -> Vec<GrayFrame> {
    let mut sim = Simulator::new(Scenario::new(weather, true, 0.2), seed);
    let mut renderer = Renderer::new(RenderConfig::default(), weather, seed);
    (0..frames)
        .map(|_| {
            sim.step(DT);
            renderer.render(&sim)
        })
        .collect()
}

fn main() {
    println!("=== SafeCross fleet monitor ===\n");

    // One shared model per weather — every intersection classifies
    // against the same weights, which is what makes cross-stream
    // micro-batching possible.
    let mut rng = TensorRng::seed_from(0);
    let models: Vec<(Weather, SlowFastLite)> = Weather::ALL
        .iter()
        .map(|&w| (w, SlowFastLite::new(2, &mut rng)))
        .collect();

    let config = ServeConfig::builder()
        .shards(2)
        .batch_max(4)
        .queue_capacity(64)
        .telemetry(true)
        .build()
        .expect("valid serve configuration");
    let mut fleet = FleetServer::new(config).expect("valid serve configuration");
    for (w, m) in &models {
        fleet
            .register_model(*w, m.clone())
            .expect("models are registered before streams");
    }
    let cams: Vec<_> = (0..9)
        .map(|_| fleet.open_stream(StreamSpec::new()).expect("models are registered"))
        .collect();

    // Feeds: streams 0..7 are healthy daytime cameras (stream 3 sees
    // rain roll in, exercising a mid-run model switch under serving),
    // stream 7 stalls 20ms between frames, stream 8 floods 300 frames
    // at once into a 64-slot queue.
    let healthy: Vec<Vec<GrayFrame>> = (0..7)
        .map(|i| {
            if i == 3 {
                let mut f = rendered(Weather::Daytime, 32, i as u64 + 1);
                f.extend(rendered(Weather::Rain, 32, 100 + i as u64));
                f
            } else {
                rendered(Weather::Daytime, 64, i as u64 + 1)
            }
        })
        .collect();
    let standalone_input = healthy[0].clone();
    let stalled = rendered(Weather::Daytime, 12, 50);
    let flooded: Vec<GrayFrame> = (0..300)
        .map(|i| GrayFrame::filled(320, 240, (i % 251) as u8))
        .collect();

    println!(
        "fleet: 9 streams over {} shared models, {} shards, queue capacity {}\n",
        models.len(),
        fleet.config().shards,
        fleet.config().queue_capacity
    );

    let mut feeds: Vec<_> = healthy
        .into_iter()
        .map(|frames| paced_feed(frames, Duration::ZERO))
        .collect();
    feeds.push(paced_feed(stalled, Duration::from_millis(20)));
    feeds.push(paced_feed(flooded, Duration::ZERO));

    let report = fleet.run(feeds).expect("fleet run succeeds");
    println!("{report}");

    // The serving guarantee, demonstrated: stream 0's verdict sequence
    // is bit-identical to a standalone sequential run of its frames.
    let mut standalone =
        SafeCross::try_new(SafeCrossConfig::default()).expect("default configuration is valid");
    for (w, m) in &models {
        standalone.register_model(*w, m.clone());
    }
    for frame in &standalone_input {
        standalone.process_frame(frame);
    }
    let served = cams[0].session(&fleet);
    println!(
        "stream0 vs standalone run: verdicts {}, switch log {}",
        if served.verdicts() == standalone.verdicts() {
            "bit-identical"
        } else {
            "MISMATCH!"
        },
        if served.with_switch_log(|a| standalone.with_switch_log(|b| a == b)) {
            "bit-identical"
        } else {
            "MISMATCH!"
        },
    );

    // The rain switch stream 3 went through, as the fleet saw it.
    let switcher = cams[3].session(&fleet);
    switcher.with_switch_log(|log| {
        for record in log {
            println!(
                "stream3 model switch -> {} at frame {} ({:.2} ms)",
                record.model, record.frame, record.latency_ms
            );
        }
    });

    println!("\n--- telemetry snapshot (fleet run) ---");
    println!("{}", fleet.telemetry().snapshot());
}
