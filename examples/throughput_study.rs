//! Throughput study: what SafeCross buys the intersection (Sec. V-D).
//!
//! Two parts:
//!
//! 1. **Policy simulation** — the same occluded intersection run under
//!    three turner policies: the maximally cautious always-wait driver,
//!    the human who trusts only what they can see (risky!), and the
//!    SafeCross-assisted driver with full knowledge. Completed turns and
//!    near misses per simulated half hour are compared.
//! 2. **Classifier study** — the paper's 63-segment blind-zone test set
//!    classified by a trained model, reporting the throughput gain.
//!
//! Run with: `cargo run --release --example throughput_study`

use safecross::experiments::{table1_dataset, table3_scene_accuracy, table7_throughput, ExperimentConfig};
use safecross_trafficsim::{Scenario, SimEvent, Simulator, TurnPolicy, Weather};

fn main() {
    println!("=== SafeCross throughput study ===\n");

    // Part 1: policy simulation.
    println!("--- policy simulation: 30 simulated minutes, occluded intersection ---");
    println!(
        "{:<22} {:>8} {:>12} {:>12}",
        "Policy", "Turns", "Mean wait", "Near misses"
    );
    for (label, policy) in [
        ("always-wait", TurnPolicy::AlwaysWait),
        ("human (visible only)", TurnPolicy::HumanVisible),
        ("SafeCross-assisted", TurnPolicy::Omniscient),
    ] {
        let scenario = Scenario::new(Weather::Daytime, true, 0.12).with_policy(policy);
        let mut sim = Simulator::new(scenario, 77);
        sim.run(1800.0);
        let near_misses = sim
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::NearMiss { .. }))
            .count();
        println!(
            "{:<22} {:>8} {:>9.1} s {:>12}",
            label,
            sim.turns_completed(),
            sim.mean_wait(),
            near_misses
        );
    }
    println!(
        "\nthe human policy turns but risks near misses; always-wait is safe but\n\
         starves the lane; SafeCross keeps the safety of waiting with the\n\
         throughput of full knowledge.\n"
    );

    // Part 2: the paper's classifier-based study at smoke scale.
    println!("--- classifier study (Sec. V-D, smoke scale) ---");
    let cfg = ExperimentConfig {
        dataset_factor: 0.06,
        ..ExperimentConfig::default()
    };
    println!("training scene models (a minute or two)...");
    let data = table1_dataset(&cfg);
    let scene = table3_scene_accuracy(&data, &cfg);
    let report = table7_throughput(&scene.models, &cfg);
    println!("\n{report}");
    println!("\npaper: 63 blind-zone segments, accuracy 1.0, +50% throughput (32/63)");
}
