//! Intersection monitor: SafeCross deployed frame-by-frame.
//!
//! Simulates one minute of an occluded intersection and feeds every
//! camera frame through the deployed SafeCross system, printing warnings
//! as they are raised and comparing them against the simulator's ground
//! truth. This is the paper's Fig. 1 loop: camera -> VP -> VC -> warning
//! to the waiting left-turner.
//!
//! Run with: `cargo run --release --example intersection_monitor`

use safecross::{SafeCross, SafeCrossConfig};
use safecross_dataset::{Class, DatasetSpec, SegmentGenerator};
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{Renderer, RenderConfig, Scenario, Simulator, Weather};
use safecross_videoclass::{train, SlowFastLite, TrainConfig};

fn main() {
    println!("=== SafeCross intersection monitor ===\n");

    // Train the daytime model on a small scripted dataset.
    println!("training the daytime model (small demo dataset)...");
    let spec = DatasetSpec {
        daytime_segments: 40,
        rain_segments: 0,
        snow_segments: 0,
        ..DatasetSpec::tiny()
    };
    let data = SegmentGenerator::new(3).generate_dataset(&spec);
    let mut rng = TensorRng::seed_from(1);
    let mut model = SlowFastLite::new(2, &mut rng);
    let all: Vec<usize> = (0..data.len()).collect();
    train(
        &mut model,
        &data,
        &all,
        &TrainConfig {
            epochs: 14,
            ..TrainConfig::default()
        },
    );

    let mut system = SafeCross::try_new(SafeCrossConfig::default()).expect("default configuration is valid");
    system.register_model(Weather::Daytime, model);

    // Live loop: occluded intersection with random oncoming traffic.
    let mut sim = Simulator::new(Scenario::new(Weather::Daytime, true, 0.18), 11);
    let mut renderer = Renderer::new(RenderConfig::default(), Weather::Daytime, 11);
    let seconds = 60.0;
    let steps = (seconds / DT) as usize;
    let mut warnings = 0usize;
    let mut agreements = 0usize;
    let mut verdicts = 0usize;
    for step in 0..steps {
        sim.step(DT);
        let frame = renderer.render(&sim);
        let outcome = system.process_frame(&frame);
        if let Some(verdict) = outcome.verdict {
            verdicts += 1;
            let truth_danger = sim.assessment().dangerous();
            if verdict.is_warning() {
                warnings += 1;
            }
            if (verdict.class == Class::Danger) == truth_danger {
                agreements += 1;
            }
            // Print one status line per simulated second.
            if step % 30 == 0 {
                println!(
                    "t={:5.1}s  verdict={:<6} conf={:.2}  truth={:<6}  blind zone {}",
                    sim.time(),
                    verdict.class.to_string(),
                    verdict.confidence,
                    if truth_danger { "danger" } else { "safe" },
                    if sim.blind_area_occupied() { "OCCUPIED" } else { "clear" },
                );
            }
        }
    }
    println!("\n--- summary after {seconds:.0} simulated seconds ---");
    println!("frames processed : {}", system.frames_seen());
    println!("verdicts emitted : {verdicts}");
    println!("warnings raised  : {warnings}");
    println!(
        "agreement with ground truth: {:.1}%",
        100.0 * agreements as f64 / verdicts.max(1) as f64
    );
    println!("left turns completed by the sim driver: {}", sim.turns_completed());
}
