//! Detection shoot-out: a quick Table II / Fig. 8 run.
//!
//! Compares background subtraction, sparse and dense optical flow, and
//! the YOLO-lite grid detector on a scripted blind-area scene and prints
//! per-method timing, hit/miss, and false-positive rates. The full-size
//! run lives in `cargo bench --bench table2_detection`; this example uses
//! the small YOLO profile so it finishes quickly even in debug builds.
//!
//! Run with: `cargo run --release --example detection_shootout`

use safecross_detect::{shootout, ShootoutConfig, YoloProfile};

fn main() {
    println!("=== Detection method shoot-out (Table II, quick profile) ===\n");
    let config = ShootoutConfig {
        yolo_profile: YoloProfile::Small,
        yolo_epochs: 6,
        ..ShootoutConfig::default()
    };
    println!(
        "scene: occluded intersection, hidden vehicle crossing the danger zone\n\
         legacy camera degradation: 3x3 blur + sigma {} sensor noise\n",
        config.legacy_noise
    );
    let rows = shootout(&config);
    println!(
        "{:<24} {:>12} {:>10} {:>10} {:>8}",
        "Method", "Time/frame", "Detected", "DetRate", "FPRate"
    );
    for r in &rows {
        println!(
            "{:<24} {:>9.2} ms {:>10} {:>9.0}% {:>7.0}%",
            r.name,
            r.mean_ms_per_frame,
            if r.detected { "Yes" } else { "No" },
            100.0 * r.detection_rate,
            100.0 * r.false_positive_rate
        );
    }
    println!(
        "\npaper Table II: BGS 0.74 ms Yes | sparse OF 6.43 ms No | dense OF 224.20 ms Yes | YOLOv3 256.40 ms No"
    );
    println!("(the bench uses the paper-size YOLO profile for faithful timing ratios)");
}
