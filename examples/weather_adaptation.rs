//! Weather adaptation: the FL + MS modules working together.
//!
//! Trains a daytime model, few-shot adapts it to snow from a handful of
//! labelled segments (the paper's FL module), then replays a
//! daytime-to-snow scene transition through the deployed system and
//! shows the scene detector triggering a PipeSwitch-style model swap
//! with millisecond latency (the MS module).
//!
//! Run with: `cargo run --release --example weather_adaptation`

use safecross::{SafeCross, SafeCrossConfig};
use safecross_dataset::{DatasetSpec, SegmentGenerator};
use safecross_fewshot::adapt_checkpoint;
use safecross_modelswitch::{simulate_switch, GpuSpec, ModelDesc, ModelRegistry, SwitchStrategy};
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{Renderer, RenderConfig, Scenario, Simulator, Weather};
use safecross_videoclass::{evaluate, train, SlowFastLite, TrainConfig, VideoClassifier};

fn main() {
    println!("=== SafeCross weather adaptation (FL + MS) ===\n");

    // 1. FL: daytime base model, then few-shot snow adaptation.
    let spec = DatasetSpec {
        daytime_segments: 40,
        rain_segments: 0,
        snow_segments: 16,
        ..DatasetSpec::tiny()
    };
    println!("generating daytime + snow segments...");
    let data = SegmentGenerator::new(21).generate_dataset(&spec);

    let mut rng = TensorRng::seed_from(2);
    let mut daytime = SlowFastLite::new(2, &mut rng);
    let day_idx = data.indices_of_weather(Weather::Daytime);
    println!("training the daytime base model ({} segments)...", day_idx.len());
    train(
        &mut daytime,
        &data,
        &day_idx,
        &TrainConfig {
            epochs: 14,
            ..TrainConfig::default()
        },
    );

    let snow_idx = data.indices_of_weather(Weather::Snow);
    let (support, test): (Vec<usize>, Vec<usize>) =
        (snow_idx[..4].to_vec(), snow_idx[4..].to_vec());
    println!(
        "few-shot adapting to snow: {} support segments, {} test segments",
        support.len(),
        test.len()
    );
    let support_batch = data.batch(&support);

    // The adapted checkpoint is persisted into the content-addressed
    // model store next to its parent; layer groups the adaptation left
    // byte-identical are shared, the rest get their own blobs.
    let store = ModelRegistry::new();
    store.register_model("daytime", &daytime.state_groups());
    let (_, manifest) = adapt_checkpoint(&daytime, &support_batch, 10, 0.05, &store, "snow");
    println!(
        "stored checkpoints: {} models, {} unique layer groups, {} B deduped",
        store.model_count(),
        store.unique_groups(),
        store.dedup_bytes(),
    );
    println!(
        "snow checkpoint: {} groups, {} B total",
        manifest.groups.len(),
        manifest.total_bytes(),
    );

    // Reload the adapted model from the store — the deployment below
    // runs the *persisted* weights, bit-identical to the adapted ones.
    let mut snow_model = SlowFastLite::new(2, &mut rng);
    snow_model.load_state_dict(&store.state_dict("snow").expect("stored checkpoint"));

    let mut day_on_snow = daytime.clone();
    let before = evaluate(&mut day_on_snow, &data, &test);
    let after = evaluate(&mut snow_model, &data, &test);
    println!("daytime model on snow : {before}");
    println!("adapted model on snow : {after}\n");

    // 2. MS: the simulated GPU switch the scene change will trigger.
    let gpu = GpuSpec::rtx_2080_ti();
    let desc = ModelDesc::slowfast_r50();
    let cold = simulate_switch(&gpu, &desc, &SwitchStrategy::StopAndStart);
    let pipe = simulate_switch(&gpu, &desc, &SwitchStrategy::PipelinedOptimal);
    println!("model swap, stop-and-start : {:8.1} ms", cold.switch_overhead_ms);
    println!("model swap, PipeSwitch     : {:8.2} ms ({} groups)\n", pipe.switch_overhead_ms, pipe.groups);

    // 3. Deployment: daytime scene turns into snow mid-stream.
    let mut system = SafeCross::try_new(SafeCrossConfig::default()).expect("default configuration is valid");
    system.register_model(Weather::Daytime, daytime);
    system.register_model(Weather::Snow, snow_model);

    println!("replaying a daytime -> snow transition...");
    for (phase, weather) in [("daytime", Weather::Daytime), ("snow", Weather::Snow)] {
        let mut sim = Simulator::new(Scenario::new(weather, true, 0.15), 33);
        let mut renderer = Renderer::new(RenderConfig::default(), weather, 33);
        for _ in 0..30 {
            sim.step(DT);
            let frame = renderer.render(&sim);
            let outcome = system.process_frame(&frame);
            if let Some((scene, report)) = outcome.scene_switch {
                println!(
                    "  [{phase}] scene detector fired: switch to {scene} model in {:.2} ms overhead",
                    report.switch_overhead_ms
                );
            }
        }
    }
    println!("\nactive scene at the end: {}", system.current_scene());
    println!("switch log:");
    system.with_switch_log(|log| {
        for record in log {
            println!(
                "  frame {:>4}: -> {} ({:.2} ms, {:.2} ms transmit)",
                record.frame, record.model, record.latency_ms, record.breakdown.transmit_ms
            );
        }
    });
}
