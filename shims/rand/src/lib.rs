//! Offline drop-in subset of the `rand` crate.
//!
//! The reproduction container has no access to crates.io, so the
//! workspace vendors the tiny slice of `rand`'s API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over half-open and inclusive ranges, and [`Rng::gen`] for raw
//! integers. The generator is SplitMix64 — statistically solid for test
//! and initialisation workloads and bit-reproducible per seed, which is
//! all the workspace's determinism guarantees require. The streams are
//! **not** identical to the real `rand` crate's `StdRng` (ChaCha12);
//! every consumer in this repo only relies on self-consistency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Minimal core trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Types drawable from the "standard" distribution (subset of
/// `rand::distributions::Standard`).
pub trait Standard {
    /// Draws one sample.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A sample of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
        impl Standard for $t {
            fn sample_standard(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32, u16, u8);

macro_rules! impl_float_ranges {
    ($($t:ty, $mantissa:expr);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Top mantissa-many bits -> uniform in [0, 1).
                let unit =
                    (rng.next_u64() >> (64 - $mantissa)) as $t / (1u64 << $mantissa) as $t;
                let v = self.start + unit * (self.end - self.start);
                // Guard the rare rounding-up onto the excluded endpoint.
                if v >= self.end {
                    self.start.max(self.end - (self.end - self.start) * 1e-7)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_ranges!(f32, 24; f64, 53);

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // Sebastiano Vigna's SplitMix64.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(4);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0..7usize);
            assert!(n < 7);
            let m: usize = rng.gen_range(0..=4usize);
            assert!(m <= 4);
        }
    }

    #[test]
    fn float_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..4000).map(|_| rng.gen_range(0.0f64..1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
        assert!(samples.iter().any(|&v| v < 0.05));
        assert!(samples.iter().any(|&v| v > 0.95));
    }
}
