//! Offline drop-in subset of the `criterion` crate.
//!
//! The container cannot reach crates.io, so the workspace's benches run
//! against this minimal harness instead: same surface
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`]), but a
//! deliberately simple measurement loop — a short warm-up, then
//! `sample_size` timed samples whose min/mean/max are printed to stdout.
//! No statistical analysis, no HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n-- bench group: {name} --");
        BenchmarkGroup {
            sample_size: self.default_sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), self.default_sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name}: no samples recorded");
        return;
    }
    let n = bencher.samples.len() as u32;
    let mean = bencher.samples.iter().sum::<Duration>() / n;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!("  {name}: mean {mean:?}  min {min:?}  max {max:?}  ({n} samples)");
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
