//! Offline drop-in subset of the `proptest` crate.
//!
//! The container cannot reach crates.io, so this crate re-implements the
//! slice of proptest the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert*` / [`prop_assume!`], the
//! [`Strategy`] combinators `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], and [`prelude::any`].
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its case number and the
//!   assertion message; inputs are deterministic per (test name, case),
//!   so a failure reproduces by rerunning the test.
//! - **Deterministic generation.** Case `i` of test `t` always sees the
//!   same inputs — CI runs are reproducible by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one test case: the stream is a pure
    /// function of the test's name and the case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// Error carried by failed `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the pure-Rust tensor
        // workloads inside a fast test budget while still exercising the
        // input space.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy producing one fixed value (subset of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                if v >= self.end {
                    self.start.max(self.end - (self.end - self.start) * 1e-7)
                } else {
                    v
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Types with a canonical whole-domain strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's full domain; see [`prelude::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element count for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The usual imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        collection, Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    use std::marker::PhantomData;

    /// Strategy over the full domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any(PhantomData)
        }
    }
}

/// Defines property tests (subset of the real `proptest!` macro: named
/// `arg in strategy` bindings, an optional leading
/// `#![proptest_config(..)]`, no inline type patterns).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), case, e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = (0usize..100, 0.0f64..1.0);
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(strat.generate(&mut a).0, strat.generate(&mut b).0);
        let mut c = TestRng::for_case("t", 4);
        let many_a: Vec<usize> = (0..16).map(|_| (0usize..1000).generate(&mut a)).collect();
        let many_c: Vec<usize> = (0..16).map(|_| (0usize..1000).generate(&mut c)).collect();
        assert_ne!(many_a, many_c);
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 3usize..12, x in -2.0f32..2.0) {
            prop_assert!((3..12).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_strategy_sizes(v in collection::vec(any::<u8>(), 2usize..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn flat_map_threads_values(
            pair in (1usize..5).prop_flat_map(|n| {
                collection::vec(0usize..10, n).prop_map(move |v| (n, v))
            })
        ) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
