//! # safecross-suite
//!
//! Umbrella package hosting the workspace's runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`). It
//! re-exports the member crates under short names so example code can
//! depend on one package.
//!
//! See the repository `README.md` for the full tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

#![forbid(unsafe_code)]

pub use safecross as framework;
pub use safecross_dataset as dataset;
pub use safecross_detect as detect;
pub use safecross_fewshot as fewshot;
pub use safecross_modelswitch as modelswitch;
pub use safecross_nn as nn;
pub use safecross_tensor as tensor;
pub use safecross_trafficsim as trafficsim;
pub use safecross_videoclass as videoclass;
pub use safecross_vision as vision;
