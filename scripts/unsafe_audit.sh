#!/usr/bin/env bash
# Unsafe-audit gate (run by CI, see .github/workflows/ci.yml).
#
# The workspace's memory-safety posture is: `unsafe` exists ONLY inside
# the runtime-dispatched SIMD kernel module, every block carries a
# `// SAFETY:` contract on the immediately preceding comment block, and
# every crate root pins the lint (`forbid` everywhere except the tensor
# crate, which `deny`s so the kernel module can locally `allow`).
# This script fails the build when any of the three invariants breaks.
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWED="crates/tensor/src/kernel/simd.rs"
fail=0

# 1. Confinement: the `unsafe` keyword may not appear in any *product*
#    Rust source outside the kernel dispatch module. Comment/doc lines
#    are exempt (prose may discuss unsafety), and the keyword-context
#    regex keeps the verdict label "unsafe turns" and lint names like
#    `unsafe_code` from matching. Root integration tests are audited by
#    the contract rule below instead: their counting `GlobalAlloc`
#    harness is unsafe by trait signature, not by kernel code.
KEYWORD='(^|[^_[:alnum:]])unsafe[[:space:]]*(\{|fn|impl|trait|extern)'
while IFS=: read -r file line content; do
  [ "$file" = "$ALLOWED" ] && continue
  trimmed="${content#"${content%%[![:space:]]*}"}"
  case "$trimmed" in
    //*) continue ;;
  esac
  echo "unsafe outside $ALLOWED at $file:$line: $trimmed"
  fail=1
done < <(grep -rn --include='*.rs' -E "$KEYWORD" crates src examples shims 2>/dev/null || true)

# 2. Contract: in the kernel module and the root integration tests,
#    every non-comment line using the `unsafe` keyword must sit directly
#    under a comment block containing `SAFETY:` (multi-line contracts
#    walk upward through contiguous `//` lines).
for src in "$ALLOWED" tests/*.rs; do
  awk -v kw="$KEYWORD" '
    { lines[NR] = $0 }
    END {
      bad = 0
      for (i = 1; i <= NR; i++) {
        line = lines[i]
        sub(/^[ \t]+/, "", line)
        if (line ~ /^\/\//) continue
        if (line !~ kw) continue
        ok = 0
        for (j = i - 1; j >= 1; j--) {
          prev = lines[j]
          sub(/^[ \t]+/, "", prev)
          if (prev !~ /^\/\//) break
          if (prev ~ /SAFETY:/) { ok = 1; break }
        }
        if (!ok) {
          printf "missing // SAFETY: contract before unsafe at %s:%d\n", FILENAME, i
          bad = 1
        }
      }
      exit bad
    }
  ' "$src" || fail=1
done

# 3. Lint posture: every crate root must forbid or deny unsafe_code.
for lib in crates/*/src/lib.rs src/lib.rs; do
  [ -f "$lib" ] || continue
  if ! grep -qE '#!\[(forbid|deny)\(unsafe_code\)\]' "$lib"; then
    echo "missing #![forbid/deny(unsafe_code)] in $lib"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "unsafe audit FAILED"
  exit 1
fi
echo "unsafe audit OK: unsafe confined to $ALLOWED with // SAFETY: contracts"
