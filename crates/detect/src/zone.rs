//! The danger zone in pixel coordinates.

use safecross_trafficsim::intersection::LANE_WIDTH;
use safecross_trafficsim::{Camera, Intersection, VehicleKind};

/// The pixel-space rectangle covering the blind stretch of the oncoming
/// lane — the region every detection method is judged on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DangerZone {
    /// Left edge, pixels.
    pub x0: usize,
    /// Top edge, pixels.
    pub y0: usize,
    /// Width, pixels.
    pub width: usize,
    /// Height, pixels.
    pub height: usize,
}

impl DangerZone {
    /// Projects the blind interval cast by an occluder of `kind` onto
    /// the camera, clamped to the frame.
    ///
    /// # Panics
    ///
    /// Panics if the occluder kind casts no blind area (a `Car`).
    pub fn from_scene(camera: &Camera, intersection: &Intersection, kind: VehicleKind) -> Self {
        assert!(
            kind.is_occluder(),
            "occluder kind must cast a blind area (got {kind:?})"
        );
        let (lo, hi) = intersection
            .blind_interval(kind)
            .expect("occluding kinds always shadow part of the lane");
        let route = intersection.oncoming_route();
        // The oncoming route runs east -> west, so larger arc length is
        // smaller x.
        let p_east = route.point_at(lo);
        let p_west = route.point_at(hi);
        let lane_y = p_east.y;
        let half = LANE_WIDTH / 2.0;
        let cfg = camera.config();
        let scale = camera.scale();
        let to_px = |wx: f64| cfg.width as f64 / 2.0 + wx * scale;
        let to_py = |wy: f64| cfg.height as f64 / 2.0 - wy * scale;
        let x0 = to_px(p_west.x).max(0.0);
        let x1 = to_px(p_east.x).min(cfg.width as f64 - 1.0);
        let y0 = to_py(lane_y + half).max(0.0);
        let y1 = to_py(lane_y - half).min(cfg.height as f64 - 1.0);
        assert!(x1 > x0 && y1 > y0, "danger zone off screen");
        DangerZone {
            x0: x0 as usize,
            y0: y0 as usize,
            width: (x1 - x0) as usize,
            height: (y1 - y0).ceil() as usize,
        }
    }

    /// Whether a pixel lies inside the zone.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x0 && x < self.x0 + self.width && y >= self.y0 && y < self.y0 + self.height
    }

    /// Zone area in pixels.
    pub fn area(&self) -> usize {
        self.width * self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safecross_trafficsim::RenderConfig;

    fn setup() -> (Camera, Intersection) {
        (Camera::new(RenderConfig::default()), Intersection::new())
    }

    #[test]
    fn zone_is_on_screen_and_in_the_upper_half() {
        let (cam, ix) = setup();
        let zone = DangerZone::from_scene(&cam, &ix, VehicleKind::Van);
        assert!(zone.area() > 0);
        // The oncoming lane is north of centre: upper half of the frame.
        assert!(zone.y0 < cam.config().height / 2);
        assert!(zone.x0 + zone.width <= cam.config().width);
    }

    use safecross_trafficsim::Vec2;

    #[test]
    fn zone_sits_east_of_the_conflict_point() {
        let (cam, ix) = setup();
        let zone = DangerZone::from_scene(&cam, &ix, VehicleKind::Van);
        // Conflict point is near x = +1.75 world; zone is east (right).
        let conflict_px = cam
            .world_to_pixel(Vec2::new(LANE_WIDTH / 2.0, LANE_WIDTH * 1.5))
            .unwrap()
            .0;
        assert!(zone.x0 >= conflict_px, "zone {zone:?} conflict x {conflict_px}");
    }

    #[test]
    fn truck_zone_wider_than_van_zone() {
        let (cam, ix) = setup();
        let van = DangerZone::from_scene(&cam, &ix, VehicleKind::Van);
        let truck = DangerZone::from_scene(&cam, &ix, VehicleKind::Truck);
        assert!(truck.area() >= van.area());
    }

    #[test]
    fn contains_checks_bounds() {
        let z = DangerZone { x0: 10, y0: 20, width: 5, height: 4 };
        assert!(z.contains(10, 20));
        assert!(z.contains(14, 23));
        assert!(!z.contains(15, 20));
        assert!(!z.contains(10, 24));
        assert!(!z.contains(9, 20));
    }

    #[test]
    #[should_panic(expected = "must cast a blind area")]
    fn car_casts_no_zone() {
        let (cam, ix) = setup();
        DangerZone::from_scene(&cam, &ix, VehicleKind::Car);
    }
}
