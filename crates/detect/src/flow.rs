//! Optical-flow detectors.

use crate::detector::Detector;
use crate::zone::DangerZone;
use safecross_vision::{dense_flow, sparse_flow, DenseFlowParams, GrayFrame, SparseFlowParams};

/// Sparse Lucas–Kanade flow at Shi–Tomasi corners.
///
/// Fast, but corners latch onto static scene texture (lane markings,
/// kerbs) rather than the small, low-contrast vehicles; on noisy footage
/// it misses the danger-zone mover — the Table II "failure at 6.4 ms"
/// row.
#[derive(Debug, Clone)]
pub struct SparseFlowDetector {
    params: SparseFlowParams,
    magnitude_threshold: f32,
    min_hits: usize,
    prev: Option<GrayFrame>,
}

impl SparseFlowDetector {
    /// Creates a detector with a classic good-features-to-track setup: a
    /// 16-corner budget (strong environment edges compete with the small
    /// vehicle for it) and a 3-corner cluster requirement — a single
    /// noisy corner is not evidence of a vehicle, a tracker needs a
    /// consistent feature cluster to latch onto.
    pub fn new() -> Self {
        SparseFlowDetector {
            params: SparseFlowParams {
                max_corners: 16,
                ..SparseFlowParams::default()
            },
            magnitude_threshold: 0.5,
            min_hits: 3,
            prev: None,
        }
    }

    /// Overrides the corner budget and cluster requirement (used by the
    /// favourable-case tests).
    pub fn with_tracking(mut self, max_corners: usize, min_hits: usize) -> Self {
        self.params.max_corners = max_corners;
        self.min_hits = min_hits;
        self
    }
}

impl Default for SparseFlowDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for SparseFlowDetector {
    fn name(&self) -> &'static str {
        "sparse_optical_flow"
    }

    fn detect(&mut self, frame: &GrayFrame, zone: &DangerZone) -> bool {
        let result = match &self.prev {
            Some(prev) => {
                let flows = sparse_flow(prev, frame, &self.params);
                flows
                    .iter()
                    .filter(|f| zone.contains(f.x, f.y))
                    .filter(|f| f.magnitude() > self.magnitude_threshold)
                    .count()
                    >= self.min_hits
            }
            None => false,
        };
        self.prev = Some(frame.clone());
        result
    }

    fn reset(&mut self) {
        self.prev = None;
    }
}

/// Dense Horn–Schunck flow over the whole frame.
///
/// Finds the mover (flow energy concentrates on it) but pays the
/// iterative-solver bill: two orders of magnitude slower than background
/// subtraction — the Table II "success at 224 ms" row.
#[derive(Debug, Clone)]
pub struct DenseFlowDetector {
    params: DenseFlowParams,
    magnitude_threshold: f32,
    prev: Option<GrayFrame>,
}

impl DenseFlowDetector {
    /// Creates a detector with the default solver parameters.
    pub fn new() -> Self {
        DenseFlowDetector {
            params: DenseFlowParams::default(),
            magnitude_threshold: 0.35,
            prev: None,
        }
    }
}

impl Default for DenseFlowDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for DenseFlowDetector {
    fn name(&self) -> &'static str {
        "dense_optical_flow"
    }

    fn detect(&mut self, frame: &GrayFrame, zone: &DangerZone) -> bool {
        let result = match &self.prev {
            Some(prev) => {
                let field = dense_flow(prev, frame, &self.params);
                field.mean_magnitude_in(zone.x0, zone.y0, zone.width, zone.height)
                    > self.magnitude_threshold
            }
            None => false,
        };
        self.prev = Some(frame.clone());
        result
    }

    fn reset(&mut self) {
        self.prev = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone() -> DangerZone {
        DangerZone { x0: 10, y0: 10, width: 30, height: 16 }
    }

    fn frame_with_square(x: usize) -> GrayFrame {
        let mut f = GrayFrame::filled(64, 48, 60);
        for dy in 0..8 {
            for dx in 0..8 {
                f.set(x + dx, 14 + dy, 220);
            }
        }
        f
    }

    #[test]
    fn dense_detects_clean_motion_in_zone() {
        let mut det = DenseFlowDetector::new();
        assert!(!det.detect(&frame_with_square(16), &zone())); // first frame
        assert!(det.detect(&frame_with_square(19), &zone()));
    }

    #[test]
    fn dense_quiet_zone_stays_silent() {
        let mut det = DenseFlowDetector::new();
        let still = GrayFrame::filled(64, 48, 60);
        det.detect(&still, &zone());
        assert!(!det.detect(&still, &zone()));
    }

    #[test]
    fn sparse_detects_large_clean_motion() {
        // Clean, high-contrast, large displacement: the favourable case
        // (generous budget, single-corner evidence accepted).
        let mut det = SparseFlowDetector::new().with_tracking(64, 1);
        det.detect(&frame_with_square(16), &zone());
        assert!(det.detect(&frame_with_square(18), &zone()));
    }

    #[test]
    fn both_reset_their_streams() {
        let mut det = SparseFlowDetector::new().with_tracking(64, 1);
        det.detect(&frame_with_square(16), &zone());
        det.reset();
        // After reset the next frame is "first": no detection possible.
        assert!(!det.detect(&frame_with_square(20), &zone()));

        let mut det = DenseFlowDetector::new();
        det.detect(&frame_with_square(16), &zone());
        det.reset();
        assert!(!det.detect(&frame_with_square(20), &zone()));
    }
}
