//! # safecross-detect
//!
//! The paper's detection-method comparison (Sec. V-A, Table II, Fig. 8):
//! which technique can spot the vehicle moving through the danger zone of
//! a low-quality surveillance frame, and at what per-frame cost?
//!
//! Four contenders, all implementing [`Detector`]:
//!
//! - [`BgsDetector`] — dynamic background subtraction + opening +
//!   connected components (the paper's winner);
//! - [`SparseFlowDetector`] — Shi–Tomasi corners + Lucas–Kanade flow;
//! - [`DenseFlowDetector`] — Horn–Schunck dense flow;
//! - [`YoloLiteDetector`] — a trainable single-shot grid detector
//!   standing in for YOLOv3 (see `DESIGN.md` for the substitution).
//!
//! [`shootout`] reproduces the whole experiment end-to-end: script a
//! blind-area scene, render it, time every method per frame, and record
//! whether each method finds the vehicle in the danger zone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bgs;
mod detector;
mod flow;
mod harness;
mod yolo;
mod zone;

pub use bgs::BgsDetector;
pub use detector::Detector;
pub use flow::{DenseFlowDetector, SparseFlowDetector};
pub use harness::{shootout, MethodResult, ShootoutConfig};
pub use yolo::{YoloLiteDetector, YoloProfile};
pub use zone::DangerZone;
