//! The end-to-end detection shoot-out (Table II / Fig. 8).

use crate::bgs::BgsDetector;
use crate::detector::Detector;
use crate::flow::{DenseFlowDetector, SparseFlowDetector};
use crate::yolo::{YoloLiteDetector, YoloProfile};
use crate::zone::DangerZone;
use safecross_tensor::TensorRng;
use safecross_trafficsim::sim::DT;
use safecross_trafficsim::{
    Renderer, RenderConfig, Scenario, Simulator, VehicleKind, Weather,
};
use safecross_vision::GrayFrame;
use std::time::Instant;

/// Shoot-out configuration.
#[derive(Debug, Clone, Copy)]
pub struct ShootoutConfig {
    /// Frames fed before measurement (background settling).
    pub warmup_frames: usize,
    /// Measured frames (the hidden vehicle crosses the zone in these).
    pub eval_frames: usize,
    /// YOLO-lite training epochs (not counted in per-frame time).
    pub yolo_epochs: usize,
    /// Weather scene.
    pub weather: Weather,
    /// YOLO-lite network size (Paper for Table II timings, Small for
    /// quick tests).
    pub yolo_profile: YoloProfile,
    /// Extra Gaussian sensor noise (sigma, intensity units) layered on
    /// every frame — the paper's "decades-old camera" degradation. The
    /// weather model's own noise comes on top of this.
    pub legacy_noise: f64,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for ShootoutConfig {
    fn default() -> Self {
        ShootoutConfig {
            warmup_frames: 12,
            eval_frames: 36,
            yolo_epochs: 10,
            weather: Weather::Daytime,
            yolo_profile: YoloProfile::Paper,
            legacy_noise: 20.0,
            seed: 7,
        }
    }
}

/// One Table II row.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// Method name.
    pub name: &'static str,
    /// Mean wall-clock per measured frame, milliseconds.
    pub mean_ms_per_frame: f64,
    /// Whether the method flagged the vehicle on at least half of the
    /// frames where ground truth places it inside the danger zone.
    pub detected: bool,
    /// Fraction of ground-truth-occupied frames that were flagged.
    pub detection_rate: f64,
    /// False-positive rate on frames with an empty zone.
    pub false_positive_rate: f64,
}

/// Runs the four-method comparison on a scripted blind-area scene and
/// returns one row per method, in the paper's column order.
pub fn shootout(config: &ShootoutConfig) -> Vec<MethodResult> {
    let (frames, truth, zone, width, height) = build_scene(config);
    let yolo = build_trained_yolo(config, width, height);

    let mut detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(BgsDetector::new(width, height)),
        Box::new(SparseFlowDetector::new()),
        Box::new(DenseFlowDetector::new()),
        Box::new(yolo),
    ];

    let mut results = Vec::with_capacity(detectors.len());
    for det in detectors.iter_mut() {
        det.reset();
        // Warm-up (uncounted: background model settling).
        for frame in &frames[..config.warmup_frames] {
            det.detect(frame, &zone);
        }
        let mut hits = 0usize;
        let mut occupied = 0usize;
        let mut false_pos = 0usize;
        let mut empty = 0usize;
        let start = Instant::now();
        for (frame, &in_zone) in frames[config.warmup_frames..]
            .iter()
            .zip(&truth[config.warmup_frames..])
        {
            let flagged = det.detect(frame, &zone);
            if in_zone {
                occupied += 1;
                if flagged {
                    hits += 1;
                }
            } else {
                empty += 1;
                if flagged {
                    false_pos += 1;
                }
            }
        }
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        let eval_frames = (frames.len() - config.warmup_frames) as f64;
        let detection_rate = if occupied > 0 {
            hits as f64 / occupied as f64
        } else {
            0.0
        };
        results.push(MethodResult {
            name: det.name(),
            mean_ms_per_frame: elapsed_ms / eval_frames,
            detected: detection_rate >= 0.5,
            detection_rate,
            false_positive_rate: if empty > 0 {
                false_pos as f64 / empty as f64
            } else {
                0.0
            },
        });
    }
    results
}

/// Renders the scripted scene: an occluded intersection where a hidden
/// vehicle crosses the danger zone mid-sequence. Returns frames, the
/// per-frame zone-occupancy ground truth, and the pixel danger zone.
fn build_scene(
    config: &ShootoutConfig,
) -> (Vec<GrayFrame>, Vec<bool>, DangerZone, usize, usize) {
    let render_cfg = RenderConfig::default();
    let mut sim = Simulator::new(Scenario::new(config.weather, true, 0.0), config.seed);
    let mut renderer = Renderer::new(render_cfg, config.weather, config.seed);
    let mut noise_rng = TensorRng::seed_from(config.seed ^ 0xdead);
    let zone = DangerZone::from_scene(renderer.camera(), sim.intersection(), VehicleKind::Van);
    let (lo, hi) = sim
        .intersection()
        .blind_interval(VehicleKind::Van)
        .expect("van occludes");

    // Time the injected vehicle to enter the blind interval right after
    // warm-up: it starts one warm-up-duration upstream of the interval.
    let params = config.weather.params();
    let speed = params.desired_speed;
    let start_s = (lo - speed * config.warmup_frames as f64 * DT).max(0.0);
    sim.inject_oncoming(VehicleKind::Car, start_s, speed);

    let total = config.warmup_frames + config.eval_frames;
    let mut frames = Vec::with_capacity(total);
    let mut truth = Vec::with_capacity(total);
    for _ in 0..total {
        sim.step(DT);
        let mut frame = renderer.render(&sim);
        degrade(&mut frame, config.legacy_noise, &mut noise_rng);
        frames.push(frame);
        let in_zone = sim
            .oncoming_vehicles()
            .iter()
            .any(|v| v.s >= lo && v.s <= hi);
        truth.push(in_zone);
    }
    (frames, truth, zone, render_cfg.width, render_cfg.height)
}

/// Applies the legacy-camera degradation: optical blur (3x3 box) plus
/// Gaussian sensor noise, on top of the weather artefacts.
fn degrade(frame: &mut GrayFrame, sigma: f64, rng: &mut TensorRng) {
    if sigma <= 0.0 {
        return;
    }
    let (w, h) = (frame.width(), frame.height());
    let mut blurred = GrayFrame::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut sum = 0u32;
            let mut n = 0u32;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let nx = x as i32 + dx;
                    let ny = y as i32 + dy;
                    if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                        sum += frame.at(nx as usize, ny as usize) as u32;
                        n += 1;
                    }
                }
            }
            blurred.set(x, y, (sum / n) as u8);
        }
    }
    *frame = blurred;
    let noise = rng.normal(&[w * h], sigma as f32);
    for (px, &n) in frame.pixels_mut().iter_mut().zip(noise.data()) {
        *px = (*px as f32 + n).clamp(0.0, 255.0) as u8;
    }
}

/// Trains YOLO-lite on a separate clear daytime scene with simulator
/// ground truth (mirroring "we re-trained the weights" in the paper).
fn build_trained_yolo(config: &ShootoutConfig, width: usize, height: usize) -> YoloLiteDetector {
    let render_cfg = RenderConfig::default();
    let mut sim = Simulator::new(Scenario::new(Weather::Daytime, false, 0.4), config.seed + 1);
    let mut renderer = Renderer::new(render_cfg, Weather::Daytime, config.seed + 1);
    let mut samples = Vec::new();
    let mut noise_rng = TensorRng::seed_from(config.seed ^ 0xbeef);
    for i in 0..120 {
        sim.step(DT);
        if i % 6 != 0 {
            continue;
        }
        let mut frame = renderer.render(&sim);
        degrade(&mut frame, config.legacy_noise, &mut noise_rng);
        let frame = frame;
        let centres: Vec<(usize, usize)> = sim
            .render_footprints()
            .iter()
            .filter_map(|(rect, _)| renderer.camera().world_to_pixel(rect.center))
            .collect();
        samples.push((frame, centres));
    }
    let mut rng = TensorRng::seed_from(config.seed + 2);
    let mut yolo =
        YoloLiteDetector::with_profile(width, height, config.yolo_profile, &mut rng);
    yolo.train(&samples, config.yolo_epochs, 0.08);
    yolo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ShootoutConfig {
        ShootoutConfig {
            warmup_frames: 10,
            eval_frames: 20,
            yolo_epochs: 2,
            yolo_profile: YoloProfile::Small,
            legacy_noise: 10.0,
            ..ShootoutConfig::default()
        }
    }

    #[test]
    fn shootout_produces_four_rows() {
        let rows = shootout(&quick_config());
        assert_eq!(rows.len(), 4);
        let names: Vec<_> = rows.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec![
                "background_subtraction",
                "sparse_optical_flow",
                "dense_optical_flow",
                "yolo_lite"
            ]
        );
        assert!(rows.iter().all(|r| r.mean_ms_per_frame > 0.0));
    }

    #[test]
    fn bgs_detects_and_beats_the_flow_methods() {
        // The full Table II ordering (including the paper-size YOLO) is
        // asserted by the release-mode bench; here the Small YOLO keeps
        // the test fast, so only the flow comparisons are meaningful.
        let rows = shootout(&quick_config());
        let bgs = &rows[0];
        assert!(bgs.detected, "BGS must find the hidden vehicle: {bgs:?}");
        for other in &rows[1..3] {
            assert!(
                bgs.mean_ms_per_frame < other.mean_ms_per_frame,
                "BGS ({:.3} ms) should beat {} ({:.3} ms)",
                bgs.mean_ms_per_frame,
                other.name,
                other.mean_ms_per_frame
            );
        }
    }

    #[test]
    fn dense_flow_detects_but_costs_more_than_sparse() {
        let rows = shootout(&quick_config());
        let sparse = &rows[1];
        let dense = &rows[2];
        assert!(dense.detected, "{dense:?}");
        assert!(dense.mean_ms_per_frame > sparse.mean_ms_per_frame);
    }

    #[test]
    fn ground_truth_has_occupied_frames() {
        let cfg = quick_config();
        let (frames, truth, zone, _, _) = build_scene(&cfg);
        assert_eq!(frames.len(), truth.len());
        let occupied = truth.iter().filter(|&&b| b).count();
        assert!(occupied >= 5, "vehicle spends {occupied} frames in zone");
        assert!(zone.area() > 0);
    }
}
