//! YOLO-lite: a trainable single-shot grid detector.
//!
//! Stands in for the paper's YOLOv3 (see `DESIGN.md`): a convolutional
//! backbone predicts per-cell objectness over a coarse grid, trained
//! with class-weighted per-cell cross-entropy against simulator ground
//! truth. It inherits YOLO's documented failure mode on this footage —
//! far, small, low-contrast vehicles under sensor noise fall below the
//! confidence threshold a low-false-positive operating point requires —
//! and, in its [`YoloProfile::Paper`] configuration, YOLO's cost
//! profile: the most expensive method per frame.

use crate::detector::Detector;
use crate::zone::DangerZone;
use safecross_nn::{softmax_cross_entropy, Conv2d, Layer, Mode, Optimizer, Relu, Sequential, Sgd};
use safecross_tensor::{Tensor, TensorRng};
use safecross_vision::GrayFrame;

/// Network size profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YoloProfile {
    /// A tiny backbone for unit tests (fast, same code path).
    Small,
    /// A backbone whose per-frame FLOP count mirrors the relative cost
    /// of real YOLOv3 against the other methods — the Table II setting.
    Paper,
}

impl YoloProfile {
    /// Network input width.
    fn net_w(&self) -> usize {
        match self {
            YoloProfile::Small => 80,
            YoloProfile::Paper => 160,
        }
    }

    /// Network input height.
    fn net_h(&self) -> usize {
        match self {
            YoloProfile::Small => 60,
            YoloProfile::Paper => 120,
        }
    }

    /// Grid stride in network pixels.
    fn stride(&self) -> usize {
        4
    }
}

/// The grid detector.
#[derive(Clone)]
pub struct YoloLiteDetector {
    net: Sequential,
    profile: YoloProfile,
    confidence: f32,
    frame_width: usize,
    frame_height: usize,
}

impl YoloLiteDetector {
    /// Creates an untrained detector for `frame_width x frame_height`
    /// camera frames in the [`YoloProfile::Paper`] configuration; call
    /// [`YoloLiteDetector::train`] before use.
    pub fn new(frame_width: usize, frame_height: usize, rng: &mut TensorRng) -> Self {
        Self::with_profile(frame_width, frame_height, YoloProfile::Paper, rng)
    }

    /// Creates a detector with an explicit size profile.
    pub fn with_profile(
        frame_width: usize,
        frame_height: usize,
        profile: YoloProfile,
        rng: &mut TensorRng,
    ) -> Self {
        let net = match profile {
            YoloProfile::Small => Sequential::new(vec![
                Box::new(Conv2d::new(1, 8, 3, 2, 1, rng)),
                Box::new(Relu::new()),
                Box::new(Conv2d::new(8, 16, 3, 2, 1, rng)),
                Box::new(Relu::new()),
                Box::new(Conv2d::new(16, 2, 1, 1, 0, rng)),
            ]),
            YoloProfile::Paper => Sequential::new(vec![
                Box::new(Conv2d::new(1, 16, 3, 1, 1, rng)),
                Box::new(Relu::new()),
                Box::new(Conv2d::new(16, 32, 3, 2, 1, rng)),
                Box::new(Relu::new()),
                Box::new(Conv2d::new(32, 32, 3, 1, 1, rng)),
                Box::new(Relu::new()),
                Box::new(Conv2d::new(32, 32, 3, 1, 1, rng)),
                Box::new(Relu::new()),
                Box::new(Conv2d::new(32, 64, 3, 2, 1, rng)),
                Box::new(Relu::new()),
                Box::new(Conv2d::new(64, 64, 3, 1, 1, rng)),
                Box::new(Relu::new()),
                Box::new(Conv2d::new(64, 64, 3, 1, 1, rng)),
                Box::new(Relu::new()),
                Box::new(Conv2d::new(64, 64, 3, 1, 1, rng)),
                Box::new(Relu::new()),
                Box::new(Conv2d::new(64, 2, 1, 1, 0, rng)),
            ]),
        };
        YoloLiteDetector {
            net,
            profile,
            confidence: 0.6,
            frame_width,
            frame_height,
        }
    }

    /// Sets the objectness confidence threshold.
    pub fn with_confidence(mut self, confidence: f32) -> Self {
        self.confidence = confidence;
        self
    }

    /// Objectness grid dimensions `(height, width)`.
    pub fn grid_dims(&self) -> (usize, usize) {
        (
            self.profile.net_h() / self.profile.stride(),
            self.profile.net_w() / self.profile.stride(),
        )
    }

    /// Downsamples and normalises a camera frame into the net input.
    fn to_input(&self, frame: &GrayFrame) -> Tensor {
        let small = frame.resize(self.profile.net_w(), self.profile.net_h());
        let data: Vec<f32> = small.pixels().iter().map(|&p| p as f32 / 255.0).collect();
        Tensor::from_vec(data, &[1, 1, self.profile.net_h(), self.profile.net_w()])
    }

    /// Maps camera-pixel vehicle centres into grid-cell indices.
    fn centres_to_cells(&self, centres: &[(usize, usize)]) -> Vec<usize> {
        let (gh, gw) = self.grid_dims();
        centres
            .iter()
            .filter_map(|&(x, y)| {
                let gx = x * self.profile.net_w() / self.frame_width / self.profile.stride();
                let gy = y * self.profile.net_h() / self.frame_height / self.profile.stride();
                if gx < gw && gy < gh {
                    Some(gy * gw + gx)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Supervised training: `samples` pairs a frame with the camera-pixel
    /// centres of all vehicles in it (simulator ground truth). Positive
    /// cells are up-weighted to counter the extreme background/object
    /// imbalance. Returns the per-epoch mean loss.
    pub fn train(
        &mut self,
        samples: &[(GrayFrame, Vec<(usize, usize)>)],
        epochs: usize,
        lr: f32,
    ) -> Vec<f32> {
        let mut opt = Sgd::with_momentum(lr, 0.9);
        let (gh, gw) = self.grid_dims();
        let cells = gh * gw;
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut epoch_loss = 0.0;
            for (frame, centres) in samples {
                let x = self.to_input(frame);
                let logits = self.net.forward(&x, Mode::Train); // [1, 2, GH, GW]
                // Rearrange to [cells, 2] for per-cell cross-entropy.
                let mut flat = Tensor::zeros(&[cells, 2]);
                for c in 0..2 {
                    for i in 0..cells {
                        flat.data_mut()[i * 2 + c] = logits.data()[c * cells + i];
                    }
                }
                let mut labels = vec![0usize; cells];
                let positives = self.centres_to_cells(centres);
                for &cell in &positives {
                    labels[cell] = 1;
                }
                let (loss, mut grad_flat) = softmax_cross_entropy(&flat, &labels);
                // Class weighting: positive cells get the weight that
                // balances the object/background pixel budget.
                let weight =
                    (cells as f32 / (2.0 * positives.len().max(1) as f32)).clamp(1.0, 200.0);
                for &cell in &positives {
                    grad_flat.data_mut()[cell * 2] *= weight;
                    grad_flat.data_mut()[cell * 2 + 1] *= weight;
                }
                let mut grad = Tensor::zeros(logits.dims());
                for c in 0..2 {
                    for i in 0..cells {
                        grad.data_mut()[c * cells + i] = grad_flat.data()[i * 2 + c];
                    }
                }
                self.net.backward(&grad);
                opt.step(&mut self.net.params_mut());
                epoch_loss += loss;
            }
            losses.push(epoch_loss / samples.len().max(1) as f32);
        }
        losses
    }

    /// Per-cell objectness probabilities for a frame, `[GH, GW]`.
    pub fn objectness(&mut self, frame: &GrayFrame) -> Tensor {
        let (gh, gw) = self.grid_dims();
        let cells = gh * gw;
        let x = self.to_input(frame);
        let logits = self.net.forward(&x, Mode::Eval);
        let mut out = Tensor::zeros(&[gh, gw]);
        for i in 0..cells {
            let l0 = logits.data()[i];
            let l1 = logits.data()[cells + i];
            let m = l0.max(l1);
            let p1 = ((l1 - m).exp()) / ((l0 - m).exp() + (l1 - m).exp());
            out.data_mut()[i] = p1;
        }
        out
    }
}

impl Detector for YoloLiteDetector {
    fn name(&self) -> &'static str {
        "yolo_lite"
    }

    fn detect(&mut self, frame: &GrayFrame, zone: &DangerZone) -> bool {
        let obj = self.objectness(frame);
        let (gh, gw) = self.grid_dims();
        let stride = self.profile.stride();
        // Map the zone into grid cells and test the confidence threshold.
        let gx0 = zone.x0 * self.profile.net_w() / self.frame_width / stride;
        let gx1 = ((zone.x0 + zone.width) * self.profile.net_w() / self.frame_width / stride)
            .min(gw - 1);
        let gy0 = zone.y0 * self.profile.net_h() / self.frame_height / stride;
        let gy1 = ((zone.y0 + zone.height) * self.profile.net_h() / self.frame_height / stride)
            .min(gh - 1);
        for gy in gy0..=gy1 {
            for gx in gx0..=gx1 {
                if obj.at(&[gy, gx]) > self.confidence {
                    return true;
                }
            }
        }
        false
    }

    fn reset(&mut self) {
        // Stateless across frames (single-shot per-frame detector).
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_with_blob(x: usize, y: usize, size: usize, intensity: u8) -> GrayFrame {
        let mut f = GrayFrame::filled(320, 240, 70);
        for dy in 0..size {
            for dx in 0..size * 2 {
                if x + dx < 320 && y + dy < 240 {
                    f.set(x + dx, y + dy, intensity);
                }
            }
        }
        f
    }

    fn training_set() -> Vec<(GrayFrame, Vec<(usize, usize)>)> {
        let mut out = Vec::new();
        // Large, clear vehicles densely covering positions/phases so the
        // detector generalises rather than memorising alignments...
        for i in 0..24 {
            let x = 20 + (i * 37) % 260;
            let y = 40 + (i * 23) % 160;
            out.push((frame_with_blob(x, y, 8, 230), vec![(x + 8, y + 4)]));
        }
        // ...and empty frames.
        for _ in 0..6 {
            out.push((GrayFrame::filled(320, 240, 70), vec![]));
        }
        out
    }

    fn small(seed: u64) -> YoloLiteDetector {
        let mut rng = TensorRng::seed_from(seed);
        YoloLiteDetector::with_profile(320, 240, YoloProfile::Small, &mut rng)
    }

    #[test]
    fn training_reduces_loss() {
        let mut det = small(0);
        let losses = det.train(&training_set(), 6, 0.05);
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn detects_large_trained_style_vehicles() {
        let mut det = small(1).with_confidence(0.5);
        det.train(&training_set(), 20, 0.05);
        let zone = DangerZone { x0: 40, y0: 50, width: 120, height: 60 };
        assert!(det.detect(&frame_with_blob(80, 70, 8, 230), &zone));
        assert!(!det.detect(&GrayFrame::filled(320, 240, 70), &zone));
    }

    #[test]
    fn misses_small_far_low_contrast_vehicles() {
        // The paper's YOLOv3 failure mode: after training on clear large
        // examples, a 4x2-pixel dim blob under noise goes undetected.
        let mut det = small(2).with_confidence(0.5);
        det.train(&training_set(), 20, 0.05);
        let zone = DangerZone { x0: 40, y0: 50, width: 120, height: 60 };
        let tiny = frame_with_blob(80, 70, 2, 120); // 4x2 px, low contrast
        assert!(!det.detect(&tiny, &zone));
    }

    #[test]
    fn objectness_is_probability() {
        let mut det = small(3);
        let obj = det.objectness(&GrayFrame::filled(320, 240, 90));
        let (gh, gw) = det.grid_dims();
        assert_eq!(obj.dims(), &[gh, gw]);
        assert!(obj.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn paper_profile_is_heavier() {
        let mut rng = TensorRng::seed_from(4);
        let paper = YoloLiteDetector::with_profile(320, 240, YoloProfile::Paper, &mut rng);
        let small = small(4);
        let count = |d: &YoloLiteDetector| d.net.num_parameters();
        assert!(count(&paper) > 5 * count(&small));
    }
}
