//! Background-subtraction detector (the paper's winner).

use crate::detector::Detector;
use crate::zone::DangerZone;
use safecross_vision::{connected_components, opening, BackgroundSubtractor, GrayFrame};

/// Dynamic background subtraction + morphological opening + connected
/// components, with the danger-zone hit test on component bounding
/// boxes.
///
/// Cheapest of the four methods by a wide margin (one pass over the
/// pixels), and robust to sensor noise thanks to the opening — exactly
/// the profile Table II reports (0.74 ms, detected).
#[derive(Debug, Clone)]
pub struct BgsDetector {
    bgs: BackgroundSubtractor,
    morph_radius: usize,
    min_area: usize,
    width: usize,
    height: usize,
}

impl BgsDetector {
    /// Creates a detector for `width x height` frames with the VP
    /// pipeline's default thresholds.
    pub fn new(width: usize, height: usize) -> Self {
        BgsDetector {
            bgs: BackgroundSubtractor::new(width, height, 0.02, 35.0),
            morph_radius: 1,
            min_area: 4,
            width,
            height,
        }
    }

    /// Disables all noise suppression — no morphological opening and no
    /// minimum component area (Table II ablation).
    pub fn without_morphology(mut self) -> Self {
        self.morph_radius = 0;
        self.min_area = 1;
        self
    }
}

impl Detector for BgsDetector {
    fn name(&self) -> &'static str {
        "background_subtraction"
    }

    fn detect(&mut self, frame: &GrayFrame, zone: &DangerZone) -> bool {
        let mask = self.bgs.apply(frame);
        let cleaned = opening(&mask, self.morph_radius);
        connected_components(&cleaned, self.min_area)
            .iter()
            .any(|c| c.intersects_rect(zone.x0, zone.y0, zone.width, zone.height))
    }

    fn reset(&mut self) {
        self.bgs = BackgroundSubtractor::new(self.width, self.height, 0.02, 35.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone() -> DangerZone {
        DangerZone { x0: 20, y0: 20, width: 30, height: 10 }
    }

    fn background() -> GrayFrame {
        GrayFrame::filled(64, 48, 80)
    }

    fn with_vehicle(x: usize, y: usize) -> GrayFrame {
        let mut f = background();
        for dy in 0..4 {
            for dx in 0..8 {
                f.set(x + dx, y + dy, 220);
            }
        }
        f
    }

    fn warm(det: &mut BgsDetector, frames: usize) {
        let bg = background();
        for _ in 0..frames {
            det.detect(&bg, &zone());
        }
    }

    #[test]
    fn detects_vehicle_in_zone() {
        let mut det = BgsDetector::new(64, 48);
        warm(&mut det, 10);
        assert!(det.detect(&with_vehicle(25, 22), &zone()));
    }

    #[test]
    fn ignores_vehicle_outside_zone() {
        let mut det = BgsDetector::new(64, 48);
        warm(&mut det, 10);
        assert!(!det.detect(&with_vehicle(2, 40), &zone()));
    }

    #[test]
    fn morphology_suppresses_single_pixel_noise() {
        let mut det = BgsDetector::new(64, 48);
        warm(&mut det, 10);
        let mut noisy = background();
        noisy.set(30, 24, 250); // one hot pixel inside the zone
        assert!(!det.detect(&noisy, &zone()));
        // The ablation variant without morphology is fooled.
        let mut naive = BgsDetector::new(64, 48).without_morphology();
        warm(&mut naive, 10);
        assert!(naive.detect(&noisy, &zone()));
    }

    #[test]
    fn reset_clears_background() {
        let mut det = BgsDetector::new(64, 48);
        warm(&mut det, 10);
        det.reset();
        // First frame after reset initialises the model: no detection.
        assert!(!det.detect(&with_vehicle(25, 22), &zone()));
    }
}
