//! The detector abstraction.

use crate::zone::DangerZone;
use safecross_vision::GrayFrame;

/// A moving-vehicle detector judged on the danger zone.
///
/// Detectors are streaming: they receive consecutive frames in order
/// (several need the previous frame or an internal background model) and
/// answer, per frame, whether a moving vehicle is present inside the
/// zone.
pub trait Detector {
    /// Method name as it appears in Table II.
    fn name(&self) -> &'static str;

    /// Processes the next frame of the stream and reports whether a
    /// moving vehicle is detected inside `zone`.
    fn detect(&mut self, frame: &GrayFrame, zone: &DangerZone) -> bool;

    /// Resets any streaming state (background model, previous frame).
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BgsDetector;

    #[test]
    fn trait_is_object_safe() {
        let det: Box<dyn Detector> = Box::new(BgsDetector::new(320, 240));
        assert_eq!(det.name(), "background_subtraction");
    }
}
