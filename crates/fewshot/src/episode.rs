//! N-way K-shot episode sampling.

use safecross_dataset::{Class, Dataset};
use safecross_tensor::{Tensor, TensorRng};

/// One meta-learning episode: a small labelled support set to adapt on
/// and a query set to evaluate the adapted model.
#[derive(Debug, Clone)]
pub struct Episode {
    /// `(clips [S, 1, T, H, W], labels)` used for inner-loop adaptation.
    pub support: (Tensor, Vec<usize>),
    /// `(clips [Q, 1, T, H, W], labels)` used for the outer-loop loss.
    pub query: (Tensor, Vec<usize>),
}

impl Episode {
    /// Support-set size.
    pub fn support_size(&self) -> usize {
        self.support.1.len()
    }

    /// Query-set size.
    pub fn query_size(&self) -> usize {
        self.query.1.len()
    }
}

/// Samples a 2-way `k_shot` episode from the dataset rows named by
/// `indices`: `k_shot` support and `query_per_class` query segments per
/// class, all distinct.
///
/// # Panics
///
/// Panics if either class has fewer than `k_shot + query_per_class`
/// segments among `indices`.
pub fn sample_episode(
    data: &Dataset,
    indices: &[usize],
    k_shot: usize,
    query_per_class: usize,
    rng: &mut TensorRng,
) -> Episode {
    assert!(k_shot > 0 && query_per_class > 0, "episode sizes must be positive");
    let mut danger: Vec<usize> = indices
        .iter()
        .copied()
        .filter(|&i| data.get(i).label.class == Class::Danger)
        .collect();
    let mut safe: Vec<usize> = indices
        .iter()
        .copied()
        .filter(|&i| data.get(i).label.class == Class::Safe)
        .collect();
    let need = k_shot + query_per_class;
    assert!(
        danger.len() >= need && safe.len() >= need,
        "need {need} per class, have danger={} safe={}",
        danger.len(),
        safe.len()
    );
    rng.shuffle(&mut danger);
    rng.shuffle(&mut safe);
    let mut support_idx: Vec<usize> = Vec::with_capacity(2 * k_shot);
    support_idx.extend(&danger[..k_shot]);
    support_idx.extend(&safe[..k_shot]);
    let mut query_idx: Vec<usize> = Vec::with_capacity(2 * query_per_class);
    query_idx.extend(&danger[k_shot..need]);
    query_idx.extend(&safe[k_shot..need]);
    rng.shuffle(&mut support_idx);
    rng.shuffle(&mut query_idx);
    Episode {
        support: data.batch(&support_idx),
        query: data.batch(&query_idx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safecross_dataset::{GridSegment, SegmentLabel, TurnAction};
    use safecross_trafficsim::Weather;

    fn dataset(n_danger: usize, n_safe: usize) -> Dataset {
        let mut segs = Vec::new();
        for i in 0..n_danger + n_safe {
            let class = if i < n_danger { Class::Danger } else { Class::Safe };
            segs.push(GridSegment {
                clip: Tensor::full(&[1, 4, 2, 2], i as f32),
                label: SegmentLabel {
                    action: TurnAction::Turn,
                    blind_area: false,
                    class,
                    blind_occupied: false,
                },
                weather: Weather::Rain,
            });
        }
        Dataset::new(segs)
    }

    #[test]
    fn episode_is_balanced_and_disjoint() {
        let data = dataset(10, 10);
        let all: Vec<usize> = (0..20).collect();
        let mut rng = TensorRng::seed_from(0);
        let ep = sample_episode(&data, &all, 3, 2, &mut rng);
        assert_eq!(ep.support_size(), 6);
        assert_eq!(ep.query_size(), 4);
        // Balanced labels.
        assert_eq!(ep.support.1.iter().filter(|&&l| l == 0).count(), 3);
        assert_eq!(ep.query.1.iter().filter(|&&l| l == 1).count(), 2);
        // Disjoint: the clip fill values identify source segments.
        let mut ids: Vec<i64> = Vec::new();
        for b in 0..6 {
            ids.push(ep.support.0.at(&[b, 0, 0, 0, 0]) as i64);
        }
        for b in 0..4 {
            ids.push(ep.query.0.at(&[b, 0, 0, 0, 0]) as i64);
        }
        let unique: std::collections::HashSet<i64> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len(), "support/query overlap: {ids:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let data = dataset(8, 8);
        let all: Vec<usize> = (0..16).collect();
        let a = sample_episode(&data, &all, 2, 2, &mut TensorRng::seed_from(3));
        let b = sample_episode(&data, &all, 2, 2, &mut TensorRng::seed_from(3));
        assert_eq!(a.support.1, b.support.1);
        assert_eq!(a.query.0, b.query.0);
    }

    #[test]
    #[should_panic(expected = "need 5 per class")]
    fn insufficient_class_data_panics() {
        let data = dataset(4, 10);
        let all: Vec<usize> = (0..14).collect();
        sample_episode(&data, &all, 3, 2, &mut TensorRng::seed_from(0));
    }
}
