//! First-order MAML and the Table V ablation baselines.

use crate::episode::{sample_episode, Episode};
use safecross_dataset::Dataset;
use safecross_modelswitch::{ModelManifest, ModelRegistry};
use safecross_nn::{softmax_cross_entropy, Mode, Optimizer, Sgd};
use safecross_tensor::{Tensor, TensorRng};
use safecross_videoclass::{train, TrainConfig, VideoClassifier};

/// MAML hyper-parameters (paper Sec. III-D: inner loop Eq. 1, outer loop
/// Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MamlConfig {
    /// Inner-loop gradient steps `k`.
    pub inner_steps: usize,
    /// Inner-loop learning rate `α`.
    pub inner_lr: f32,
    /// Outer-loop (meta) learning rate `β`.
    pub outer_lr: f32,
    /// Outer-loop iterations.
    pub meta_iterations: usize,
    /// Episodes per outer update, evaluated in parallel.
    pub meta_batch: usize,
    /// Support shots per class (`K`).
    pub k_shot: usize,
    /// Query samples per class.
    pub query_per_class: usize,
}

impl Default for MamlConfig {
    fn default() -> Self {
        MamlConfig {
            inner_steps: 3,
            inner_lr: 0.05,
            outer_lr: 0.02,
            meta_iterations: 10,
            meta_batch: 2,
            k_shot: 4,
            query_per_class: 4,
        }
    }
}

/// The meta-trainer.
///
/// First-order MAML: the inner loop adapts a *clone* of the meta model
/// on an episode's support set (Eq. 1); the query-set gradient evaluated
/// at the adapted parameters is then applied directly to the meta
/// parameters (Eq. 2 with the second-order term dropped — the standard
/// FOMAML simplification).
#[derive(Debug, Clone)]
pub struct Maml {
    config: MamlConfig,
}

impl Maml {
    /// Creates a meta-trainer.
    pub fn new(config: MamlConfig) -> Self {
        Maml { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MamlConfig {
        &self.config
    }

    /// Runs the inner loop on a clone and returns the query-set gradient
    /// (one tensor per parameter, meta-model order) plus the query loss.
    fn episode_gradient<M>(&self, meta: &M, episode: &Episode) -> (Vec<Tensor>, f32)
    where
        M: VideoClassifier + Clone,
    {
        let mut task_model = meta.clone();
        inner_adapt(&mut task_model, episode, self.config.inner_steps, self.config.inner_lr);
        // Query gradient at the adapted parameters.
        task_model.zero_grad();
        let logits = task_model.forward(&episode.query.0, Mode::Train);
        let (loss, grad) = softmax_cross_entropy(&logits, &episode.query.1);
        task_model.backward(&grad);
        let grads = task_model.params().iter().map(|p| p.grad_or_zeros()).collect();
        (grads, loss)
    }

    /// Meta-trains `model` in place on episodes drawn from
    /// `data[indices]`, returning the query loss per outer iteration.
    ///
    /// Episodes within a meta-batch run on separate threads (std::thread
    /// scope); gradients are averaged before the meta update.
    pub fn meta_train<M>(
        &self,
        model: &mut M,
        data: &Dataset,
        indices: &[usize],
        seed: u64,
    ) -> Vec<f32>
    where
        M: VideoClassifier + Clone + Sync,
    {
        let mut rng = TensorRng::seed_from(seed);
        let mut losses = Vec::with_capacity(self.config.meta_iterations);
        for _ in 0..self.config.meta_iterations {
            let episodes: Vec<Episode> = (0..self.config.meta_batch)
                .map(|_| {
                    sample_episode(
                        data,
                        indices,
                        self.config.k_shot,
                        self.config.query_per_class,
                        &mut rng,
                    )
                })
                .collect();
            // Evaluate episodes in parallel; each worker clones the meta
            // model, adapts it, and reports the query gradient.
            let results: Vec<(Vec<Tensor>, f32)> = std::thread::scope(|scope| {
                let handles: Vec<_> = episodes
                    .iter()
                    .map(|ep| {
                        let meta_ref = &*model;
                        scope.spawn(move || self.episode_gradient(meta_ref, ep))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });

            // Average gradients and take the meta step (Eq. 2).
            let n = results.len() as f32;
            let mut mean_loss = 0.0;
            let mut params = model.params_mut();
            for (grads, loss) in &results {
                mean_loss += loss / n;
                for (p, g) in params.iter_mut().zip(grads) {
                    p.grad_mut().add_scaled(g, 1.0 / n);
                }
            }
            for p in params.iter_mut() {
                let update = p.grad_or_zeros();
                p.value.add_scaled(&update, -self.config.outer_lr);
                p.zero_grad();
            }
            losses.push(mean_loss);
        }
        losses
    }
}

/// Inner-loop adaptation in place: a few SGD steps on the support set.
fn inner_adapt<M: VideoClassifier>(model: &mut M, episode: &Episode, steps: usize, lr: f32) {
    let mut opt = Sgd::new(lr);
    for _ in 0..steps {
        let logits = model.forward(&episode.support.0, Mode::Train);
        let (_, grad) = softmax_cross_entropy(&logits, &episode.support.1);
        model.backward(&grad);
        opt.step(&mut model.params_mut());
    }
}

/// Deployment-time adaptation (the paper's `f_{θ'}`): clones the meta
/// model and adapts it to a new scene's small support set.
pub fn adapt<M>(meta: &M, support: &(Tensor, Vec<usize>), steps: usize, lr: f32) -> M
where
    M: VideoClassifier + Clone,
{
    let mut adapted = meta.clone();
    let episode = Episode {
        support: support.clone(),
        query: support.clone(), // unused by the inner loop
    };
    inner_adapt(&mut adapted, &episode, steps, lr);
    adapted
}

/// [`adapt`], persisted: the adapted model is saved into `store` under
/// `name` as content-addressed layer groups and returned together with
/// its manifest. Layer groups the adaptation left untouched (e.g. a
/// trunk the few inner steps barely moved won't dedup, but a frozen one
/// will, and a re-registration of an identical checkpoint always does)
/// share blobs with the checkpoints already in the store — so a fleet
/// keeping daytime/rain/snow plus few-shot-adapted variants pays only
/// for the groups that actually changed.
///
/// The checkpoint is also calibrated for int8 serving: per-channel
/// scales are computed from the adapted weights and the quantized
/// sidecar registered beside the f32 groups
/// ([`ModelRegistry::quantize_model`]), so a switcher running at
/// [`safecross_tensor::Precision::Int8`] can pin it immediately.
/// Quantization is deterministic in the weight bits, so identical
/// checkpoints dedup their sidecars exactly like their f32 blobs.
pub fn adapt_checkpoint<M>(
    meta: &M,
    support: &(Tensor, Vec<usize>),
    steps: usize,
    lr: f32,
    store: &ModelRegistry,
    name: &str,
) -> (M, ModelManifest)
where
    M: VideoClassifier + Clone,
{
    let adapted = adapt(meta, support, steps, lr);
    let manifest = store.register_model(name, &adapted.state_groups());
    store.quantize_model(name);
    (adapted, manifest)
}

/// The "without few-shot learning" ablation arm: trains a fresh model
/// directly on the (small) target-scene training set.
pub fn train_from_scratch<M>(
    mut model: M,
    data: &Dataset,
    indices: &[usize],
    epochs: usize,
    lr: f32,
    seed: u64,
) -> M
where
    M: VideoClassifier,
{
    let cfg = TrainConfig {
        epochs,
        lr,
        seed,
        ..TrainConfig::default()
    };
    train(&mut model, data, indices, &cfg);
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use safecross_dataset::{Class, GridSegment, SegmentLabel, TurnAction};
    use safecross_trafficsim::Weather;
    use safecross_videoclass::{evaluate, SlowFastLite};

    /// A synthetic "weather" task family: class 0 clips have a blob in
    /// the top half, class 1 in the bottom half; a scene-specific bias
    /// perturbs all values.
    fn synthetic_dataset(n_per_class: usize, bias: f32, seed: u64) -> Dataset {
        let mut rng = TensorRng::seed_from(seed);
        let mut segs = Vec::new();
        for i in 0..2 * n_per_class {
            let class = if i % 2 == 0 { Class::Danger } else { Class::Safe };
            let mut clip = Tensor::zeros(&[1, 8, 8, 8]);
            let row = if class == Class::Danger { 1 } else { 6 };
            for t in 0..8 {
                let col = (t + i) % 8;
                clip.set(&[0, t, row, col], 1.0 + bias);
            }
            // Mild noise.
            let noise = rng.uniform(clip.dims(), 0.0, 0.1);
            let clip = clip + noise;
            segs.push(GridSegment {
                clip,
                label: SegmentLabel {
                    action: TurnAction::Turn,
                    blind_area: false,
                    class,
                    blind_occupied: false,
                },
                weather: Weather::Rain,
            });
        }
        Dataset::new(segs)
    }

    fn small_model(seed: u64) -> SlowFastLite {
        let mut rng = TensorRng::seed_from(seed);
        SlowFastLite::new(2, &mut rng)
    }

    #[test]
    fn meta_training_reduces_query_loss() {
        let data = synthetic_dataset(12, 0.0, 0);
        let all: Vec<usize> = (0..data.len()).collect();
        let mut model = small_model(1);
        let cfg = MamlConfig {
            meta_iterations: 8,
            meta_batch: 2,
            inner_steps: 2,
            k_shot: 3,
            query_per_class: 3,
            ..MamlConfig::default()
        };
        let losses = Maml::new(cfg).meta_train(&mut model, &data, &all, 7);
        assert_eq!(losses.len(), 8);
        let first = losses[..2].iter().sum::<f32>() / 2.0;
        let last = losses[losses.len() - 2..].iter().sum::<f32>() / 2.0;
        assert!(last < first, "meta loss did not improve: {losses:?}");
    }

    #[test]
    fn adaptation_improves_on_shifted_scene() {
        // Meta-train on the base scene, then adapt to a biased scene with
        // few shots; the adapted model must beat the unadapted one there.
        let base = synthetic_dataset(12, 0.0, 2);
        let target = synthetic_dataset(8, 0.6, 3);
        let base_idx: Vec<usize> = (0..base.len()).collect();
        let mut meta = small_model(4);
        let cfg = MamlConfig {
            meta_iterations: 6,
            meta_batch: 2,
            inner_steps: 2,
            k_shot: 3,
            query_per_class: 3,
            ..MamlConfig::default()
        };
        Maml::new(cfg).meta_train(&mut meta, &base, &base_idx, 8);

        let mut rng = TensorRng::seed_from(9);
        let support_ep = sample_episode(&target, &(0..target.len()).collect::<Vec<_>>(), 3, 3, &mut rng);
        let mut adapted = adapt(&meta, &support_ep.support, 5, 0.05);

        // Evaluate both on all target segments.
        let target_idx: Vec<usize> = (0..target.len()).collect();
        let mut meta_eval = meta.clone();
        let before = evaluate(&mut meta_eval, &target, &target_idx);
        let after = evaluate(&mut adapted, &target, &target_idx);
        assert!(
            after.top1 >= before.top1,
            "adaptation hurt: {} -> {}",
            before.top1,
            after.top1
        );
    }

    #[test]
    fn scratch_training_runs() {
        let data = synthetic_dataset(6, 0.0, 5);
        let all: Vec<usize> = (0..data.len()).collect();
        let model = train_from_scratch(small_model(6), &data, &all, 2, 0.05, 0);
        assert!(model.num_parameters() > 0);
    }

    #[test]
    fn adapt_checkpoint_persists_the_adapted_weights() {
        let data = synthetic_dataset(6, 0.0, 11);
        let meta = small_model(12);
        let store = ModelRegistry::new();
        // The meta model itself is a stored checkpoint too.
        store.register_model("meta", &meta.state_groups());
        let mut rng = TensorRng::seed_from(2);
        let ep = sample_episode(&data, &(0..data.len()).collect::<Vec<_>>(), 2, 2, &mut rng);
        let (adapted, manifest) =
            adapt_checkpoint(&meta, &ep.support, 3, 0.1, &store, "rain_adapted");
        assert_eq!(manifest.model, "rain_adapted");
        assert!(store.contains("rain_adapted"));
        // The stored state dict is bit-identical to the adapted model's.
        let stored = store.state_dict("rain_adapted").expect("stored");
        let live = adapted.state_dict();
        let as_map = |v: &[(String, Tensor)]| {
            let mut v: Vec<(String, Vec<u32>)> = v
                .iter()
                .map(|(n, t)| (n.clone(), t.data().iter().map(|x| x.to_bits()).collect()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(as_map(&stored), as_map(&live));
        // Adaptation ran, so at least one group diverged from the meta
        // checkpoint — but identical groups (batch-norm-free stages the
        // support gradient never reached, if any) may still be shared.
        assert_ne!(
            store.state_dict("meta").map(|s| as_map(&s)),
            Some(as_map(&live)),
            "adaptation should move some weights"
        );
        // The checkpoint was calibrated for int8 serving on the way in:
        // every rank>=2 weight has a per-channel-quantized sidecar entry.
        assert!(store.has_quantized("rain_adapted"));
        let qdict = store.qstate_dict("rain_adapted").expect("sidecar");
        let expected: Vec<String> = live
            .iter()
            .filter(|(_, t)| t.shape().ndim() >= 2)
            .map(|(n, _)| n.clone())
            .collect();
        let mut got: Vec<String> = qdict.iter().map(|(n, _)| n.clone()).collect();
        got.sort();
        let mut expected = expected;
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn adapt_does_not_mutate_meta_model() {
        let data = synthetic_dataset(6, 0.0, 7);
        let meta = small_model(8);
        let before: Vec<f32> = meta.params().iter().map(|p| p.value.norm()).collect();
        let mut rng = TensorRng::seed_from(1);
        let ep = sample_episode(&data, &(0..data.len()).collect::<Vec<_>>(), 2, 2, &mut rng);
        let _adapted = adapt(&meta, &ep.support, 3, 0.1);
        let after: Vec<f32> = meta.params().iter().map(|p| p.value.norm()).collect();
        assert_eq!(before, after);
    }
}
