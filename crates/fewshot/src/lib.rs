//! # safecross-fewshot
//!
//! The paper's few-shot learning (FL) module: rain and snow have far too
//! few labelled segments to train a video classifier from scratch
//! (Table I: 34 rain segments), so SafeCross adapts the data-rich daytime
//! model instead. This crate implements:
//!
//! - [`Episode`] construction — N-way K-shot support/query sampling;
//! - [`Maml`] — first-order Model-Agnostic Meta-Learning with the
//!   paper's two optimisation loops (Eq. 1 inner task adaptation,
//!   Eq. 2 outer meta-initialisation update), with meta-batch episodes
//!   evaluated in parallel via scoped threads;
//! - [`adapt`] — the deployment-time inner loop: clone the meta model
//!   and take a few gradient steps on the support set;
//! - [`train_from_scratch`] — the "without few-shot learning" ablation
//!   arm of Table V.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod episode;
mod maml;

pub use episode::{sample_episode, Episode};
pub use maml::{adapt, adapt_checkpoint, train_from_scratch, Maml, MamlConfig};
