//! Dense 2-D linear algebra: matmul and transposes.
//!
//! The products here are thin shape-checked wrappers over the kernel
//! layer ([`crate::kernel`]), which owns the deterministic parallel GEMM
//! and the sparsity heuristic. Allocation-free call sites use
//! [`crate::kernel::gemm_into`] directly with scratch buffers.

use crate::kernel;
use crate::Tensor;

/// Tile edge for the cache-blocked transpose: a 32×32 f32 tile is 4 KiB,
/// so source and destination tiles both sit in L1 while being swapped.
const TRANSPOSE_TILE: usize = 32;

impl Tensor {
    /// Matrix product of two 2-D tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Runs on the kernel layer: the output is partitioned across the
    /// configured worker threads ([`crate::kernel::threads`]) while each
    /// element keeps the exact sequential (i, k, j) accumulation order,
    /// so results are bit-identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape().ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (rhs.shape().dim(0), rhs.shape().dim(1));
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

        let mut out = vec![0.0f32; m * n];
        kernel::gemm_into(self.data(), rhs.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product against a transposed rhs without materialising the
    /// transpose: `[m, k] x [n, k]ᵀ -> [m, n]`.
    ///
    /// Both operands stream along their rows (the packed layout the
    /// backward passes and the linear layer already store), and the
    /// result is bit-identical to `self.matmul(&rhs.transpose())` for
    /// finite inputs.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul_transb(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape().ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (n, k2) = (rhs.shape().dim(0), rhs.shape().dim(1));
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

        let mut out = vec![0.0f32; m * n];
        kernel::gemm_transb_into(self.data(), rhs.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a 2-D tensor.
    ///
    /// Cache-blocked: elements move tile by tile so both the row-major
    /// reads and the column-major writes stay within L1-sized footprints
    /// instead of striding the whole matrix per element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "transpose requires a 2-D tensor");
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        let data = self.data();
        let mut out = vec![0.0f32; m * n];
        let mut bi = 0;
        while bi < m {
            let ie = (bi + TRANSPOSE_TILE).min(m);
            let mut bj = 0;
            while bj < n {
                let je = (bj + TRANSPOSE_TILE).min(n);
                for i in bi..ie {
                    for j in bj..je {
                        out[j * m + i] = data[i * n + j];
                    }
                }
                bj = je;
            }
            bi = ie;
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Matrix–vector product: `[m, k] x [k] -> [m]`.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matvec lhs must be 2-D");
        assert_eq!(v.shape().ndim(), 1, "matvec rhs must be 1-D");
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        assert_eq!(k, v.len(), "matvec dimension mismatch");
        // A matvec is A·vᵀ with v as a single packed row: the transb
        // kernel's row-row dot is exactly the historical per-row sum.
        let mut out = vec![0.0f32; m];
        kernel::gemm_transb_into(self.data(), v.data(), &mut out, m, k, 1);
        Tensor::from_vec(out, &[m])
    }

    /// Dot product of two 1-D tensors.
    ///
    /// # Panics
    ///
    /// Panics on rank or length mismatch.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape().ndim(), 1, "dot lhs must be 1-D");
        assert_eq!(other.shape().ndim(), 1, "dot rhs must be 1-D");
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..9).map(|x| x as f32).collect(), &[3, 3]);
        let c = a.matmul(&Tensor::eye(3));
        assert_eq!(c, a);
        let c = Tensor::eye(3).matmul(&a);
        assert_eq!(c, a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_mismatch_panics() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..15).map(|x| (x as f32).sin()).collect(), &[3, 5]);
        let b = Tensor::from_vec((0..20).map(|x| (x as f32).cos()).collect(), &[4, 5]);
        let fused = a.matmul_transb(&b);
        let explicit = a.matmul(&b.transpose());
        assert_eq!(fused, explicit, "transb fast path must be bit-identical");
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn transpose_crosses_tile_boundaries() {
        // 37 and 41 straddle the 32-wide tile edge, exercising the
        // partial-tile paths in both axes.
        let (m, n) = (37, 41);
        let a = Tensor::from_vec((0..m * n).map(|x| x as f32).collect(), &[m, n]);
        let t = a.transpose();
        for i in 0..m {
            for j in 0..n {
                assert_eq!(t.at(&[j, i]), a.at(&[i, j]));
            }
        }
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matvec_and_dot() {
        let m = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]);
        let v = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(m.matvec(&v).data(), &[3.0, 8.0]);
        assert_eq!(v.dot(&v), 25.0);
    }

    #[test]
    fn matmul_transpose_identity_property() {
        // (A B)^T == B^T A^T on a modest random-ish case
        let a = Tensor::from_vec((0..12).map(|x| (x as f32).sin()).collect(), &[3, 4]);
        let b = Tensor::from_vec((0..20).map(|x| (x as f32).cos()).collect(), &[4, 5]);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert!(lhs.allclose(&rhs, 1e-5));
    }
}
