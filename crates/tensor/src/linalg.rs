//! Dense 2-D linear algebra: matmul and transposes.

use crate::Tensor;

impl Tensor {
    /// Matrix product of two 2-D tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// The loop order (i, k, j) keeps the innermost loop streaming over
    /// contiguous rows of both the output and `rhs`, which is the single
    /// most important optimisation for the im2col-based convolutions built
    /// on top of this.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape().ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (rhs.shape().dim(0), rhs.shape().dim(1));
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

        let a = self.data();
        let b = rhs.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "transpose requires a 2-D tensor");
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Matrix–vector product: `[m, k] x [k] -> [m]`.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matvec lhs must be 2-D");
        assert_eq!(v.shape().ndim(), 1, "matvec rhs must be 1-D");
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        assert_eq!(k, v.len(), "matvec dimension mismatch");
        let mut out = vec![0.0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data()[i * k..(i + 1) * k]
                .iter()
                .zip(v.data())
                .map(|(&a, &b)| a * b)
                .sum();
        }
        Tensor::from_vec(out, &[m])
    }

    /// Dot product of two 1-D tensors.
    ///
    /// # Panics
    ///
    /// Panics on rank or length mismatch.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape().ndim(), 1, "dot lhs must be 1-D");
        assert_eq!(other.shape().ndim(), 1, "dot rhs must be 1-D");
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..9).map(|x| x as f32).collect(), &[3, 3]);
        let c = a.matmul(&Tensor::eye(3));
        assert_eq!(c, a);
        let c = Tensor::eye(3).matmul(&a);
        assert_eq!(c, a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_mismatch_panics() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matvec_and_dot() {
        let m = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]);
        let v = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(m.matvec(&v).data(), &[3.0, 8.0]);
        assert_eq!(v.dot(&v), 25.0);
    }

    #[test]
    fn matmul_transpose_identity_property() {
        // (A B)^T == B^T A^T on a modest random-ish case
        let a = Tensor::from_vec((0..12).map(|x| (x as f32).sin()).collect(), &[3, 4]);
        let b = Tensor::from_vec((0..20).map(|x| (x as f32).cos()).collect(), &[4, 5]);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert!(lhs.allclose(&rhs, 1e-5));
    }
}
