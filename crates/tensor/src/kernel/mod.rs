//! The kernel execution layer: deterministic parallel GEMM and reusable
//! scratch buffers.
//!
//! Every forward pass in the workspace bottoms out in the two GEMM entry
//! points here ([`gemm_into`] / [`gemm_transb_into`]); convolutions lower
//! through `im2col`/`vol2col` into them and the linear head hits them
//! directly. The layer provides three things:
//!
//! 1. **Deterministic parallelism.** A GEMM's output is partitioned into
//!    contiguous flat ranges, one per worker on a [`std::thread::scope`]
//!    pool. Each output element is still accumulated in the exact
//!    sequential `p = 0..k` order, so the result is **bit-identical for
//!    every thread count including 1** — partitioning only decides *who*
//!    computes an element, never the order of the floating-point
//!    additions that produce it. This is the property that lets the
//!    `pipeline_equivalence` and `serve_equivalence` suites pass
//!    unmodified at any thread count.
//! 2. **Scratch reuse.** [`KernelScratch`] is a free-list of `f32`
//!    buffers that conv/pool/norm forwards borrow instead of allocating;
//!    once warm, the steady-state classify path performs zero heap
//!    allocations.
//! 3. **Observability.** Registered observers (see
//!    [`register_gemm_observer`]) receive one [`GemmSample`] per GEMM,
//!    which the orchestrator bridges into `nn.gemm.*` telemetry.
//!
//! The thread count comes from [`KernelConfig`]: the
//! `SAFECROSS_KERNEL_THREADS` environment variable when set, otherwise
//! the host's available parallelism. `1` reproduces the exact serial
//! code path (no worker pool is spun up at all).
//!
//! The instruction set comes from the same config: detected once
//! ([`Isa::detect`]) unless `SAFECROSS_KERNEL_ISA` or
//! [`KernelConfig::with_isa`] overrides it. The f32 inner loops in
//! [`simd`] are built so dispatch **never changes result bits** —
//! vector lanes are independent output elements and multiplies/adds are
//! never fused — so like the thread count, the ISA is purely a
//! performance knob.

pub mod simd;

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock, Weak};
use std::time::Instant;

pub use simd::Isa;

use crate::{Shape, Tensor};

// ---------------------------------------------------------------------
// Thread configuration
// ---------------------------------------------------------------------

/// Environment variable overriding the kernel worker count.
pub const KERNEL_THREADS_ENV: &str = "SAFECROSS_KERNEL_THREADS";

/// Environment variable forcing the kernel instruction set
/// (`avx2`/`neon`/`scalar`; unsupported values fall back to detection).
pub const KERNEL_ISA_ENV: &str = "SAFECROSS_KERNEL_ISA";

/// `0` means "not resolved yet"; resolved lazily on first use.
static KERNEL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// `0` means "not resolved yet"; otherwise `1 + Isa` encoding below.
static KERNEL_ISA: AtomicUsize = AtomicUsize::new(0);

fn isa_encode(isa: Isa) -> usize {
    match isa {
        Isa::Avx2 => 1,
        Isa::Neon => 2,
        Isa::Scalar => 3,
    }
}

fn isa_decode(code: usize) -> Option<Isa> {
    match code {
        1 => Some(Isa::Avx2),
        2 => Some(Isa::Neon),
        3 => Some(Isa::Scalar),
        _ => None,
    }
}

/// Kernel-layer execution settings.
///
/// ```
/// use safecross_tensor::kernel::KernelConfig;
///
/// let config = KernelConfig::from_env();
/// assert!(config.threads() >= 1);
/// KernelConfig::with_threads(2).install();
/// assert_eq!(safecross_tensor::kernel::threads(), 2);
/// KernelConfig::with_threads(1).install();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    threads: usize,
    isa: Isa,
}

impl KernelConfig {
    /// Resolves the worker count from `SAFECROSS_KERNEL_THREADS` when
    /// set (clamped to at least 1), else the host's available
    /// parallelism; and the instruction set from `SAFECROSS_KERNEL_ISA`
    /// when set (sanitized against host support), else detection.
    pub fn from_env() -> Self {
        let threads = std::env::var(KERNEL_THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from));
        let isa = std::env::var(KERNEL_ISA_ENV)
            .ok()
            .and_then(|v| Isa::parse(&v))
            .map_or_else(Isa::detect, Isa::sanitize);
        KernelConfig { threads, isa }
    }

    /// A configuration with an explicit worker count (clamped to ≥ 1)
    /// and the detected instruction set.
    pub fn with_threads(threads: usize) -> Self {
        KernelConfig {
            threads: threads.max(1),
            isa: Isa::detect(),
        }
    }

    /// This configuration with the given instruction set (sanitized
    /// against host support — forcing scalar always sticks, forcing an
    /// unsupported SIMD set falls back to detection).
    pub fn with_isa(self, isa: Isa) -> Self {
        KernelConfig {
            isa: isa.sanitize(),
            ..self
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured instruction set.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Makes this configuration the process-wide kernel setting.
    pub fn install(self) {
        KERNEL_THREADS.store(self.threads, Ordering::Relaxed);
        KERNEL_ISA.store(isa_encode(self.isa), Ordering::Relaxed);
    }
}

/// The process-wide kernel worker count, resolving
/// [`KernelConfig::from_env`] on first use.
pub fn threads() -> usize {
    let n = KERNEL_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let resolved = KernelConfig::from_env().threads;
    // Racing first calls resolve to the same value; last store wins.
    KERNEL_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Sets the process-wide kernel worker count (clamped to ≥ 1). The
/// instruction-set setting is left untouched.
///
/// Results are bit-identical at every thread count, so this only trades
/// wall-clock for cores.
pub fn set_threads(threads: usize) {
    KERNEL_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// The process-wide kernel instruction set, resolving
/// [`KernelConfig::from_env`] on first use.
pub fn isa() -> Isa {
    if let Some(isa) = isa_decode(KERNEL_ISA.load(Ordering::Relaxed)) {
        return isa;
    }
    let resolved = KernelConfig::from_env().isa;
    // Racing first calls resolve to the same value; last store wins.
    KERNEL_ISA.store(isa_encode(resolved), Ordering::Relaxed);
    resolved
}

/// Sets the process-wide kernel instruction set (sanitized against host
/// support). f32 results are bit-identical across instruction sets, so
/// like [`set_threads`] this only trades wall-clock.
pub fn set_isa(isa: Isa) {
    KERNEL_ISA.store(isa_encode(isa.sanitize()), Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// GEMM observers
// ---------------------------------------------------------------------

/// One completed GEMM, as reported to observers.
#[derive(Debug, Clone, Copy)]
pub struct GemmSample {
    /// Output rows.
    pub m: usize,
    /// Inner (reduction) dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Wall-clock time of the call, in milliseconds.
    pub elapsed_ms: f64,
}

impl GemmSample {
    /// Multiply-add operation count (`2·m·k·n`).
    pub fn flops(&self) -> u64 {
        2 * (self.m as u64) * (self.k as u64) * (self.n as u64)
    }
}

/// An observer callback receiving one [`GemmSample`] per GEMM.
pub type GemmObserverFn = dyn Fn(&GemmSample) + Send + Sync;

static OBSERVERS_ACTIVE: AtomicBool = AtomicBool::new(false);

fn observer_registry() -> &'static RwLock<Vec<Weak<GemmObserverFn>>> {
    static REGISTRY: OnceLock<RwLock<Vec<Weak<GemmObserverFn>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Vec::new()))
}

/// Registers a GEMM observer. The registry holds only a [`Weak`]
/// reference: the caller keeps the [`Arc`] alive for as long as it wants
/// samples, and dropping it unregisters the observer (dead entries are
/// pruned on the next registration). Observers must not allocate if the
/// zero-allocation classify guarantee matters to the process, and they
/// run on whichever thread issues the GEMM.
pub fn register_gemm_observer(observer: &Arc<GemmObserverFn>) {
    let mut observers = observer_registry()
        .write()
        .expect("gemm observer registry poisoned");
    observers.retain(|w| w.strong_count() > 0);
    observers.push(Arc::downgrade(observer));
    OBSERVERS_ACTIVE.store(true, Ordering::Release);
}

/// Whether at least one observer registration is live (it may since have
/// been dropped; the observe path tolerates that).
fn observers_active() -> bool {
    OBSERVERS_ACTIVE.load(Ordering::Acquire)
}

fn observe(sample: &GemmSample) {
    let observers = observer_registry()
        .read()
        .expect("gemm observer registry poisoned");
    for weak in observers.iter() {
        if let Some(observer) = weak.upgrade() {
            observer(sample);
        }
    }
}

// ---------------------------------------------------------------------
// Scratch arena
// ---------------------------------------------------------------------

/// A reusable free-list of `f32` buffers for allocation-free forwards.
///
/// Layers borrow zero-filled buffers with [`KernelScratch::take`] /
/// [`KernelScratch::take_tensor`] and hand them back with the matching
/// `recycle` calls once downstream consumers are done. `take` picks the
/// smallest pooled buffer whose capacity fits (best fit), falling back
/// to growing the largest one, so after a warm-up pass the pool reaches
/// a fixed point and steady-state traffic never touches the allocator.
///
/// One scratch belongs to one owner — a `SafeCross` session's classify
/// stage, one serve-executor worker — and is **not** `Sync`; sharing
/// across threads would serialise the very work the kernel layer
/// parallelises.
///
/// ```
/// use safecross_tensor::kernel::KernelScratch;
///
/// let mut scratch = KernelScratch::new();
/// let t = scratch.take_tensor(&[2, 3]);
/// assert_eq!(t.dims(), &[2, 3]);
/// assert!(t.data().iter().all(|&v| v == 0.0));
/// scratch.recycle_tensor(t);
/// assert_eq!(scratch.pooled_buffers(), 1);
/// ```
#[derive(Debug, Default)]
pub struct KernelScratch {
    pool: Vec<Vec<f32>>,
    qpool: Vec<Vec<i8>>,
}

impl KernelScratch {
    /// An empty scratch arena.
    pub fn new() -> Self {
        KernelScratch {
            pool: Vec::new(),
            qpool: Vec::new(),
        }
    }

    /// Borrows a zero-filled buffer of exactly `len` elements.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        // Best fit: the smallest pooled buffer whose capacity suffices.
        let mut best: Option<usize> = None;
        for (i, buf) in self.pool.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|j| buf.capacity() < self.pool[j].capacity())
            {
                best = Some(i);
            }
        }
        // Otherwise grow the largest buffer, so repeated warm-up growth
        // concentrates in one allocation instead of fragmenting the pool.
        let best = best.or_else(|| {
            (0..self.pool.len()).max_by_key(|&i| self.pool[i].capacity())
        });
        let mut buf = match best {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Borrows a zero-filled tensor of the given shape.
    pub fn take_tensor(&mut self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        Tensor::from_vec(self.take(shape.len()), dims)
    }

    /// Returns a buffer obtained from [`KernelScratch::take`].
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Returns a tensor's backing buffer to the pool.
    pub fn recycle_tensor(&mut self, t: Tensor) {
        self.recycle(t.into_vec());
    }

    /// Borrows a zero-filled `i8` buffer of exactly `len` elements —
    /// the quantized-activation counterpart of [`KernelScratch::take`],
    /// pooled separately so the f32 free-list semantics (and the
    /// [`KernelScratch::pooled_buffers`] diagnostic) are untouched.
    pub fn take_q(&mut self, len: usize) -> Vec<i8> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.qpool.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|j| buf.capacity() < self.qpool[j].capacity())
            {
                best = Some(i);
            }
        }
        let best = best.or_else(|| {
            (0..self.qpool.len()).max_by_key(|&i| self.qpool[i].capacity())
        });
        let mut buf = match best {
            Some(i) => self.qpool.swap_remove(i),
            None => Vec::new(),
        };
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Returns a buffer obtained from [`KernelScratch::take_q`].
    pub fn recycle_q(&mut self, buf: Vec<i8>) {
        if buf.capacity() > 0 {
            self.qpool.push(buf);
        }
    }

    /// How many f32 buffers are currently pooled (diagnostic).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.len()
    }

    /// How many i8 buffers are currently pooled (diagnostic).
    pub fn pooled_qbuffers(&self) -> usize {
        self.qpool.len()
    }
}

// ---------------------------------------------------------------------
// GEMM kernels
// ---------------------------------------------------------------------

/// Below this many flops (`2·m·k·n`) a GEMM runs serially even when more
/// workers are configured — thread spin-up would dominate.
const MIN_PARALLEL_FLOPS: usize = 1 << 18;

/// Column-block width for the inner accumulation loops: one `b` panel of
/// `k × COL_BLOCK` f32 stays resident in L2 while a row block streams
/// over it.
const COL_BLOCK: usize = 1024;

/// Inspects up to 16 evenly-spaced elements of an lhs row and reports
/// whether the row looks sparse (≥ 25 % sampled zeros).
///
/// The historical kernel tested `av == 0.0` on *every* element, which on
/// dense GEMMs (conv weights, im2col patches of raw frames) is a
/// never-taken branch per multiply. Skipping zero rows only pays on
/// genuinely sparse inputs — post-ReLU activations on the lhs, padded
/// patch rows — so the decision is made once per row from a bounded
/// sample. The choice is value-exact: for finite rhs values,
/// accumulating `0.0 * bv` leaves the (never `-0.0`) accumulator
/// bit-unchanged, so the skip and dense loops produce identical bits.
/// And because the decision reads only the row's own values, it is
/// independent of how the output is partitioned across workers.
fn row_is_sparse(row: &[f32]) -> bool {
    let k = row.len();
    if k == 0 {
        return false;
    }
    let samples = k.min(16);
    let mut zeros = 0;
    for s in 0..samples {
        if row[s * k / samples] == 0.0 {
            zeros += 1;
        }
    }
    4 * zeros >= samples
}

/// Computes the flat output elements `[start, start + out.len())` of an
/// `[m, k] × [k, n]` product, overwriting `out`. Each element accumulates
/// in ascending-`p` order regardless of the range split, and the inner
/// axpy dispatches to `isa` — which cannot change bits, because
/// [`simd::axpy`] vectorises across independent output columns with
/// non-fused multiply/add.
fn gemm_flat_range(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    start: usize,
    k: usize,
    n: usize,
    isa: Isa,
) {
    for v in out.iter_mut() {
        *v = 0.0;
    }
    let end = start + out.len();
    let mut pos = start;
    while pos < end {
        let i = pos / n;
        let j0 = pos - i * n;
        let j1 = n.min(j0 + (end - pos));
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[pos - start..pos - start + (j1 - j0)];
        let sparse = row_is_sparse(arow);
        let mut jb = j0;
        while jb < j1 {
            let je = (jb + COL_BLOCK).min(j1);
            let oseg = &mut orow[jb - j0..je - j0];
            if sparse {
                for (p, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    simd::axpy(isa, oseg, av, &b[p * n + jb..p * n + je]);
                }
            } else {
                for (p, &av) in arow.iter().enumerate() {
                    simd::axpy(isa, oseg, av, &b[p * n + jb..p * n + je]);
                }
            }
            jb = je;
        }
        pos += j1 - j0;
    }
}

/// Same contract as [`gemm_flat_range`] for `A × Bᵀ` with `b` stored
/// `[n, k]`: `out[i, j] = Σ_p a[i, p] · b[j, p]`, `p` ascending — the
/// packed-transpose fast path (both operands stream along rows, no
/// materialised transpose). Deliberately **not** SIMD-dispatched: its
/// reduction runs along `p`, so vector lanes would have to split the
/// accumulation and change the rounding sequence. The int8 path covers
/// this shape instead (integer accumulation is order-free).
fn gemm_transb_flat_range(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    start: usize,
    k: usize,
    n: usize,
) {
    for (off, o) in out.iter_mut().enumerate() {
        let pos = start + off;
        let i = pos / n;
        let j = pos - i * n;
        let arow = &a[i * k..(i + 1) * k];
        let brow = &b[j * k..(j + 1) * k];
        let mut acc = 0.0f32;
        for (&av, &bv) in arow.iter().zip(brow) {
            acc += av * bv;
        }
        *o = acc;
    }
}

/// Splits `out` into per-worker contiguous flat ranges and runs `body`
/// on each — on the calling thread when one worker suffices, otherwise
/// on a scoped pool (the caller's thread takes the first range). Ranges
/// are row-aligned when there are at least as many rows as workers;
/// otherwise the flat element range is split directly so wide-and-short
/// outputs (the single-clip conv case) still fan out.
pub(crate) fn partition_out<F>(out: &mut [f32], m: usize, n: usize, workers: usize, body: F)
where
    F: Fn(&mut [f32], usize) + Sync,
{
    let total = out.len();
    debug_assert_eq!(total, m * n);
    if workers <= 1 || total == 0 {
        body(out, 0);
        return;
    }
    let chunk = if m >= workers {
        m.div_ceil(workers) * n
    } else {
        total.div_ceil(workers)
    };
    std::thread::scope(|s| {
        let mut chunks = out.chunks_mut(chunk).enumerate();
        let first = chunks.next();
        for (w, chunk_out) in chunks {
            let body = &body;
            s.spawn(move || body(chunk_out, w * chunk));
        }
        if let Some((_, chunk_out)) = first {
            body(chunk_out, 0);
        }
    });
}

pub(crate) fn effective_workers(m: usize, k: usize, n: usize, threads: usize) -> usize {
    let flops = 2usize.saturating_mul(m).saturating_mul(k).saturating_mul(n);
    if threads <= 1 || flops < MIN_PARALLEL_FLOPS {
        1
    } else {
        threads.min(m * n)
    }
}

/// `[m, k] × [k, n] → [m, n]`, overwriting `out`, with an explicit
/// worker count. Results are bit-identical for every `threads` value.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_into_with_threads(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "gemm lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm output length mismatch");
    let workers = effective_workers(m, k, n, threads);
    let active_isa = isa();
    partition_out(out, m, n, workers, |chunk, start| {
        gemm_flat_range(a, b, chunk, start, k, n, active_isa);
    });
}

/// `[m, k] × [n, k]ᵀ → [m, n]`, overwriting `out`, with an explicit
/// worker count. Bit-identical to `a.matmul(&b.transpose())` for finite
/// inputs and for every `threads` value.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_transb_into_with_threads(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "gemm lhs length mismatch");
    assert_eq!(b.len(), n * k, "gemm rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm output length mismatch");
    let workers = effective_workers(m, k, n, threads);
    partition_out(out, m, n, workers, |chunk, start| {
        gemm_transb_flat_range(a, b, chunk, start, k, n);
    });
}

/// `[m, k] × [k, n] → [m, n]`, overwriting `out`, using the process-wide
/// thread setting and reporting to registered observers.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if !observers_active() {
        gemm_into_with_threads(a, b, out, m, k, n, threads());
        return;
    }
    let t0 = Instant::now();
    gemm_into_with_threads(a, b, out, m, k, n, threads());
    observe(&GemmSample {
        m,
        k,
        n,
        elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
    });
}

/// `[m, k] × [n, k]ᵀ → [m, n]`, overwriting `out`, using the
/// process-wide thread setting and reporting to registered observers.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_transb_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if !observers_active() {
        gemm_transb_into_with_threads(a, b, out, m, k, n, threads());
        return;
    }
    let t0 = Instant::now();
    gemm_transb_into_with_threads(a, b, out, m, k, n, threads());
    observe(&GemmSample {
        m,
        k,
        n,
        elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    /// The seed kernel, verbatim: (i, k, j) loops with an unconditional
    /// zero-skip branch. The reference every path must match bit-for-bit.
    fn reference_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    fn random_case(seed: u64, m: usize, k: usize, n: usize, zero_rate: f32) -> (Vec<f32>, Vec<f32>) {
        let mut rng = TensorRng::seed_from(seed);
        let mut a = vec![0.0f32; m * k];
        for v in &mut a {
            *v = if rng.unit() < zero_rate {
                0.0
            } else {
                rng.unit() * 2.0 - 1.0
            };
        }
        let mut b = vec![0.0f32; k * n];
        for v in &mut b {
            *v = rng.unit() * 2.0 - 1.0;
        }
        (a, b)
    }

    #[test]
    fn matches_reference_dense_and_sparse() {
        for (seed, m, k, n, zr) in [
            (1u64, 7, 13, 9, 0.0),
            (2, 4, 27, 320, 0.0),
            (3, 16, 33, 40, 0.6),
            (4, 3, 5, 2, 0.95),
        ] {
            let (a, b) = random_case(seed, m, k, n, zr);
            let expect = reference_gemm(&a, &b, m, k, n);
            let mut out = vec![f32::NAN; m * n];
            gemm_into_with_threads(&a, &b, &mut out, m, k, n, 1);
            assert_eq!(out, expect, "serial mismatch at m={m} k={k} n={n}");
        }
    }

    #[test]
    fn thread_count_never_changes_bits() {
        // Big enough to clear MIN_PARALLEL_FLOPS so workers really spawn.
        let (m, k, n) = (16, 64, 160);
        let (a, b) = random_case(7, m, k, n, 0.3);
        let mut expect = vec![0.0f32; m * n];
        gemm_into_with_threads(&a, &b, &mut expect, m, k, n, 1);
        for threads in [2, 4, 7, 32] {
            let mut out = vec![f32::NAN; m * n];
            gemm_into_with_threads(&a, &b, &mut out, m, k, n, threads);
            assert_eq!(out, expect, "threads={threads} changed bits");
        }
    }

    #[test]
    fn wide_single_row_still_partitions() {
        // m < workers forces the flat element-range split mid-row.
        let (m, k, n) = (2, 80, 1024);
        let (a, b) = random_case(9, m, k, n, 0.0);
        let mut expect = vec![0.0f32; m * n];
        gemm_into_with_threads(&a, &b, &mut expect, m, k, n, 1);
        let mut out = vec![f32::NAN; m * n];
        gemm_into_with_threads(&a, &b, &mut out, m, k, n, 8);
        assert_eq!(out, expect);
    }

    #[test]
    fn degenerate_extents() {
        // m = 0: legal on the slice API even though Shape forbids it.
        let mut out: Vec<f32> = Vec::new();
        gemm_into_with_threads(&[], &[1.0, 2.0], &mut out, 0, 2, 1, 4);
        assert!(out.is_empty());
        // k = 0: the product of empty matrices is all zeros.
        let mut out = vec![f32::NAN; 4];
        gemm_into_with_threads(&[], &[], &mut out, 2, 0, 2, 2);
        assert_eq!(out, vec![0.0; 4]);
        // n = 1 and k = 1.
        let mut out = vec![f32::NAN; 3];
        gemm_into_with_threads(&[2.0, 3.0, 4.0], &[5.0], &mut out, 3, 1, 1, 2);
        assert_eq!(out, vec![10.0, 15.0, 20.0]);
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        let (m, k, n) = (5, 33, 12);
        let (a, bt) = random_case(11, m, k, n, 0.2);
        // bt is [k, n] random data; reinterpret as b stored [n, k].
        let b = bt;
        let mut manual = vec![0.0f32; k * n];
        for r in 0..n {
            for c in 0..k {
                manual[c * n + r] = b[r * k + c];
            }
        }
        let expect = reference_gemm(&a, &manual, m, k, n);
        for threads in [1, 3, 8] {
            let mut out = vec![f32::NAN; m * n];
            gemm_transb_into_with_threads(&a, &b, &mut out, m, k, n, threads);
            assert_eq!(out, expect, "transb threads={threads}");
        }
    }

    #[test]
    fn output_is_overwritten_not_accumulated() {
        let mut out = vec![100.0f32; 4];
        gemm_into_with_threads(&[1.0, 0.0, 0.0, 1.0], &[1.0, 2.0, 3.0, 4.0], &mut out, 2, 2, 2, 1);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn scratch_reuses_capacity() {
        let mut scratch = KernelScratch::new();
        let a = scratch.take(100);
        scratch.recycle(a);
        let b = scratch.take(50);
        assert!(b.capacity() >= 100, "best fit should hand back the pooled buffer");
        assert_eq!(b.len(), 50);
        assert!(b.iter().all(|&v| v == 0.0));
        scratch.recycle(b);
        // Growth request grows the pooled buffer rather than pooling a new one.
        let c = scratch.take(200);
        assert_eq!(scratch.pooled_buffers(), 0);
        scratch.recycle(c);
        assert_eq!(scratch.pooled_buffers(), 1);
    }

    #[test]
    fn scratch_take_returns_zeroed_after_dirty_recycle() {
        let mut scratch = KernelScratch::new();
        let mut a = scratch.take(8);
        a.iter_mut().for_each(|v| *v = 3.0);
        scratch.recycle(a);
        let b = scratch.take(8);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sparse_heuristic_thresholds() {
        assert!(row_is_sparse(&[0.0; 8]));
        assert!(!row_is_sparse(&[1.0; 8]));
        // Exactly 25 % zeros trips the sparse path.
        assert!(row_is_sparse(&[0.0, 1.0, 1.0, 1.0]));
        assert!(!row_is_sparse(&[0.1, 1.0, 1.0, 1.0]));
        assert!(!row_is_sparse(&[]));
    }

    #[test]
    fn observers_receive_samples_and_unregister_on_drop() {
        use std::sync::atomic::AtomicU64;
        let count = Arc::new(AtomicU64::new(0));
        let flops = Arc::new(AtomicU64::new(0));
        let (c2, f2) = (count.clone(), flops.clone());
        let observer: Arc<GemmObserverFn> = Arc::new(move |s: &GemmSample| {
            c2.fetch_add(1, Ordering::Relaxed);
            f2.fetch_add(s.flops(), Ordering::Relaxed);
        });
        register_gemm_observer(&observer);
        let (a, b) = random_case(5, 3, 4, 5, 0.0);
        let mut out = vec![0.0f32; 15];
        gemm_into(&a, &b, &mut out, 3, 4, 5);
        assert!(count.load(Ordering::Relaxed) >= 1);
        assert!(flops.load(Ordering::Relaxed) >= 2 * 3 * 4 * 5);
        // Dropping the Arc unregisters: the count stops moving.
        drop(observer);
        let seen = count.load(Ordering::Relaxed);
        gemm_into(&a, &b, &mut out, 3, 4, 5);
        assert_eq!(count.load(Ordering::Relaxed), seen);
    }

    #[test]
    fn config_roundtrip() {
        let c = KernelConfig::with_threads(0);
        assert_eq!(c.threads(), 1);
        assert!(KernelConfig::from_env().threads() >= 1);
        // The ISA knob sanitizes: scalar always sticks, the detected
        // set round-trips, anything else falls back to detection.
        assert_eq!(c.with_isa(Isa::Scalar).isa(), Isa::Scalar);
        assert_eq!(c.with_isa(Isa::detect()).isa(), Isa::detect());
    }

    #[test]
    fn isa_dispatch_never_changes_f32_bits() {
        // Safe to flip the global mid-suite precisely because of the
        // property under test: other concurrently-running gemm tests
        // see identical bits whichever ISA they land on.
        let detected = Isa::detect();
        for (seed, m, k, n, zr) in [
            (21u64, 7, 13, 9, 0.0),
            (22, 4, 27, 3200, 0.0),
            (23, 16, 324, 100, 0.4),
            (24, 3, 5, 2, 0.95),
            (25, 2, 80, 1024, 0.0),
        ] {
            let (a, b) = random_case(seed, m, k, n, zr);
            set_isa(Isa::Scalar);
            let mut scalar = vec![f32::NAN; m * n];
            gemm_into_with_threads(&a, &b, &mut scalar, m, k, n, 1);
            set_isa(detected);
            for threads in [1usize, 4] {
                let mut out = vec![f32::NAN; m * n];
                gemm_into_with_threads(&a, &b, &mut out, m, k, n, threads);
                assert_eq!(
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "isa={detected:?} threads={threads} m={m} k={k} n={n}"
                );
            }
        }
    }

    #[test]
    fn scratch_qpool_is_separate_and_zeroed() {
        let mut scratch = KernelScratch::new();
        let mut q = scratch.take_q(64);
        q.iter_mut().for_each(|v| *v = -5);
        scratch.recycle_q(q);
        assert_eq!(scratch.pooled_qbuffers(), 1);
        assert_eq!(scratch.pooled_buffers(), 0);
        let q2 = scratch.take_q(32);
        assert!(q2.capacity() >= 64, "best fit should reuse the pooled buffer");
        assert!(q2.iter().all(|&v| v == 0));
        scratch.recycle_q(q2);
    }
}
