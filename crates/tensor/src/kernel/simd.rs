//! Runtime-dispatched SIMD microkernels.
//!
//! This module is the **only** place in the workspace where `unsafe`
//! code is permitted (the crate root carries `#![deny(unsafe_code)]`;
//! CI's unsafe-audit gate enforces both the confinement and the
//! `// SAFETY:` contract preceding every block). Everything it exports
//! is a safe function; the unsafety is the usual `std::arch` pair of
//! obligations — the CPU must actually support the instruction set, and
//! pointer-based lane loads/stores must stay inside their slices — and
//! both are discharged locally, per block. The first obligation is
//! enforced *inside* every dispatcher, not assumed of callers: [`Isa`]
//! is freely constructible ([`Isa::parse`] accepts any spelling), so
//! each public entry point runs the requested set through
//! [`Isa::sanitize`] before matching, and an unsupported request simply
//! executes on the detected (or scalar) path.
//!
//! Two microkernels exist, chosen so that vectorisation **cannot change
//! result bits**:
//!
//! - [`axpy`]: `acc[j] += a * b[j]` over a contiguous column segment —
//!   the dense inner loop of the f32 GEMM. Lanes are independent output
//!   elements, and the multiply and add are issued as *separate*
//!   rounded operations (`mul` then `add`, never an FMA), so every
//!   output element sees exactly the scalar path's operation sequence.
//!   f32 results are therefore bit-identical across `Isa`s, which is
//!   what lets [`Isa`] be a pure performance knob.
//! - [`qdot`]: `Σ a[p]·b[p]` over `i8` operands in an `i32`
//!   accumulator — the inner loop of the transposed int8 GEMM (both
//!   operands row-contiguous, deep `k`: the linear-layer shape).
//!   Integer arithmetic is exact, so lane order is free and the SIMD
//!   and scalar paths agree bit-for-bit by construction.
//! - [`qaxpy2`]: `acc[j] += a0·b[2j] + a1·b[2j+1]` over a
//!   pair-interleaved `i8` panel — the inner loop of the *flat* int8
//!   GEMM that convolutions lower to. Interleaving two reduction rows
//!   per column lets AVX2 `madd` / NEON `padal` fold both products into
//!   an `i32` lane in one instruction, with no horizontal reductions
//!   and no scalar tail along `k` — which is what makes int8 pay off
//!   even for the shallow fan-ins of the fast-pathway convs (`k = 27`),
//!   where a per-output dot product spends its life outside the vector
//!   unit. Integer-exact, so ISA is again a pure performance knob.
//! - [`qgemm_row`]: a register-blocked sweep of [`qaxpy2`]'s recurrence
//!   across *all* reduction pairs for one output row — accumulators are
//!   kept in registers for the whole reduction instead of being
//!   re-loaded per pair, which roughly halves the int8 GEMM's memory
//!   traffic. Same integer-exact contract.
//! - [`quantize_pair_i8`]: the f32 → i8 activation quantizer feeding
//!   the paired panel. Its rounding contract is ties-to-even (see
//!   [`quantize_value`]) precisely because that is the one rounding the
//!   f32→i32 convert instructions implement natively; round-half-away
//!   would cost a libm call per element and dominate the int8 forward.

#![allow(unsafe_code)]

/// The instruction set a kernel dispatches to.
///
/// Detected once per process (see [`crate::kernel::isa`]) and
/// overridable through [`crate::kernel::KernelConfig`] or the
/// `SAFECROSS_KERNEL_ISA` environment variable. Forcing
/// [`Isa::Scalar`] on a SIMD-capable host is always safe and changes no
/// f32 result bits; forcing a SIMD variant the host lacks falls back to
/// detection — every dispatcher in this module calls [`Isa::sanitize`]
/// itself, so *any* `Isa` value is safe to pass from safe code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// x86-64 AVX2: 8-lane f32, 16-lane i8→i16 widening integer ops.
    Avx2,
    /// AArch64 NEON: 4-lane f32, 8-lane i8→i16 widening integer ops.
    Neon,
    /// Portable scalar fallback; the reference semantics.
    Scalar,
}

impl Isa {
    /// Detects the best instruction set the running CPU supports.
    pub fn detect() -> Isa {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Isa::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            // NEON is architecturally mandatory on AArch64.
            return Isa::Neon;
        }
        #[allow(unreachable_code)]
        Isa::Scalar
    }

    /// The JSON/env spelling: `"avx2"`, `"neon"`, or `"scalar"`.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Avx2 => "avx2",
            Isa::Neon => "neon",
            Isa::Scalar => "scalar",
        }
    }

    /// Parses the [`Isa::name`] spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Isa> {
        match s.trim().to_ascii_lowercase().as_str() {
            "avx2" => Some(Isa::Avx2),
            "neon" => Some(Isa::Neon),
            "scalar" => Some(Isa::Scalar),
            _ => None,
        }
    }

    /// Whether this is a vector instruction set (false for scalar).
    pub fn is_simd(self) -> bool {
        self != Isa::Scalar
    }

    /// Clamps a requested instruction set to what the host supports:
    /// scalar is always honoured, a supported SIMD request is honoured,
    /// and an unsupported one falls back to [`Isa::detect`].
    pub fn sanitize(self) -> Isa {
        match self {
            Isa::Scalar => Isa::Scalar,
            requested if requested == Isa::detect() => requested,
            _ => Isa::detect(),
        }
    }
}

// ---------------------------------------------------------------------
// f32 axpy: acc[j] += a * b[j]
// ---------------------------------------------------------------------

/// The reference semantics: one rounded multiply then one rounded add
/// per element, ascending `j`.
#[inline]
fn axpy_scalar(acc: &mut [f32], a: f32, b: &[f32]) {
    for (o, &bv) in acc.iter_mut().zip(b) {
        *o += a * bv;
    }
}

/// `acc[j] += a * b[j]` for `j` in `0..acc.len()`, dispatched to `isa`.
///
/// Bit-identical across every [`Isa`]: lanes are independent output
/// elements and the SIMD bodies use separate (non-fused) multiply and
/// add, so each element sees exactly the scalar operation sequence.
///
/// # Panics
///
/// Panics if `b` is shorter than `acc`.
#[inline]
pub fn axpy(isa: Isa, acc: &mut [f32], a: f32, b: &[f32]) {
    assert!(b.len() >= acc.len(), "axpy rhs shorter than accumulator");
    match isa.sanitize() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the `sanitize` above only yields `Isa::Avx2` when
        // `is_x86_feature_detected!("avx2")` holds on this host, so the
        // target feature is present.
        Isa::Avx2 => unsafe { axpy_avx2(acc, a, b) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally mandatory on AArch64, so the
        // target feature is always present when this arm compiles.
        Isa::Neon => unsafe { axpy_neon(acc, a, b) },
        _ => axpy_scalar(acc, a, b),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn axpy_avx2(acc: &mut [f32], a: f32, b: &[f32]) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };
    debug_assert!(b.len() >= acc.len());
    let n = acc.len();
    let av = _mm256_set1_ps(a);
    let mut j = 0;
    while j + 8 <= n {
        // SAFETY: `j + 8 <= acc.len() <= b.len()`, so both unaligned
        // 8-lane loads and the store address lanes `j..j+8`, all inside
        // their respective slices; `loadu`/`storeu` have no alignment
        // requirement.
        unsafe {
            let bv = _mm256_loadu_ps(b.as_ptr().add(j));
            let ov = _mm256_loadu_ps(acc.as_ptr().add(j));
            // mul then add, separately rounded — never fused — to match
            // the scalar `*o += a * bv` bit-for-bit.
            _mm256_storeu_ps(acc.as_mut_ptr().add(j), _mm256_add_ps(ov, _mm256_mul_ps(av, bv)));
        }
        j += 8;
    }
    axpy_scalar(&mut acc[j..], a, &b[j..n]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
fn axpy_neon(acc: &mut [f32], a: f32, b: &[f32]) {
    use std::arch::aarch64::{vaddq_f32, vdupq_n_f32, vld1q_f32, vmulq_f32, vst1q_f32};
    debug_assert!(b.len() >= acc.len());
    let n = acc.len();
    let av = vdupq_n_f32(a);
    let mut j = 0;
    while j + 4 <= n {
        // SAFETY: `j + 4 <= acc.len() <= b.len()`, so the 4-lane loads
        // and store stay inside their slices; `vld1q`/`vst1q` accept
        // unaligned addresses.
        unsafe {
            let bv = vld1q_f32(b.as_ptr().add(j));
            let ov = vld1q_f32(acc.as_ptr().add(j));
            // vmul + vadd, not vfma: fused rounding would diverge from
            // the scalar reference bits.
            vst1q_f32(acc.as_mut_ptr().add(j), vaddq_f32(ov, vmulq_f32(av, bv)));
        }
        j += 4;
    }
    axpy_scalar(&mut acc[j..], a, &b[j..n]);
}

// ---------------------------------------------------------------------
// i8 dot product: Σ a[p]·b[p] in i32
// ---------------------------------------------------------------------

/// Largest reduction depth `k` for which `k · 127 · 127` cannot
/// overflow the `i32` accumulator. Callers assert against it once per
/// GEMM, not per dot product.
pub const QDOT_MAX_K: usize = (i32::MAX / (127 * 127)) as usize;

#[inline]
fn qdot_scalar(a: &[i8], b: &[i8]) -> i32 {
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as i32 * y as i32;
    }
    acc
}

/// `Σ_p a[p] · b[p]` over `i8` operands in an `i32` accumulator,
/// dispatched to `isa`. Integer-exact, so every [`Isa`] returns the
/// same value.
///
/// # Panics
///
/// Panics if the slices have different lengths or exceed
/// [`QDOT_MAX_K`].
#[inline]
pub fn qdot(isa: Isa, a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "qdot operand length mismatch");
    assert!(a.len() <= QDOT_MAX_K, "qdot reduction too deep for i32");
    match isa.sanitize() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the `sanitize` above only yields `Isa::Avx2` when
        // `is_x86_feature_detected!("avx2")` holds on this host, so the
        // target feature is present.
        Isa::Avx2 => unsafe { qdot_avx2(a, b) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally mandatory on AArch64, so the
        // target feature is always present when this arm compiles.
        Isa::Neon => unsafe { qdot_neon(a, b) },
        _ => qdot_scalar(a, b),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn qdot_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi32, _mm256_cvtepi8_epi16, _mm256_madd_epi16,
        _mm256_setzero_si256, _mm256_storeu_si256, _mm_loadu_si128,
    };
    debug_assert_eq!(a.len(), b.len());
    let k = a.len();
    let mut acc = _mm256_setzero_si256();
    let mut p = 0;
    while p + 16 <= k {
        // SAFETY: `p + 16 <= a.len() == b.len()`, so each 16-byte
        // unaligned load reads bytes `p..p+16` inside its slice.
        unsafe {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(p) as *const __m128i));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(p) as *const __m128i));
            // madd: i16×i16 products summed pairwise into i32 lanes.
            // |product| ≤ 127², so even the pairwise sum fits i16-free
            // in i32; the caller's QDOT_MAX_K bound covers the lane
            // accumulation.
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
        }
        p += 16;
    }
    let mut lanes = [0i32; 8];
    // SAFETY: `lanes` is exactly 32 bytes, the size `storeu_si256`
    // writes; an unaligned store to a stack array is always in-bounds.
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc) };
    lanes.iter().sum::<i32>() + qdot_scalar(&a[p..], &b[p..])
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
fn qdot_neon(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::aarch64::{vaddvq_s32, vdupq_n_s32, vld1_s8, vmull_s8, vpadalq_s16};
    debug_assert_eq!(a.len(), b.len());
    let k = a.len();
    let mut acc = vdupq_n_s32(0);
    let mut p = 0;
    while p + 8 <= k {
        // SAFETY: `p + 8 <= a.len() == b.len()`, so each 8-byte load
        // reads bytes `p..p+8` inside its slice; `vld1` accepts
        // unaligned addresses.
        unsafe {
            let va = vld1_s8(a.as_ptr().add(p));
            let vb = vld1_s8(b.as_ptr().add(p));
            // Widening i8×i8→i16 multiply, then pairwise-accumulate the
            // eight i16 products into the four i32 lanes. |product| ≤
            // 127² so the i16 intermediates cannot overflow.
            acc = vpadalq_s16(acc, vmull_s8(va, vb));
        }
        p += 8;
    }
    vaddvq_s32(acc) + qdot_scalar(&a[p..], &b[p..])
}

// ---------------------------------------------------------------------
// quantization: f32 → i8 against a reciprocal scale
// ---------------------------------------------------------------------

/// Quantizes one value against a (positive) reciprocal scale:
/// `round_ties_even(x · inv_scale)` clamped to `[-127, 127]`.
///
/// Ties-to-even is the contract (not round-half-away) because it is the
/// native rounding of AVX2 `cvtps_epi32` and NEON `fcvtns` — one
/// instruction in the vector quantizers below — while half-away lowers
/// to a per-element libm call that dominates the whole int8 forward.
/// Every quantizer in the workspace goes through this definition, so
/// scalar and vector paths produce identical bytes on **every** input:
/// a NaN product quantizes to `0` (the NaN-propagating clamp feeds
/// Rust's saturating `as i8`, which maps NaN to zero) and out-of-range
/// magnitudes — `±inf` included — saturate to `±127`. The vector paths
/// reproduce exactly those semantics by zeroing NaN lanes and clamping
/// in f32 before their integer converts.
#[inline]
pub fn quantize_value(x: f32, inv_scale: f32) -> i8 {
    (x * inv_scale).round_ties_even().clamp(-127.0, 127.0) as i8
}

/// The reference semantics of [`quantize_pair_i8`]: interleave the
/// quantized values of two rows column-by-column (`out[2j]` from
/// `row0`, `out[2j + 1]` from `row1`, or `0` when there is no partner
/// row).
#[inline]
fn quantize_pair_scalar(row0: &[f32], row1: Option<&[f32]>, inv: &[f32], out: &mut [i8]) {
    match row1 {
        Some(row1) => {
            for (j, ((&v0, &v1), &iv)) in row0.iter().zip(row1).zip(inv).enumerate() {
                out[2 * j] = quantize_value(v0, iv);
                out[2 * j + 1] = quantize_value(v1, iv);
            }
        }
        None => {
            for (j, (&v0, &iv)) in row0.iter().zip(inv).enumerate() {
                out[2 * j] = quantize_value(v0, iv);
                out[2 * j + 1] = 0;
            }
        }
    }
}

/// Quantizes two f32 rows against per-column reciprocal scales into a
/// pair-interleaved `i8` panel row: `out[2j] = q(row0[j] · inv[j])`,
/// `out[2j + 1] = q(row1[j] · inv[j])` (or `0` with no partner row).
/// Dispatched to `isa`; bit-identical to the scalar path on every
/// input, non-finite values included (see [`quantize_value`] for the
/// rounding and saturation contract).
///
/// # Panics
///
/// Panics if `inv` or `row1` disagree with `row0`'s length, or `out` is
/// not exactly twice it.
#[inline]
pub fn quantize_pair_i8(isa: Isa, row0: &[f32], row1: Option<&[f32]>, inv: &[f32], out: &mut [i8]) {
    assert_eq!(inv.len(), row0.len(), "one reciprocal scale per column");
    assert_eq!(out.len(), 2 * row0.len(), "paired output is twice the row");
    if let Some(row1) = row1 {
        assert_eq!(row1.len(), row0.len(), "partner row length mismatch");
    }
    match isa.sanitize() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the `sanitize` above only yields `Isa::Avx2` when
        // `is_x86_feature_detected!("avx2")` holds on this host, so the
        // target feature is present.
        Isa::Avx2 => unsafe { quantize_pair_avx2(row0, row1, inv, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally mandatory on AArch64, so the
        // target feature is always present when this arm compiles.
        Isa::Neon => unsafe { quantize_pair_neon(row0, row1, inv, out) },
        _ => quantize_pair_scalar(row0, row1, inv, out),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn quantize_pair_avx2(row0: &[f32], row1: Option<&[f32]>, inv: &[f32], out: &mut [i8]) {
    use std::arch::x86_64::{
        __m128i, _mm256_and_ps, _mm256_castsi256_si128, _mm256_cmp_ps, _mm256_cvtps_epi32,
        _mm256_extracti128_si256, _mm256_loadu_ps, _mm256_max_ps, _mm256_min_ps, _mm256_mul_ps,
        _mm256_packs_epi32, _mm256_permute4x64_epi64, _mm256_set1_ps, _mm256_setzero_si256,
        _mm_packs_epi16, _mm_storeu_si128, _mm_unpackhi_epi16, _mm_unpacklo_epi16, _CMP_ORD_Q,
    };
    let n = row0.len();
    let lo_bound = _mm256_set1_ps(-127.0);
    let hi_bound = _mm256_set1_ps(127.0);
    let mut j = 0;
    while j + 8 <= n {
        // SAFETY: `j + 8 <= n` bounds every 8-lane load inside `row0`,
        // `row1` (same length, asserted by the caller) and `inv`; the
        // 16-byte store covers `out[2j..2j+16]`, inside `out`'s
        // `2n`-byte extent. Before the convert, NaN lanes are zeroed
        // (the ordered self-compare mask is 0 exactly on NaN) and the
        // products clamped to `[-127.0, 127.0]` — clamping to an
        // integer bound before a ties-to-even convert equals the scalar
        // round-then-clamp, and NaN→0 / ±inf→±127 match the scalar
        // NaN-propagating clamp-and-saturating-cast, so the two paths
        // agree on *all* inputs, not just finite ones. `cvtps_epi32`
        // rounds ties-to-even — the scalar contract — and the `packs`
        // saturations cannot alter values already in `[-127, 127]`.
        unsafe {
            let vi = _mm256_loadu_ps(inv.as_ptr().add(j));
            let quant = |row: &[f32]| {
                let p = _mm256_mul_ps(_mm256_loadu_ps(row.as_ptr().add(j)), vi);
                let p = _mm256_and_ps(p, _mm256_cmp_ps::<_CMP_ORD_Q>(p, p));
                _mm256_cvtps_epi32(_mm256_min_ps(_mm256_max_ps(p, lo_bound), hi_bound))
            };
            let r0 = quant(row0);
            let r1 = match row1 {
                Some(row1) => quant(row1),
                None => _mm256_setzero_si256(),
            };
            // packs + permute: [q0 j0..7 | q1 j0..7] as ordered i16s.
            let p = _mm256_permute4x64_epi64(_mm256_packs_epi32(r0, r1), 0b1101_1000);
            let q0 = _mm256_castsi256_si128(p);
            let q1 = _mm256_extracti128_si256(p, 1);
            // Interleave per column, then narrow: bytes land as
            // (q0[j'], q1[j']) pairs in ascending j'.
            let il_lo = _mm_unpacklo_epi16(q0, q1);
            let il_hi = _mm_unpackhi_epi16(q0, q1);
            _mm_storeu_si128(
                out.as_mut_ptr().add(2 * j) as *mut __m128i,
                _mm_packs_epi16(il_lo, il_hi),
            );
        }
        j += 8;
    }
    let row1_tail = row1.map(|r| &r[j..]);
    quantize_pair_scalar(&row0[j..], row1_tail, &inv[j..], &mut out[2 * j..]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
fn quantize_pair_neon(row0: &[f32], row1: Option<&[f32]>, inv: &[f32], out: &mut [i8]) {
    use std::arch::aarch64::{
        vandq_u32, vceqq_f32, vcombine_s16, vcombine_s8, vcvtnq_s32_f32, vdupq_n_f32, vdupq_n_s16,
        vld1q_f32, vmaxq_f32, vminq_f32, vmulq_f32, vqmovn_s16, vqmovn_s32, vreinterpretq_f32_u32,
        vreinterpretq_u32_f32, vst1q_s8, vzipq_s16,
    };
    let n = row0.len();
    // SAFETY: `vdupq_n_f32` is a pure register op.
    let (lo_bound, hi_bound) = unsafe { (vdupq_n_f32(-127.0), vdupq_n_f32(127.0)) };
    let mut j = 0;
    while j + 8 <= n {
        // SAFETY: `j + 8 <= n` bounds the two 4-lane loads per row and
        // per `inv`; the 16-byte store covers `out[2j..2j+16]`, inside
        // `out`'s `2n`-byte extent. Before the convert, NaN lanes are
        // zeroed (the self-equality mask is 0 exactly on NaN) and the
        // products clamped to `[-127.0, 127.0]` — clamping to an
        // integer bound before a ties-to-even convert equals the scalar
        // round-then-clamp, and NaN→0 / ±inf→±127 match the scalar
        // NaN-propagating clamp-and-saturating-cast, so the two paths
        // agree on *all* inputs, not just finite ones. `vcvtnq_s32_f32`
        // rounds ties-to-even — the scalar contract — and the `vqmovn`
        // saturating narrows cannot alter values already in
        // `[-127, 127]`.
        unsafe {
            let i0 = vld1q_f32(inv.as_ptr().add(j));
            let i1 = vld1q_f32(inv.as_ptr().add(j + 4));
            let quant4 = |row: &[f32], off: usize, vi| {
                let p = vmulq_f32(vld1q_f32(row.as_ptr().add(off)), vi);
                let p = vreinterpretq_f32_u32(vandq_u32(vreinterpretq_u32_f32(p), vceqq_f32(p, p)));
                vcvtnq_s32_f32(vminq_f32(vmaxq_f32(p, lo_bound), hi_bound))
            };
            let quant8 = |row: &[f32]| {
                vcombine_s16(vqmovn_s32(quant4(row, j, i0)), vqmovn_s32(quant4(row, j + 4, i1)))
            };
            let q0 = quant8(row0);
            let q1 = match row1 {
                Some(row1) => quant8(row1),
                None => vdupq_n_s16(0),
            };
            let z = vzipq_s16(q0, q1);
            vst1q_s8(
                out.as_mut_ptr().add(2 * j),
                vcombine_s8(vqmovn_s16(z.0), vqmovn_s16(z.1)),
            );
        }
        j += 8;
    }
    let row1_tail = row1.map(|r| &r[j..]);
    quantize_pair_scalar(&row0[j..], row1_tail, &inv[j..], &mut out[2 * j..]);
}

// ---------------------------------------------------------------------
// paired i8 axpy: acc[j] += a0·b[2j] + a1·b[2j+1]
// ---------------------------------------------------------------------

/// The reference semantics: two widening multiplies and two adds per
/// `i32` accumulator lane, ascending `j`. Order is irrelevant — integer
/// arithmetic is exact — but this loop *is* the contract.
#[inline]
fn qaxpy2_scalar(acc: &mut [i32], a0: i8, a1: i8, b: &[i8]) {
    let (a0, a1) = (a0 as i32, a1 as i32);
    for (j, o) in acc.iter_mut().enumerate() {
        *o += a0 * b[2 * j] as i32 + a1 * b[2 * j + 1] as i32;
    }
}

/// `acc[j] += a0 · b[2j] + a1 · b[2j + 1]` for `j` in `0..acc.len()`,
/// dispatched to `isa` — the paired-panel int8 GEMM inner loop (see
/// [`crate::qtensor::qgemm_paired_into`]). `b` holds two reduction rows
/// interleaved column-by-column, so one 16-byte vector load feeds eight
/// `i32` lanes with both products already summed pairwise.
/// Integer-exact: every [`Isa`] produces identical accumulators.
///
/// # Panics
///
/// Panics if `b` is shorter than `2 · acc.len()`.
#[inline]
pub fn qaxpy2(isa: Isa, acc: &mut [i32], a0: i8, a1: i8, b: &[i8]) {
    assert!(b.len() >= 2 * acc.len(), "qaxpy2 panel shorter than 2x accumulator");
    match isa.sanitize() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the `sanitize` above only yields `Isa::Avx2` when
        // `is_x86_feature_detected!("avx2")` holds on this host, so the
        // target feature is present.
        Isa::Avx2 => unsafe { qaxpy2_avx2(acc, a0, a1, b) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally mandatory on AArch64, so the
        // target feature is always present when this arm compiles.
        Isa::Neon => unsafe { qaxpy2_neon(acc, a0, a1, b) },
        _ => qaxpy2_scalar(acc, a0, a1, b),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn qaxpy2_avx2(acc: &mut [i32], a0: i8, a1: i8, b: &[i8]) {
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi32, _mm256_cvtepi8_epi16, _mm256_loadu_si256,
        _mm256_madd_epi16, _mm256_set1_epi32, _mm256_storeu_si256, _mm_loadu_si128,
    };
    debug_assert!(b.len() >= 2 * acc.len());
    let n = acc.len();
    // Every i32 lane of `va` holds the i16 pair (a0, a1), matching the
    // (b[2j], b[2j+1]) pairs `cvtepi8_epi16` produces from the panel.
    let va = _mm256_set1_epi32(((a1 as i16 as u16 as i32) << 16) | (a0 as i16 as u16 as i32));
    let mut j = 0;
    while j + 8 <= n {
        // SAFETY: `j + 8 <= acc.len()` and `b.len() >= 2 * acc.len()`,
        // so the 16-byte panel load covers bytes `2j..2j+16` and the
        // 32-byte accumulator load/store covers lanes `j..j+8`, all
        // inside their slices; the unaligned variants are used
        // throughout.
        unsafe {
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(2 * j) as *const __m128i));
            // madd: each i32 lane gets a0·b[2j'] + a1·b[2j'+1]. The i16
            // products are at most 127² so even their pairwise sum is
            // exact in i32.
            let prod = _mm256_madd_epi16(vb, va);
            let ov = _mm256_loadu_si256(acc.as_ptr().add(j) as *const __m256i);
            _mm256_storeu_si256(acc.as_mut_ptr().add(j) as *mut __m256i, _mm256_add_epi32(ov, prod));
        }
        j += 8;
    }
    qaxpy2_scalar(&mut acc[j..], a0, a1, &b[2 * j..]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
fn qaxpy2_neon(acc: &mut [i32], a0: i8, a1: i8, b: &[i8]) {
    use std::arch::aarch64::{
        vdup_n_s16, vget_high_s8, vget_low_s8, vld1q_s32, vld1q_s8, vmull_s8, vpadalq_s16,
        vreinterpret_s8_s16, vst1q_s32,
    };
    debug_assert!(b.len() >= 2 * acc.len());
    let n = acc.len();
    // An i8x8 of repeated (a0, a1) pairs, aligned with the panel's
    // column-pair interleaving.
    // SAFETY: `vdup`/`vreinterpret` are pure register ops; no memory is
    // touched.
    let va = unsafe { vreinterpret_s8_s16(vdup_n_s16(((a1 as i16) << 8) | (a0 as u8 as i16))) };
    let mut j = 0;
    while j + 8 <= n {
        // SAFETY: `j + 8 <= acc.len()` and `b.len() >= 2 * acc.len()`,
        // so the 16-byte panel load covers bytes `2j..2j+16` and the two
        // 4-lane i32 load/store pairs cover lanes `j..j+8`, all inside
        // their slices; NEON loads/stores accept unaligned addresses.
        unsafe {
            let vb = vld1q_s8(b.as_ptr().add(2 * j));
            // Widening i8×i8→i16 products, then pairwise-accumulate
            // adjacent i16s into i32 lanes: exactly a0·b[2j'] +
            // a1·b[2j'+1] per lane. |product| ≤ 127², so the i16
            // intermediates are exact.
            let lo = vmull_s8(va, vget_low_s8(vb));
            let hi = vmull_s8(va, vget_high_s8(vb));
            let o0 = vld1q_s32(acc.as_ptr().add(j));
            let o1 = vld1q_s32(acc.as_ptr().add(j + 4));
            vst1q_s32(acc.as_mut_ptr().add(j), vpadalq_s16(o0, lo));
            vst1q_s32(acc.as_mut_ptr().add(j + 4), vpadalq_s16(o1, hi));
        }
        j += 8;
    }
    qaxpy2_scalar(&mut acc[j..], a0, a1, &b[2 * j..]);
}

// ---------------------------------------------------------------------
// paired-panel GEMM row: one output row against the whole panel
// ---------------------------------------------------------------------

/// Splits the reduction vector into its even/odd panel operands for
/// pair `t`: the phantom partner of an odd-length row is zero.
#[inline]
fn arow_pair(arow: &[i8], t: usize) -> (i8, i8) {
    let a1 = if 2 * t + 1 < arow.len() { arow[2 * t + 1] } else { 0 };
    (arow[2 * t], a1)
}

/// The reference semantics of [`qgemm_row`]: a [`qaxpy2`]-shaped sweep
/// per reduction pair, ascending `t`. Integer-exact in any order.
#[inline]
fn qgemm_row_scalar(arow: &[i8], panel: &[i8], n: usize, j0: usize, acc: &mut [i32]) {
    let len = acc.len();
    for t in 0..arow.len().div_ceil(2) {
        let (a0, a1) = arow_pair(arow, t);
        qaxpy2_scalar(acc, a0, a1, &panel[(t * n + j0) * 2..(t * n + j0 + len) * 2]);
    }
}

/// Accumulates one output row of the pair-interleaved int8 GEMM:
/// `acc[d] += Σ_t a[2t]·panel[(t·n + j0 + d)·2] + a[2t+1]·panel[(t·n +
/// j0 + d)·2 + 1]` over every reduction pair `t` (phantom `a[k] = 0`
/// for odd `k = arow.len()`). Unlike a per-pair [`qaxpy2`] sweep, the
/// vector paths block columns so the accumulators stay in registers
/// across the *entire* reduction — no per-pair load/add/store traffic.
/// Integer-exact: every [`Isa`] and column split produce identical
/// accumulators.
///
/// # Panics
///
/// Panics if `panel` is not exactly `2 · ⌈arow.len()/2⌉ · n` bytes or
/// the column window `j0..j0 + acc.len()` overruns `n`.
#[inline]
pub fn qgemm_row(isa: Isa, arow: &[i8], panel: &[i8], n: usize, j0: usize, acc: &mut [i32]) {
    assert!(j0 + acc.len() <= n, "qgemm_row column window exceeds panel width");
    assert_eq!(
        panel.len(),
        2 * arow.len().div_ceil(2) * n,
        "qgemm_row panel extent mismatch"
    );
    match isa.sanitize() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the `sanitize` above only yields `Isa::Avx2` when
        // `is_x86_feature_detected!("avx2")` holds on this host, so the
        // target feature is present.
        Isa::Avx2 => unsafe { qgemm_row_avx2(arow, panel, n, j0, acc) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally mandatory on AArch64, so the
        // target feature is always present when this arm compiles.
        Isa::Neon => unsafe { qgemm_row_neon(arow, panel, n, j0, acc) },
        _ => qgemm_row_scalar(arow, panel, n, j0, acc),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn qgemm_row_avx2(arow: &[i8], panel: &[i8], n: usize, j0: usize, acc: &mut [i32]) {
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi32, _mm256_cvtepi8_epi16, _mm256_loadu_si256,
        _mm256_madd_epi16, _mm256_set1_epi32, _mm256_storeu_si256, _mm_loadu_si128,
    };
    debug_assert!(j0 + acc.len() <= n);
    debug_assert_eq!(panel.len(), 2 * arow.len().div_ceil(2) * n);
    let k2 = arow.len().div_ceil(2);
    let len = acc.len();
    let pair_vec = |t: usize| {
        let (a0, a1) = arow_pair(arow, t);
        // Every i32 lane holds the i16 pair (a0, a1), matching the
        // (b[2j], b[2j+1]) pairs `cvtepi8_epi16` produces. Safe to call
        // here: the enclosing fn already carries the avx2 feature.
        _mm256_set1_epi32(((a1 as i16 as u16 as i32) << 16) | (a0 as i16 as u16 as i32))
    };
    let mut j = 0;
    // 32-column block: four i32x8 accumulators live in registers for
    // the whole reduction, so the only per-pair memory traffic is the
    // 64 panel bytes actually being multiplied.
    while j + 32 <= len {
        // SAFETY: `j + 32 <= acc.len()` bounds the four 8-lane
        // accumulator loads/stores; for every pair `t < k2` the four
        // 16-byte panel loads cover bytes `(t·n + j0 + j)·2 ..
        // (t·n + j0 + j + 32)·2`, inside the panel because
        // `j0 + j + 32 <= n` and the panel holds `2·k2·n` bytes. The
        // i16 `madd` products are at most 127² so each pairwise i32 sum
        // is exact. Unaligned variants are used throughout.
        unsafe {
            let base = acc.as_mut_ptr().add(j);
            let mut s0 = _mm256_loadu_si256(base as *const __m256i);
            let mut s1 = _mm256_loadu_si256(base.add(8) as *const __m256i);
            let mut s2 = _mm256_loadu_si256(base.add(16) as *const __m256i);
            let mut s3 = _mm256_loadu_si256(base.add(24) as *const __m256i);
            for t in 0..k2 {
                let va = pair_vec(t);
                let b = panel.as_ptr().add((t * n + j0 + j) * 2);
                let lane = |off: usize| {
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(b.add(off) as *const __m128i))
                };
                s0 = _mm256_add_epi32(s0, _mm256_madd_epi16(lane(0), va));
                s1 = _mm256_add_epi32(s1, _mm256_madd_epi16(lane(16), va));
                s2 = _mm256_add_epi32(s2, _mm256_madd_epi16(lane(32), va));
                s3 = _mm256_add_epi32(s3, _mm256_madd_epi16(lane(48), va));
            }
            _mm256_storeu_si256(base as *mut __m256i, s0);
            _mm256_storeu_si256(base.add(8) as *mut __m256i, s1);
            _mm256_storeu_si256(base.add(16) as *mut __m256i, s2);
            _mm256_storeu_si256(base.add(24) as *mut __m256i, s3);
        }
        j += 32;
    }
    // 8-column block for mid-size remainders.
    while j + 8 <= len {
        // SAFETY: same bounds argument with a single 8-lane accumulator
        // and one 16-byte panel load per pair (`j0 + j + 8 <= n`).
        unsafe {
            let base = acc.as_mut_ptr().add(j);
            let mut s0 = _mm256_loadu_si256(base as *const __m256i);
            for t in 0..k2 {
                let va = pair_vec(t);
                let b = panel.as_ptr().add((t * n + j0 + j) * 2);
                let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b as *const __m128i));
                s0 = _mm256_add_epi32(s0, _mm256_madd_epi16(vb, va));
            }
            _mm256_storeu_si256(base as *mut __m256i, s0);
        }
        j += 8;
    }
    if j < len {
        for t in 0..k2 {
            let (a0, a1) = arow_pair(arow, t);
            qaxpy2_scalar(&mut acc[j..], a0, a1, &panel[(t * n + j0 + j) * 2..(t * n + j0 + len) * 2]);
        }
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
fn qgemm_row_neon(arow: &[i8], panel: &[i8], n: usize, j0: usize, acc: &mut [i32]) {
    use std::arch::aarch64::{
        vdup_n_s16, vget_high_s8, vget_low_s8, vld1q_s32, vld1q_s8, vmull_s8, vpadalq_s16,
        vreinterpret_s8_s16, vst1q_s32,
    };
    debug_assert!(j0 + acc.len() <= n);
    debug_assert_eq!(panel.len(), 2 * arow.len().div_ceil(2) * n);
    let k2 = arow.len().div_ceil(2);
    let len = acc.len();
    let pair_vec = |t: usize| {
        let (a0, a1) = arow_pair(arow, t);
        // An i8x8 of repeated (a0, a1) pairs, aligned with the panel's
        // column-pair interleaving.
        // SAFETY: pure register ops.
        unsafe { vreinterpret_s8_s16(vdup_n_s16(((a1 as i16) << 8) | (a0 as u8 as i16))) }
    };
    let mut j = 0;
    // 16-column block: four i32x4 accumulators stay in registers across
    // the whole reduction.
    while j + 16 <= len {
        // SAFETY: `j + 16 <= acc.len()` bounds the four 4-lane
        // accumulator loads/stores; for every pair `t < k2` the two
        // 16-byte panel loads cover bytes `(t·n + j0 + j)·2 ..
        // (t·n + j0 + j + 16)·2`, inside the panel because
        // `j0 + j + 16 <= n` and the panel holds `2·k2·n` bytes. The
        // widening i8 multiplies and pairwise i16→i32 accumulations are
        // exact (|product| ≤ 127²).
        unsafe {
            let base = acc.as_mut_ptr().add(j);
            let mut s0 = vld1q_s32(base);
            let mut s1 = vld1q_s32(base.add(4));
            let mut s2 = vld1q_s32(base.add(8));
            let mut s3 = vld1q_s32(base.add(12));
            for t in 0..k2 {
                let va = pair_vec(t);
                let b = panel.as_ptr().add((t * n + j0 + j) * 2);
                let vb0 = vld1q_s8(b);
                let vb1 = vld1q_s8(b.add(16));
                s0 = vpadalq_s16(s0, vmull_s8(va, vget_low_s8(vb0)));
                s1 = vpadalq_s16(s1, vmull_s8(va, vget_high_s8(vb0)));
                s2 = vpadalq_s16(s2, vmull_s8(va, vget_low_s8(vb1)));
                s3 = vpadalq_s16(s3, vmull_s8(va, vget_high_s8(vb1)));
            }
            vst1q_s32(base, s0);
            vst1q_s32(base.add(4), s1);
            vst1q_s32(base.add(8), s2);
            vst1q_s32(base.add(12), s3);
        }
        j += 16;
    }
    // 8-column block for mid-size remainders.
    while j + 8 <= len {
        // SAFETY: same bounds argument with two 4-lane accumulators and
        // one 16-byte panel load per pair (`j0 + j + 8 <= n`).
        unsafe {
            let base = acc.as_mut_ptr().add(j);
            let mut s0 = vld1q_s32(base);
            let mut s1 = vld1q_s32(base.add(4));
            for t in 0..k2 {
                let va = pair_vec(t);
                let vb = vld1q_s8(panel.as_ptr().add((t * n + j0 + j) * 2));
                s0 = vpadalq_s16(s0, vmull_s8(va, vget_low_s8(vb)));
                s1 = vpadalq_s16(s1, vmull_s8(va, vget_high_s8(vb)));
            }
            vst1q_s32(base, s0);
            vst1q_s32(base.add(4), s1);
        }
        j += 8;
    }
    if j < len {
        for t in 0..k2 {
            let (a0, a1) = arow_pair(arow, t);
            qaxpy2_scalar(&mut acc[j..], a0, a1, &panel[(t * n + j0 + j) * 2..(t * n + j0 + len) * 2]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_names_roundtrip() {
        for isa in [Isa::Avx2, Isa::Neon, Isa::Scalar] {
            assert_eq!(Isa::parse(isa.name()), Some(isa));
        }
        assert_eq!(Isa::parse("AVX2"), Some(Isa::Avx2));
        assert_eq!(Isa::parse("sse9"), None);
        assert!(!Isa::Scalar.is_simd());
    }

    #[test]
    fn sanitize_never_yields_unsupported_simd() {
        for requested in [Isa::Avx2, Isa::Neon, Isa::Scalar] {
            let got = requested.sanitize();
            assert!(got == Isa::Scalar || got == Isa::detect());
        }
        assert_eq!(Isa::Scalar.sanitize(), Isa::Scalar);
    }

    #[test]
    fn axpy_matches_scalar_bits_on_detected_isa() {
        let isa = Isa::detect();
        // Lengths straddling every lane boundary, including empty.
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100] {
            let b: Vec<f32> = (0..len).map(|i| (i as f32).sin() * 3.0).collect();
            let a = 0.7391f32;
            let mut expect: Vec<f32> = (0..len).map(|i| (i as f32).cos()).collect();
            let mut got = expect.clone();
            axpy_scalar(&mut expect, a, &b);
            axpy(isa, &mut got, a, &b);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len={len} isa={:?}",
                isa
            );
        }
    }

    #[test]
    fn qdot_matches_scalar_on_detected_isa() {
        let isa = Isa::detect();
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 33, 127, 324] {
            let a: Vec<i8> = (0..len).map(|i| ((i * 37 + 11) % 255) as i8).collect();
            let b: Vec<i8> = (0..len).map(|i| ((i * 91 + 3) % 255) as i8).collect();
            assert_eq!(qdot(isa, &a, &b), qdot_scalar(&a, &b), "len={len}");
        }
    }

    #[test]
    fn qdot_extremes_stay_exact() {
        let a = vec![-127i8; 1024];
        let b = vec![-127i8; 1024];
        assert_eq!(qdot(Isa::detect(), &a, &b), 1024 * 127 * 127);
        let c = vec![127i8; 1024];
        assert_eq!(qdot(Isa::detect(), &a, &c), -1024 * 127 * 127);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn qdot_length_mismatch_panics() {
        qdot(Isa::Scalar, &[1], &[1, 2]);
    }

    #[test]
    fn qaxpy2_matches_scalar_on_detected_isa() {
        let isa = Isa::detect();
        for len in [0usize, 1, 5, 7, 8, 9, 15, 16, 17, 33, 100] {
            let b: Vec<i8> = (0..2 * len).map(|i| ((i * 53 + 17) % 255) as i8).collect();
            let mut expect: Vec<i32> = (0..len).map(|i| i as i32 * 1000 - 7).collect();
            let mut got = expect.clone();
            qaxpy2_scalar(&mut expect, -42, 113, &b);
            qaxpy2(isa, &mut got, -42, 113, &b);
            assert_eq!(got, expect, "len={len} isa={isa:?}");
        }
    }

    #[test]
    fn qaxpy2_extremes_stay_exact() {
        let b = vec![-127i8; 64];
        let mut acc = vec![0i32; 32];
        qaxpy2(Isa::detect(), &mut acc, -127, 127, &b);
        // Each lane: (-127)(-127) + (127)(-127) = 0.
        assert!(acc.iter().all(|&v| v == 0));
        qaxpy2(Isa::detect(), &mut acc, -127, -127, &b);
        assert!(acc.iter().all(|&v| v == 2 * 127 * 127));
    }

    #[test]
    #[should_panic(expected = "panel shorter")]
    fn qaxpy2_short_panel_panics() {
        qaxpy2(Isa::Scalar, &mut [0, 0], -1, 1, &[1, 2, 3]);
    }

    #[test]
    fn quantize_value_rounds_ties_to_even() {
        assert_eq!(quantize_value(2.5, 1.0), 2);
        assert_eq!(quantize_value(3.5, 1.0), 4);
        assert_eq!(quantize_value(-2.5, 1.0), -2);
        assert_eq!(quantize_value(-3.5, 1.0), -4);
        assert_eq!(quantize_value(400.0, 1.0), 127);
        assert_eq!(quantize_value(-400.0, 1.0), -127);
        assert_eq!(quantize_value(0.0, 1.0), 0);
    }

    #[test]
    fn quantize_pair_matches_scalar_on_detected_isa() {
        let isa = Isa::detect();
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 40, 100] {
            let row0: Vec<f32> = (0..n)
                .map(|j| (j as f32 * 0.37 - 5.0) * if j % 3 == 0 { -1.0 } else { 1.0 })
                .collect();
            let row1: Vec<f32> = (0..n).map(|j| 130.0 - j as f32 * 1.9).collect();
            let inv: Vec<f32> = (0..n).map(|j| 0.1 + j as f32 * 0.45).collect();
            for partner in [true, false] {
                let row1 = partner.then_some(row1.as_slice());
                let mut expect = vec![0i8; 2 * n];
                let mut got = vec![99i8; 2 * n];
                quantize_pair_scalar(&row0, row1, &inv, &mut expect);
                quantize_pair_i8(isa, &row0, row1, &inv, &mut got);
                assert_eq!(expect, got, "n={n} partner={partner} isa={isa:?}");
            }
        }
    }

    #[test]
    fn quantize_pair_handles_ties_and_saturation() {
        // Exact .5 ties round to even on every ISA, and magnitudes
        // beyond the i8 range clamp to ±127.
        let row0 = [2.5f32, 3.5, -2.5, -3.5, 1_000.0, -1_000.0, 0.5, -0.5, 126.5];
        let inv = [1.0f32; 9];
        let mut out = [0i8; 18];
        quantize_pair_i8(Isa::detect(), &row0, None, &inv, &mut out);
        let got: Vec<i8> = out.iter().step_by(2).copied().collect();
        assert_eq!(got, vec![2, 4, -2, -4, 127, -127, 0, 0, 126]);
        assert!(out.iter().skip(1).step_by(2).all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "paired output is twice the row")]
    fn quantize_pair_bad_output_len_panics() {
        quantize_pair_i8(Isa::Scalar, &[1.0, 2.0], None, &[1.0, 1.0], &mut [0i8; 3]);
    }

    #[test]
    fn qgemm_row_matches_scalar_on_detected_isa() {
        let isa = Isa::detect();
        // Widths crossing every block boundary (32/16/8 + scalar tail)
        // and both parities of k (phantom odd row).
        for &(k, n) in &[(1usize, 1usize), (3, 7), (27, 33), (27, 100), (9, 40), (4, 70), (5, 129)] {
            let k2 = k.div_ceil(2);
            let arow: Vec<i8> =
                (0..k).map(|p| (((p * 37 + 11) % 255) as i32 - 127).clamp(-127, 127) as i8).collect();
            let panel: Vec<i8> = (0..2 * k2 * n)
                .map(|i| (((i * 73 + 5) % 255) as i32 - 127).clamp(-127, 127) as i8)
                .collect();
            for j0 in [0usize, 1, n / 2] {
                let len = n - j0;
                let mut expect = vec![7i32; len];
                let mut got = expect.clone();
                qgemm_row_scalar(&arow, &panel, n, j0, &mut expect);
                qgemm_row(isa, &arow, &panel, n, j0, &mut got);
                assert_eq!(expect, got, "k={k} n={n} j0={j0} isa={isa:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "panel extent mismatch")]
    fn qgemm_row_bad_panel_panics() {
        qgemm_row(Isa::Scalar, &[1, 2], &[0i8; 7], 2, 0, &mut [0i32; 2]);
    }

    #[test]
    fn unsupported_isa_requests_dispatch_safely() {
        // `Isa` is freely constructible (any `parse` spelling), so every
        // dispatcher sanitizes for itself: at most one of these two is
        // the host's ISA, and requesting the other must still execute on
        // a supported path with identical results — never reach a
        // `#[target_feature]` body the CPU lacks.
        for isa in [Isa::Avx2, Isa::Neon] {
            let b: Vec<f32> = (0..33).map(|i| i as f32 * 0.25 - 3.0).collect();
            let mut expect: Vec<f32> = (0..33).map(|i| (i as f32).sqrt()).collect();
            let mut got = expect.clone();
            axpy_scalar(&mut expect, 1.5, &b);
            axpy(isa, &mut got, 1.5, &b);
            assert_eq!(expect, got, "axpy isa={isa:?}");

            let qa: Vec<i8> = (0..33).map(|i| (i - 16) as i8).collect();
            let qb: Vec<i8> = (0..33i32).map(|i| (i * 7 % 100 - 50) as i8).collect();
            assert_eq!(qdot(isa, &qa, &qb), qdot_scalar(&qa, &qb), "qdot isa={isa:?}");

            let panel: Vec<i8> = (0..66i32).map(|i| (i % 40 - 20) as i8).collect();
            let mut qe = vec![3i32; 33];
            let mut qg = qe.clone();
            qaxpy2_scalar(&mut qe, 5, -9, &panel);
            qaxpy2(isa, &mut qg, 5, -9, &panel);
            assert_eq!(qe, qg, "qaxpy2 isa={isa:?}");

            let (k, n) = (5usize, 33usize);
            let arow: Vec<i8> = (0..k).map(|p| (p as i32 * 11 - 20) as i8).collect();
            let gp: Vec<i8> =
                (0..2 * k.div_ceil(2) * n).map(|i| (i as i32 % 50 - 25) as i8).collect();
            let mut ge = vec![1i32; n];
            let mut gg = ge.clone();
            qgemm_row_scalar(&arow, &gp, n, 0, &mut ge);
            qgemm_row(isa, &arow, &gp, n, 0, &mut gg);
            assert_eq!(ge, gg, "qgemm_row isa={isa:?}");

            let inv = vec![0.5f32; 17];
            let row: Vec<f32> = (0..17).map(|i| i as f32 * 3.3 - 20.0).collect();
            let mut pe = vec![0i8; 34];
            let mut pg = vec![99i8; 34];
            quantize_pair_scalar(&row, None, &inv, &mut pe);
            quantize_pair_i8(isa, &row, None, &inv, &mut pg);
            assert_eq!(pe, pg, "quantize_pair isa={isa:?}");
        }
    }

    #[test]
    fn quantize_pair_nonfinite_matches_scalar() {
        // NaN, ±inf, and out-of-i32-range products must quantize
        // identically on every ISA: NaN → 0, saturation → ±127. A raw
        // vector convert would yield INT_MIN (→ -127) for all of these,
        // so this pins the pre-convert zeroing/clamping in the SIMD
        // paths against the scalar reference.
        let isa = Isa::detect();
        let row0 = [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            1e30,
            -1e30,
            f32::MAX,
            f32::MIN,
            0.0,
            -0.0,
            f32::NAN,
            64.5,
            -64.5,
            f32::INFINITY,
            1.0,
            -1.0,
            200.0,
        ];
        let row1: Vec<f32> = row0.iter().rev().copied().collect();
        let mut inv = vec![1.0f32; row0.len()];
        // inf · 0 = NaN on the product side, not just the input side.
        inv[12] = 0.0;
        for partner in [true, false] {
            let row1 = partner.then_some(row1.as_slice());
            let mut expect = vec![0i8; 2 * row0.len()];
            let mut got = vec![99i8; 2 * row0.len()];
            quantize_pair_scalar(&row0, row1, &inv, &mut expect);
            quantize_pair_i8(isa, &row0, row1, &inv, &mut got);
            assert_eq!(expect, got, "partner={partner} isa={isa:?}");
        }
        // The scalar contract on the extremes, pinned explicitly.
        assert_eq!(quantize_value(f32::NAN, 1.0), 0);
        assert_eq!(quantize_value(f32::INFINITY, 1.0), 127);
        assert_eq!(quantize_value(f32::NEG_INFINITY, 1.0), -127);
    }
}
