//! # safecross-tensor
//!
//! A small, dependency-light N-dimensional `f32` tensor library that serves
//! as the numeric substrate for the SafeCross reproduction. It provides
//! exactly the operations the neural-network crate ([`safecross-nn`]) needs:
//! row-major dense storage, broadcast-free elementwise arithmetic, 2-D
//! matrix multiplication, axis reductions, and the `im2col`/`vol2col`
//! lowering used by 2-D and 3-D convolutions.
//!
//! The paper's original system runs on PyTorch/CUDA; this crate is the
//! CPU substitution documented in `DESIGN.md`. It favours clarity and
//! testability over raw throughput, while keeping the hot paths (matmul,
//! im2col) cache-friendly enough to train the miniature video classifiers
//! on a laptop-class CPU.
//!
//! ## Example
//!
//! ```
//! use safecross_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```
//!
//! [`safecross-nn`]: ../safecross_nn/index.html

// `deny` rather than `forbid`: the one sanctioned exception is
// `kernel::simd`, which carries a module-level `allow` and confines
// every `unsafe` block behind a `// SAFETY:` contract (CI's
// unsafe-audit gate enforces both). Everything else in the crate is
// still statically unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod blob;
mod conv;
pub mod kernel;
mod linalg;
mod ops;
pub mod qtensor;
mod random;
mod shape;
mod tensor;

pub use blob::{content_hash, fnv1a, ContentHasher};
pub use conv::{
    col2im, col2vol, im2col, im2col_into, vol2col, vol2col_into, Conv2dGeom, Conv3dGeom,
};
pub use kernel::{Isa, KernelConfig, KernelScratch};
pub use qtensor::{Precision, QTensor};
pub use random::TensorRng;
pub use shape::{Shape, MAX_RANK};
pub use tensor::Tensor;

#[cfg(test)]
mod proptests;
