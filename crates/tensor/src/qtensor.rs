//! Int8 quantized tensors and the quantized GEMM.
//!
//! Quantization is **symmetric, per-first-axis-row**: every row `i` of
//! a tensor (its leading-dimension slice) gets one positive scale
//! `s_i = max|x|/127` (`1.0` for an all-zero row) and stores
//! `q = round_ties_even(x / s_i)` clamped to `[-127, 127]` (see
//! [`simd::quantize_value`] for why ties-to-even). For a conv/linear
//! weight stored `[out, fan_in]` this is exactly per-output-channel
//! calibration; for an activation batch `[n, features]` it is per-row
//! dynamic quantization.
//!
//! The quantized GEMM accumulates `i8 × i8` products in `i32` —
//! integer-exact, so results are bit-identical across thread counts and
//! instruction sets by construction — and dequantizes each output once:
//! `out[i, j] = s_a[i] · s_b[j] · Σ_p qa[i, p] · qb[j, p]`.
//!
//! Everything here is deterministic: quantizing the same f32 bits
//! always yields the same i8 bits and scales, which is what lets a
//! serving replica requantize locally and still match a stored int8
//! sidecar bit-for-bit.

use crate::kernel::{self, simd};
use crate::Tensor;

/// The numeric precision a model (or stream) runs its forwards at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full f32 — the bit-identity reference path.
    #[default]
    F32,
    /// Symmetric per-channel int8 with i32 accumulation.
    Int8,
}

impl Precision {
    /// The JSON/config spelling: `"f32"` or `"int8"`.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }

    /// Parses the [`Precision::label`] spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Precision> {
        match s.trim().to_ascii_lowercase().as_str() {
            "f32" => Some(Precision::F32),
            "int8" => Some(Precision::Int8),
            _ => None,
        }
    }
}

// One rounding contract for the whole workspace: every quantizer below
// goes through `simd::quantize_value`, so scalar and vector paths agree
// bit-for-bit.
use simd::quantize_value;

/// The symmetric scale for a row: `max|x| / 127`, or `1.0` when the row
/// is all zeros (any scale represents zeros exactly; `1.0` keeps the
/// bytes deterministic).
#[inline]
fn row_scale(row: &[f32]) -> f32 {
    let mut maxabs = 0.0f32;
    for &v in row {
        maxabs = maxabs.max(v.abs());
    }
    if maxabs == 0.0 {
        1.0
    } else {
        maxabs / 127.0
    }
}

/// An int8 tensor with per-first-axis-row symmetric scales.
///
/// ```
/// use safecross_tensor::{QTensor, Tensor};
///
/// let w = Tensor::from_vec(vec![1.0, -2.0, 0.5, 4.0], &[2, 2]);
/// let q = QTensor::quantize_rows(&w);
/// assert_eq!(q.dims(), &[2, 2]);
/// assert_eq!(q.scales().len(), 2);
/// assert!(q.dequantize().allclose(&w, 0.05));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    dims: Vec<usize>,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QTensor {
    /// Quantizes a tensor with one symmetric scale per first-axis row.
    ///
    /// # Panics
    ///
    /// Panics on a 0-dimensional tensor.
    pub fn quantize_rows(t: &Tensor) -> QTensor {
        let dims = t.dims().to_vec();
        assert!(!dims.is_empty(), "cannot row-quantize a scalar");
        let rows = dims[0];
        let row_len = t.len().checked_div(rows).unwrap_or(0);
        let mut data = vec![0i8; t.len()];
        let mut scales = vec![1.0f32; rows];
        for i in 0..rows {
            let row = &t.data()[i * row_len..(i + 1) * row_len];
            let s = row_scale(row);
            scales[i] = s;
            let inv = 1.0 / s;
            for (q, &v) in data[i * row_len..(i + 1) * row_len].iter_mut().zip(row) {
                *q = quantize_value(v, inv);
            }
        }
        QTensor { dims, data, scales }
    }

    /// Reassembles a quantized tensor from its serialized parts.
    ///
    /// # Panics
    ///
    /// Panics if the data length disagrees with the dimensions or the
    /// scale count disagrees with the leading dimension.
    pub fn from_parts(dims: Vec<usize>, data: Vec<i8>, scales: Vec<f32>) -> QTensor {
        assert!(!dims.is_empty(), "quantized tensors are at least 1-D");
        let len: usize = dims.iter().product();
        assert_eq!(data.len(), len, "quantized data length mismatch");
        assert_eq!(scales.len(), dims[0], "one scale per leading-axis row");
        QTensor { dims, data, scales }
    }

    /// The tensor's dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The quantized values, row-major.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Per-first-axis-row symmetric scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Elements per leading-axis row.
    pub fn row_len(&self) -> usize {
        self.data.len().checked_div(self.dims[0]).unwrap_or(0)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reconstructs the f32 tensor `q · s_row` (lossy: this is the
    /// value the quantized path actually computes with).
    pub fn dequantize(&self) -> Tensor {
        let rows = self.dims[0];
        let row_len = self.row_len();
        let mut out = vec![0.0f32; self.data.len()];
        for i in 0..rows {
            let s = self.scales[i];
            for (o, &q) in out[i * row_len..(i + 1) * row_len]
                .iter_mut()
                .zip(&self.data[i * row_len..(i + 1) * row_len])
            {
                *o = q as f32 * s;
            }
        }
        Tensor::from_vec(out, &self.dims)
    }
}

/// Quantized `A × Bᵀ`: `out[i, j] = sa[i] · sb[j] · Σ_p a[i, p] · b[j, p]`
/// with `a` stored `[m, k]` and `b` stored `[n, k]` (both row-major, so
/// every dot product streams two contiguous rows). Accumulation is
/// integer-exact, so the result is bit-identical across thread counts
/// and instruction sets.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions or `k`
/// exceeds [`simd::QDOT_MAX_K`].
#[allow(clippy::too_many_arguments)] // two operand/scale pairs + dims: the GEMM shape
pub fn qgemm_transb_into(
    a: &[i8],
    a_scales: &[f32],
    b: &[i8],
    b_scales: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "qgemm lhs length mismatch");
    assert_eq!(b.len(), n * k, "qgemm rhs length mismatch");
    assert_eq!(a_scales.len(), m, "qgemm lhs scale count mismatch");
    assert_eq!(b_scales.len(), n, "qgemm rhs scale count mismatch");
    assert_eq!(out.len(), m * n, "qgemm output length mismatch");
    assert!(k <= simd::QDOT_MAX_K, "qgemm reduction too deep for i32");
    let isa = kernel::isa();
    let workers = kernel::effective_workers(m, k, n, kernel::threads());
    kernel::partition_out(out, m, n, workers, |chunk, start| {
        for (off, o) in chunk.iter_mut().enumerate() {
            let pos = start + off;
            let i = pos / n;
            let j = pos - i * n;
            let acc = simd::qdot(isa, &a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
            *o = a_scales[i] * b_scales[j] * acc as f32;
        }
    });
}

/// Quantizes an `[k, n]` column matrix (the im2col/vol2col layout:
/// one *column* per output position) into the **transposed** `[n, k]`
/// int8 layout with one symmetric scale per column — the exact rhs
/// shape [`qgemm_transb_into`] wants. Convolutions use the
/// pair-interleaved [`quantize_cols_paired`] instead; this transposed
/// form suits consumers that want each quantized column contiguous.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn quantize_cols_transposed(
    cols: &[f32],
    k: usize,
    n: usize,
    qdata: &mut [i8],
    scales: &mut [f32],
) {
    assert_eq!(cols.len(), k * n, "column matrix length mismatch");
    assert_eq!(qdata.len(), k * n, "quantized buffer length mismatch");
    assert_eq!(scales.len(), n, "one scale per column");
    column_scales(cols, k, n, scales);
    // Quantize in j-blocks: reads stay row-major (sequential within each
    // block row), and a block's transposed writes land in an
    // L1/L2-resident `JBLOCK × k` window instead of striding the whole
    // output per column.
    let mut inv = [0.0f32; JBLOCK];
    let mut jb = 0;
    while jb < n {
        let je = n.min(jb + JBLOCK);
        for (x, &s) in inv.iter_mut().zip(&scales[jb..je]) {
            *x = 1.0 / s;
        }
        for p in 0..k {
            let row = &cols[p * n + jb..p * n + je];
            for (dj, &v) in row.iter().enumerate() {
                qdata[(jb + dj) * k + p] = quantize_value(v, inv[dj]);
            }
        }
        jb = je;
    }
}

/// Column-block width for the blocked quantizers: reciprocal scales stay
/// on the stack and a transposed write window stays cache-resident.
const JBLOCK: usize = 256;

/// Fills `scales[j]` with the symmetric scale of column `j` of an
/// `[k, n]` matrix (`max|x| / 127`, `1.0` for an all-zero column),
/// sweeping row-major so `cols` is streamed once sequentially while the
/// `n` running maxima stay cache-resident. `f32::max` is exact and
/// order-free, so this matches the per-column definition bit-for-bit.
fn column_scales(cols: &[f32], k: usize, n: usize, scales: &mut [f32]) {
    scales.fill(0.0);
    for p in 0..k {
        for (s, &v) in scales.iter_mut().zip(&cols[p * n..(p + 1) * n]) {
            *s = s.max(v.abs());
        }
    }
    for s in scales.iter_mut() {
        *s = if *s == 0.0 { 1.0 } else { *s / 127.0 };
    }
}

/// Quantizes an `[k, n]` column matrix into the **pair-interleaved**
/// panel [`qgemm_paired_into`] consumes: reduction rows `2t` and
/// `2t + 1` are stored column-by-column as adjacent bytes
/// (`panel[(t·n + j)·2] = q(cols[2t, j])`,
/// `panel[(t·n + j)·2 + 1] = q(cols[2t + 1, j])`), with one symmetric
/// scale per column and a zeroed phantom row when `k` is odd. Both
/// passes stream `cols` row-major — no strided traffic — and the layout
/// is exactly what lets [`simd::qaxpy2`] fold two `i8 × i8` products
/// per `i32` lane in one instruction.
///
/// The quantized value of every real element is identical to
/// [`quantize_cols_transposed`]'s; only the placement differs.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions
/// (`qpanel.len()` must be `2 · ⌈k/2⌉ · n`).
pub fn quantize_cols_paired(
    cols: &[f32],
    k: usize,
    n: usize,
    qpanel: &mut [i8],
    scales: &mut [f32],
) {
    let k2 = k.div_ceil(2);
    assert_eq!(cols.len(), k * n, "column matrix length mismatch");
    assert_eq!(qpanel.len(), 2 * k2 * n, "paired panel length mismatch");
    assert_eq!(scales.len(), n, "one scale per column");
    column_scales(cols, k, n, scales);
    let isa = kernel::isa();
    let mut inv = [0.0f32; JBLOCK];
    let mut jb = 0;
    while jb < n {
        let je = n.min(jb + JBLOCK);
        for (x, &s) in inv.iter_mut().zip(&scales[jb..je]) {
            *x = 1.0 / s;
        }
        for t in 0..k2 {
            let row0 = &cols[2 * t * n + jb..2 * t * n + je];
            let out = &mut qpanel[(t * n + jb) * 2..(t * n + je) * 2];
            // Odd k: the phantom partner row is all zeros, which
            // contributes nothing to any accumulator.
            let row1 =
                (2 * t + 1 < k).then(|| &cols[(2 * t + 1) * n + jb..(2 * t + 1) * n + je]);
            simd::quantize_pair_i8(isa, row0, row1, &inv[..je - jb], out);
        }
        jb = je;
    }
}

/// Quantized flat GEMM over a pair-interleaved activation panel:
/// `out[i, j] = sa[i] · sb[j] · Σ_p a[i, p] · cols[p, j]` with `a`
/// stored `[m, k]` row-major and the rhs produced by
/// [`quantize_cols_paired`]. This is the convolution shape — `m` output
/// channels against an im2col/vol2col matrix — where the transposed
/// [`qgemm_transb_into`] loses to shallow fan-ins: per-output dot
/// products over `k = 9..27` spend their time in scalar tails and
/// horizontal reductions, while the paired panel keeps every instruction
/// a full-width multiply-accumulate along `n`. Accumulation is
/// integer-exact, so results are bit-identical across thread counts and
/// instruction sets.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions or `k`
/// exceeds [`simd::QDOT_MAX_K`].
#[allow(clippy::too_many_arguments)] // two operand/scale pairs + dims: the GEMM shape
pub fn qgemm_paired_into(
    a: &[i8],
    a_scales: &[f32],
    bpanel: &[i8],
    b_scales: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let k2 = k.div_ceil(2);
    assert_eq!(a.len(), m * k, "qgemm lhs length mismatch");
    assert_eq!(bpanel.len(), 2 * k2 * n, "qgemm paired panel length mismatch");
    assert_eq!(a_scales.len(), m, "qgemm lhs scale count mismatch");
    assert_eq!(b_scales.len(), n, "qgemm rhs scale count mismatch");
    assert_eq!(out.len(), m * n, "qgemm output length mismatch");
    assert!(k <= simd::QDOT_MAX_K, "qgemm reduction too deep for i32");
    let isa = kernel::isa();
    let workers = kernel::effective_workers(m, k, n, kernel::threads());
    kernel::partition_out(out, m, n, workers, |chunk, start| {
        let mut acc: Vec<i32> = Vec::new();
        let end = start + chunk.len();
        let mut pos = start;
        while pos < end {
            let i = pos / n;
            let j0 = pos - i * n;
            let j1 = n.min(j0 + (end - pos));
            acc.clear();
            acc.resize(j1 - j0, 0);
            // One register-blocked sweep over the whole reduction: the
            // accumulators never round-trip through memory per pair.
            simd::qgemm_row(isa, &a[i * k..(i + 1) * k], bpanel, n, j0, &mut acc);
            let sa = a_scales[i];
            let oseg = &mut chunk[pos - start..pos - start + (j1 - j0)];
            for ((o, &sb), &v) in oseg.iter_mut().zip(&b_scales[j0..j1]).zip(&acc) {
                *o = sa * sb * v as f32;
            }
            pos += j1 - j0;
        }
    });
}

/// Quantizes a `[n, k]` row-major batch (e.g. linear-layer activations)
/// in place into `qdata` with one scale per row — the lhs shape for
/// [`qgemm_transb_into`].
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn quantize_rows_into(x: &[f32], n: usize, k: usize, qdata: &mut [i8], scales: &mut [f32]) {
    assert_eq!(x.len(), n * k, "row matrix length mismatch");
    assert_eq!(qdata.len(), n * k, "quantized buffer length mismatch");
    assert_eq!(scales.len(), n, "one scale per row");
    for i in 0..n {
        let row = &x[i * k..(i + 1) * k];
        let s = row_scale(row);
        scales[i] = s;
        let inv = 1.0 / s;
        for (q, &v) in qdata[i * k..(i + 1) * k].iter_mut().zip(row) {
            *q = quantize_value(v, inv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Isa;
    use crate::TensorRng;

    #[test]
    fn quantize_roundtrip_error_is_bounded() {
        let mut rng = TensorRng::seed_from(3);
        let t = rng.uniform(&[5, 40], -2.0, 2.0);
        let q = QTensor::quantize_rows(&t);
        let back = q.dequantize();
        for (i, (&a, &b)) in t.data().iter().zip(back.data()).enumerate() {
            let row = i / 40;
            // Half a quantization step per element.
            assert!((a - b).abs() <= 0.5 * q.scales()[row] + 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_rows_quantize_exactly() {
        let t = Tensor::zeros(&[3, 7]);
        let q = QTensor::quantize_rows(&t);
        assert!(q.data().iter().all(|&v| v == 0));
        assert!(q.scales().iter().all(|&s| s == 1.0));
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn quantization_is_deterministic() {
        let mut rng = TensorRng::seed_from(4);
        let t = rng.uniform(&[4, 33], -1.0, 1.0);
        let a = QTensor::quantize_rows(&t);
        let b = QTensor::quantize_rows(&t.clone());
        assert_eq!(a, b);
    }

    #[test]
    fn from_parts_roundtrip() {
        let mut rng = TensorRng::seed_from(5);
        let t = rng.uniform(&[2, 3, 4], -1.0, 1.0);
        let q = QTensor::quantize_rows(&t);
        let r = QTensor::from_parts(q.dims().to_vec(), q.data().to_vec(), q.scales().to_vec());
        assert_eq!(q, r);
    }

    /// Reference: dequantize then float matmul in exact i32-equivalent
    /// arithmetic (small products stay exact in f64).
    fn reference_qgemm(
        a: &[i8],
        sa: &[f32],
        b: &[i8],
        sb: &[f32],
        m: usize,
        k: usize,
        n: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for p in 0..k {
                    acc += a[i * k + p] as i32 * b[j * k + p] as i32;
                }
                out[i * n + j] = sa[i] * sb[j] * acc as f32;
            }
        }
        out
    }

    #[test]
    fn qgemm_matches_reference_across_threads_and_isa() {
        let mut rng = TensorRng::seed_from(6);
        for (m, k, n) in [(1usize, 1usize, 1usize), (4, 27, 33), (16, 324, 10), (3, 100, 7)] {
            let wa = rng.uniform(&[m.max(1), k], -1.5, 1.5);
            let wb = rng.uniform(&[n, k], -1.5, 1.5);
            let qa = QTensor::quantize_rows(&wa);
            let qb = QTensor::quantize_rows(&wb);
            let expect = reference_qgemm(qa.data(), qa.scales(), qb.data(), qb.scales(), m, k, n);
            let detected = Isa::detect();
            for isa in [Isa::Scalar, detected] {
                kernel::set_isa(isa);
                let mut out = vec![f32::NAN; m * n];
                qgemm_transb_into(
                    qa.data(),
                    qa.scales(),
                    qb.data(),
                    qb.scales(),
                    &mut out,
                    m,
                    k,
                    n,
                );
                assert_eq!(
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "isa={isa:?} m={m} k={k} n={n}"
                );
            }
            kernel::set_isa(detected);
        }
    }

    #[test]
    fn quantize_cols_transposed_matches_per_column_quantization() {
        let mut rng = TensorRng::seed_from(7);
        let (k, n) = (27, 50);
        let cols = rng.uniform(&[k, n], -3.0, 3.0);
        let mut qdata = vec![0i8; k * n];
        let mut scales = vec![0.0f32; n];
        quantize_cols_transposed(cols.data(), k, n, &mut qdata, &mut scales);
        // Column j of `cols` is row j of the transposed quantized view.
        let t = cols.transpose();
        let qt = QTensor::quantize_rows(&t);
        assert_eq!(&qdata, qt.data());
        assert_eq!(&scales, qt.scales());
    }

    #[test]
    fn quantize_cols_paired_matches_transposed_values() {
        let mut rng = TensorRng::seed_from(9);
        // Odd and even k, n straddling the JBLOCK boundary.
        for (k, n) in [(27usize, 300usize), (4, 10), (1, 7), (9, 257)] {
            let cols = rng.uniform(&[k, n], -3.0, 3.0);
            let k2 = k.div_ceil(2);
            let mut qt = vec![0i8; k * n];
            let mut st = vec![0.0f32; n];
            quantize_cols_transposed(cols.data(), k, n, &mut qt, &mut st);
            let mut qp = vec![0i8; 2 * k2 * n];
            let mut sp = vec![0.0f32; n];
            quantize_cols_paired(cols.data(), k, n, &mut qp, &mut sp);
            assert_eq!(sp, st, "k={k} n={n}");
            for j in 0..n {
                for p in 0..k {
                    assert_eq!(
                        qp[((p / 2) * n + j) * 2 + p % 2],
                        qt[j * k + p],
                        "k={k} n={n} p={p} j={j}"
                    );
                }
                if k % 2 == 1 {
                    assert_eq!(qp[((k / 2) * n + j) * 2 + 1], 0, "phantom row must be zero");
                }
            }
        }
    }

    #[test]
    fn qgemm_paired_matches_transb_across_threads_and_isa() {
        let mut rng = TensorRng::seed_from(10);
        let detected = Isa::detect();
        let threads = kernel::threads();
        for (m, k, n) in [(4usize, 27usize, 320usize), (8, 9, 40), (16, 324, 100), (1, 1, 1)] {
            let w = rng.uniform(&[m, k], -1.5, 1.5);
            let cols = rng.uniform(&[k, n], -2.0, 2.0);
            let qw = QTensor::quantize_rows(&w);
            // Reference through the transposed layout.
            let mut qt = vec![0i8; k * n];
            let mut st = vec![0.0f32; n];
            quantize_cols_transposed(cols.data(), k, n, &mut qt, &mut st);
            let mut expect = vec![f32::NAN; m * n];
            qgemm_transb_into(qw.data(), qw.scales(), &qt, &st, &mut expect, m, k, n);
            let k2 = k.div_ceil(2);
            let mut qp = vec![0i8; 2 * k2 * n];
            let mut sp = vec![0.0f32; n];
            quantize_cols_paired(cols.data(), k, n, &mut qp, &mut sp);
            for isa in [Isa::Scalar, detected] {
                for workers in [1usize, 4] {
                    kernel::set_isa(isa);
                    kernel::set_threads(workers);
                    let mut out = vec![f32::NAN; m * n];
                    qgemm_paired_into(qw.data(), qw.scales(), &qp, &sp, &mut out, m, k, n);
                    kernel::set_isa(detected);
                    kernel::set_threads(threads);
                    assert_eq!(
                        out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "isa={isa:?} workers={workers} m={m} k={k} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn quantize_rows_into_matches_qtensor() {
        let mut rng = TensorRng::seed_from(8);
        let x = rng.uniform(&[6, 19], -2.0, 2.0);
        let mut qdata = vec![0i8; 6 * 19];
        let mut scales = vec![0.0f32; 6];
        quantize_rows_into(x.data(), 6, 19, &mut qdata, &mut scales);
        let q = QTensor::quantize_rows(&x);
        assert_eq!(&qdata, q.data());
        assert_eq!(&scales, q.scales());
    }
}
