//! `im2col`/`vol2col` lowering for 2-D and 3-D convolutions.
//!
//! Convolutions in `safecross-nn` are computed as matrix products between a
//! reshaped weight matrix and a patch matrix produced here, which is the
//! standard CPU lowering (and what cuDNN's GEMM algorithms do internally).

use crate::Tensor;

/// Geometry of a 2-D convolution over a `[C, H, W]` input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride in both directions.
    pub stride: usize,
    /// Zero padding on all four sides.
    pub padding: usize,
}

impl Conv2dGeom {
    /// Output height after convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_height(&self) -> usize {
        out_extent(self.height, self.kernel, self.stride, self.padding)
    }

    /// Output width after convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_width(&self) -> usize {
        out_extent(self.width, self.kernel, self.stride, self.padding)
    }

    /// Rows of the patch matrix (`C * k * k`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Geometry of a 3-D convolution over a `[C, T, H, W]` input.
///
/// Temporal and spatial kernel/stride are independent, which is what the
/// SlowFast pathways need (e.g. temporal kernel 1 on the Slow pathway,
/// larger on Fast).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv3dGeom {
    /// Input channels.
    pub in_channels: usize,
    /// Number of frames.
    pub frames: usize,
    /// Frame height.
    pub height: usize,
    /// Frame width.
    pub width: usize,
    /// Temporal kernel extent.
    pub kernel_t: usize,
    /// Spatial (square) kernel side.
    pub kernel_s: usize,
    /// Temporal stride.
    pub stride_t: usize,
    /// Spatial stride.
    pub stride_s: usize,
    /// Temporal zero padding.
    pub pad_t: usize,
    /// Spatial zero padding.
    pub pad_s: usize,
}

impl Conv3dGeom {
    /// Output frame count.
    pub fn out_frames(&self) -> usize {
        out_extent(self.frames, self.kernel_t, self.stride_t, self.pad_t)
    }

    /// Output height.
    pub fn out_height(&self) -> usize {
        out_extent(self.height, self.kernel_s, self.stride_s, self.pad_s)
    }

    /// Output width.
    pub fn out_width(&self) -> usize {
        out_extent(self.width, self.kernel_s, self.stride_s, self.pad_s)
    }

    /// Rows of the patch matrix (`C * kt * ks * ks`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel_t * self.kernel_s * self.kernel_s
    }
}

fn out_extent(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel,
        "kernel {kernel} larger than padded input {padded}"
    );
    (padded - kernel) / stride + 1
}

/// Lowers a `[C, H, W]` image (as a raw row-major slice) into a
/// `[C*k*k, outH*outW]` patch matrix written into `out`, without
/// allocating. This is the scratch-buffer entry point the zero-allocation
/// classify path uses; [`im2col`] is the allocating wrapper.
///
/// # Panics
///
/// Panics if `data` or `out` lengths disagree with the geometry.
pub fn im2col_into(data: &[f32], g: &Conv2dGeom, out: &mut [f32]) {
    assert_eq!(
        data.len(),
        g.in_channels * g.height * g.width,
        "im2col input length mismatch"
    );
    let (oh, ow) = (g.out_height(), g.out_width());
    let cols = oh * ow;
    let rows = g.patch_len();
    assert_eq!(out.len(), rows * cols, "im2col output length mismatch");
    let hw = g.height * g.width;
    let mut row = 0;
    for c in 0..g.in_channels {
        for ky in 0..g.kernel {
            for kx in 0..g.kernel {
                let base = row * cols;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                        let v = if iy >= 0
                            && iy < g.height as isize
                            && ix >= 0
                            && ix < g.width as isize
                        {
                            data[c * hw + iy as usize * g.width + ix as usize]
                        } else {
                            0.0
                        };
                        out[base + oy * ow + ox] = v;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Lowers a `[C, H, W]` image into a `[C*k*k, outH*outW]` patch matrix.
///
/// # Panics
///
/// Panics if `input` does not match the geometry.
pub fn im2col(input: &Tensor, g: &Conv2dGeom) -> Tensor {
    assert_eq!(
        input.dims(),
        &[g.in_channels, g.height, g.width],
        "im2col input shape mismatch"
    );
    let (oh, ow) = (g.out_height(), g.out_width());
    let cols = oh * ow;
    let rows = g.patch_len();
    let mut out = vec![0.0f32; rows * cols];
    im2col_into(input.data(), g, &mut out);
    Tensor::from_vec(out, &[rows, cols])
}

/// Scatters a `[C*k*k, outH*outW]` patch-gradient matrix back to `[C, H, W]`.
///
/// This is the adjoint of [`im2col`] and accumulates overlapping patches.
///
/// # Panics
///
/// Panics if `cols` does not match the geometry.
pub fn col2im(cols_t: &Tensor, g: &Conv2dGeom) -> Tensor {
    let (oh, ow) = (g.out_height(), g.out_width());
    let cols = oh * ow;
    assert_eq!(
        cols_t.dims(),
        &[g.patch_len(), cols],
        "col2im input shape mismatch"
    );
    let mut out = Tensor::zeros(&[g.in_channels, g.height, g.width]);
    let hw = g.height * g.width;
    let src = cols_t.data();
    let dst = out.data_mut();
    let mut row = 0;
    for c in 0..g.in_channels {
        for ky in 0..g.kernel {
            for kx in 0..g.kernel {
                let base = row * cols;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                    if iy < 0 || iy >= g.height as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                        if ix < 0 || ix >= g.width as isize {
                            continue;
                        }
                        dst[c * hw + iy as usize * g.width + ix as usize] +=
                            src[base + oy * ow + ox];
                    }
                }
                row += 1;
            }
        }
    }
    out
}

/// Lowers a `[C, T, H, W]` clip (as a raw row-major slice) into a
/// `[C*kt*ks*ks, oT*oH*oW]` patch matrix written into `out`, without
/// allocating. This is the scratch-buffer entry point the zero-allocation
/// classify path uses; [`vol2col`] is the allocating wrapper.
///
/// # Panics
///
/// Panics if `data` or `out` lengths disagree with the geometry.
pub fn vol2col_into(data: &[f32], g: &Conv3dGeom, out: &mut [f32]) {
    assert_eq!(
        data.len(),
        g.in_channels * g.frames * g.height * g.width,
        "vol2col input length mismatch"
    );
    let (ot, oh, ow) = (g.out_frames(), g.out_height(), g.out_width());
    let cols = ot * oh * ow;
    let rows = g.patch_len();
    assert_eq!(out.len(), rows * cols, "vol2col output length mismatch");
    let hw = g.height * g.width;
    let thw = g.frames * hw;
    let mut row = 0;
    for c in 0..g.in_channels {
        for kt in 0..g.kernel_t {
            for ky in 0..g.kernel_s {
                for kx in 0..g.kernel_s {
                    let base = row * cols;
                    for oti in 0..ot {
                        let it = (oti * g.stride_t + kt) as isize - g.pad_t as isize;
                        let t_ok = it >= 0 && it < g.frames as isize;
                        for oy in 0..oh {
                            let iy = (oy * g.stride_s + ky) as isize - g.pad_s as isize;
                            let y_ok = iy >= 0 && iy < g.height as isize;
                            for ox in 0..ow {
                                let ix = (ox * g.stride_s + kx) as isize - g.pad_s as isize;
                                let v = if t_ok
                                    && y_ok
                                    && ix >= 0
                                    && ix < g.width as isize
                                {
                                    data[c * thw
                                        + it as usize * hw
                                        + iy as usize * g.width
                                        + ix as usize]
                                } else {
                                    0.0
                                };
                                out[base + oti * oh * ow + oy * ow + ox] = v;
                            }
                        }
                    }
                    row += 1;
                }
            }
        }
    }
}

/// Lowers a `[C, T, H, W]` clip into a `[C*kt*ks*ks, oT*oH*oW]` patch matrix.
///
/// # Panics
///
/// Panics if `input` does not match the geometry.
pub fn vol2col(input: &Tensor, g: &Conv3dGeom) -> Tensor {
    assert_eq!(
        input.dims(),
        &[g.in_channels, g.frames, g.height, g.width],
        "vol2col input shape mismatch"
    );
    let (ot, oh, ow) = (g.out_frames(), g.out_height(), g.out_width());
    let cols = ot * oh * ow;
    let rows = g.patch_len();
    let mut out = vec![0.0f32; rows * cols];
    vol2col_into(input.data(), g, &mut out);
    Tensor::from_vec(out, &[rows, cols])
}

/// Adjoint of [`vol2col`]: scatters patch gradients back to `[C, T, H, W]`.
///
/// # Panics
///
/// Panics if `cols_t` does not match the geometry.
pub fn col2vol(cols_t: &Tensor, g: &Conv3dGeom) -> Tensor {
    let (ot, oh, ow) = (g.out_frames(), g.out_height(), g.out_width());
    let cols = ot * oh * ow;
    assert_eq!(
        cols_t.dims(),
        &[g.patch_len(), cols],
        "col2vol input shape mismatch"
    );
    let mut out = Tensor::zeros(&[g.in_channels, g.frames, g.height, g.width]);
    let hw = g.height * g.width;
    let thw = g.frames * hw;
    let src = cols_t.data();
    let dst = out.data_mut();
    let mut row = 0;
    for c in 0..g.in_channels {
        for kt in 0..g.kernel_t {
            for ky in 0..g.kernel_s {
                for kx in 0..g.kernel_s {
                    let base = row * cols;
                    for oti in 0..ot {
                        let it = (oti * g.stride_t + kt) as isize - g.pad_t as isize;
                        if it < 0 || it >= g.frames as isize {
                            continue;
                        }
                        for oy in 0..oh {
                            let iy = (oy * g.stride_s + ky) as isize - g.pad_s as isize;
                            if iy < 0 || iy >= g.height as isize {
                                continue;
                            }
                            for ox in 0..ow {
                                let ix = (ox * g.stride_s + kx) as isize - g.pad_s as isize;
                                if ix < 0 || ix >= g.width as isize {
                                    continue;
                                }
                                dst[c * thw
                                    + it as usize * hw
                                    + iy as usize * g.width
                                    + ix as usize] += src[base + oti * oh * ow + oy * ow + ox];
                            }
                        }
                    }
                    row += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_extent_formula() {
        assert_eq!(out_extent(5, 3, 1, 0), 3);
        assert_eq!(out_extent(5, 3, 1, 1), 5);
        assert_eq!(out_extent(8, 3, 2, 1), 4);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: patch matrix equals the flattened image.
        let g = Conv2dGeom {
            in_channels: 1,
            height: 2,
            width: 3,
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        let img = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[1, 2, 3]);
        let cols = im2col(&img, &g);
        assert_eq!(cols.dims(), &[1, 6]);
        assert_eq!(cols.data(), img.data());
    }

    #[test]
    fn im2col_3x3_single_patch() {
        let g = Conv2dGeom {
            in_channels: 1,
            height: 3,
            width: 3,
            kernel: 3,
            stride: 1,
            padding: 0,
        };
        let img = Tensor::from_vec((0..9).map(|x| x as f32).collect(), &[1, 3, 3]);
        let cols = im2col(&img, &g);
        assert_eq!(cols.dims(), &[9, 1]);
        assert_eq!(cols.data(), img.data());
    }

    #[test]
    fn im2col_padding_produces_zeros() {
        let g = Conv2dGeom {
            in_channels: 1,
            height: 1,
            width: 1,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let img = Tensor::from_vec(vec![7.0], &[1, 1, 1]);
        let cols = im2col(&img, &g);
        assert_eq!(cols.dims(), &[9, 1]);
        // The centre tap sees the pixel, everything else is padding.
        assert_eq!(cols.data().iter().filter(|&&v| v == 7.0).count(), 1);
        assert_eq!(cols.data()[4], 7.0);
        assert_eq!(cols.sum(), 7.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for arbitrary x, y.
        let g = Conv2dGeom {
            in_channels: 2,
            height: 5,
            width: 4,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let x = Tensor::from_vec(
            (0..2 * 5 * 4).map(|i| (i as f32 * 0.37).sin()).collect(),
            &[2, 5, 4],
        );
        let cols = im2col(&x, &g);
        let y = Tensor::from_vec(
            (0..cols.len()).map(|i| (i as f32 * 0.11).cos()).collect(),
            cols.dims(),
        );
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, &g);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn vol2col_identity_kernel() {
        let g = Conv3dGeom {
            in_channels: 1,
            frames: 2,
            height: 2,
            width: 2,
            kernel_t: 1,
            kernel_s: 1,
            stride_t: 1,
            stride_s: 1,
            pad_t: 0,
            pad_s: 0,
        };
        let clip = Tensor::from_vec((0..8).map(|x| x as f32).collect(), &[1, 2, 2, 2]);
        let cols = vol2col(&clip, &g);
        assert_eq!(cols.dims(), &[1, 8]);
        assert_eq!(cols.data(), clip.data());
    }

    #[test]
    fn col2vol_is_adjoint_of_vol2col() {
        let g = Conv3dGeom {
            in_channels: 2,
            frames: 4,
            height: 3,
            width: 3,
            kernel_t: 3,
            kernel_s: 2,
            stride_t: 1,
            stride_s: 1,
            pad_t: 1,
            pad_s: 0,
        };
        let x = Tensor::from_vec(
            (0..2 * 4 * 3 * 3).map(|i| (i as f32 * 0.21).sin()).collect(),
            &[2, 4, 3, 3],
        );
        let cols = vol2col(&x, &g);
        let y = Tensor::from_vec(
            (0..cols.len()).map(|i| (i as f32 * 0.07).cos()).collect(),
            cols.dims(),
        );
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let back = col2vol(&y, &g);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn vol2col_temporal_pad_with_full_length_kernel() {
        // kernel_t == frames with pad_t > 0: every output frame's window
        // hangs off at least one clip boundary, so the temporal clamp is
        // exercised on both ends.
        let g = Conv3dGeom {
            in_channels: 1,
            frames: 2,
            height: 1,
            width: 2,
            kernel_t: 2,
            kernel_s: 1,
            stride_t: 1,
            stride_s: 1,
            pad_t: 1,
            pad_s: 0,
        };
        assert_eq!(g.out_frames(), 3);
        let clip = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 1, 2]);
        let cols = vol2col(&clip, &g);
        // Rows are (kt=0, kt=1) taps; columns are (ot, ox).
        assert_eq!(cols.dims(), &[2, 6]);
        // kt=0 reads frame ot-1: padding for ot=0, then frames 0 and 1.
        assert_eq!(&cols.data()[..6], &[0.0, 0.0, 1.0, 2.0, 3.0, 4.0]);
        // kt=1 reads frame ot: frames 0 and 1, then padding for ot=2.
        assert_eq!(&cols.data()[6..], &[1.0, 2.0, 3.0, 4.0, 0.0, 0.0]);
        // Scatter-back adjoint survives the same clamps.
        let back = col2vol(&cols, &g);
        assert_eq!(back.data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn im2col_into_matches_allocating_wrapper() {
        let g = Conv2dGeom {
            in_channels: 2,
            height: 4,
            width: 5,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let img = Tensor::from_vec(
            (0..2 * 4 * 5).map(|i| (i as f32 * 0.13).sin()).collect(),
            &[2, 4, 5],
        );
        let cols = im2col(&img, &g);
        let mut buf = vec![f32::NAN; cols.len()];
        im2col_into(img.data(), &g, &mut buf);
        assert_eq!(buf.as_slice(), cols.data());
    }

    #[test]
    fn conv3d_geometry() {
        let g = Conv3dGeom {
            in_channels: 3,
            frames: 8,
            height: 16,
            width: 16,
            kernel_t: 3,
            kernel_s: 3,
            stride_t: 1,
            stride_s: 2,
            pad_t: 1,
            pad_s: 1,
        };
        assert_eq!(g.out_frames(), 8);
        assert_eq!(g.out_height(), 8);
        assert_eq!(g.out_width(), 8);
        assert_eq!(g.patch_len(), 3 * 3 * 3 * 3);
    }
}
