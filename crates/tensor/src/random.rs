//! Deterministic random tensor initialisation.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source for tensor initialisation.
///
/// Every stochastic component in the reproduction (weight init, dataset
/// generation, episode sampling) threads an explicit RNG so experiments are
/// bit-reproducible; this wrapper standardises the seeding.
///
/// ```
/// use safecross_tensor::TensorRng;
///
/// let mut rng = TensorRng::seed_from(42);
/// let w = rng.kaiming(&[8, 4], 4);
/// assert_eq!(w.dims(), &[8, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        TensorRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Tensor of i.i.d. uniform samples in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, dims: &[usize], lo: f32, hi: f32) -> Tensor {
        assert!(lo < hi, "uniform requires lo < hi");
        let len: usize = dims.iter().product();
        let data = (0..len).map(|_| self.rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, dims)
    }

    /// Tensor of i.i.d. standard-normal samples (Box–Muller), scaled by
    /// `std`.
    pub fn normal(&mut self, dims: &[usize], std: f32) -> Tensor {
        let len: usize = dims.iter().product();
        let mut data = Vec::with_capacity(len);
        while data.len() < len {
            let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = self.rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < len {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor::from_vec(data, dims)
    }

    /// Kaiming/He initialisation for ReLU networks: normal with
    /// `std = sqrt(2 / fan_in)`.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in` is zero.
    pub fn kaiming(&mut self, dims: &[usize], fan_in: usize) -> Tensor {
        assert!(fan_in > 0, "fan_in must be positive");
        self.normal(dims, (2.0 / fan_in as f32).sqrt())
    }

    /// A single uniform sample in `[0, 1)`.
    pub fn unit(&mut self) -> f32 {
        self.rng.gen_range(0.0..1.0)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.rng.gen_range(0..n)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Splits off an independent child generator (for parallel workers).
    pub fn fork(&mut self) -> TensorRng {
        TensorRng::seed_from(self.rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(7);
        assert_eq!(a.uniform(&[10], 0.0, 1.0), b.uniform(&[10], 0.0, 1.0));
        assert_eq!(a.normal(&[9], 1.0), b.normal(&[9], 1.0));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = TensorRng::seed_from(1);
        let t = rng.uniform(&[1000], -2.0, 3.0);
        assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = TensorRng::seed_from(2);
        let t = rng.normal(&[20000], 1.0);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.map(|x| x * x).mean() - t.mean() * t.mean();
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn kaiming_scale_tracks_fan_in() {
        let mut rng = TensorRng::seed_from(3);
        let t = rng.kaiming(&[10000], 50);
        let var = t.map(|x| x * x).mean();
        assert!((var - 2.0 / 50.0).abs() < 0.01, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = TensorRng::seed_from(4);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut a = TensorRng::seed_from(5);
        let mut child = a.fork();
        let x = a.uniform(&[5], 0.0, 1.0);
        let y = child.uniform(&[5], 0.0, 1.0);
        assert_ne!(x, y);
    }

    #[test]
    fn index_in_range() {
        let mut rng = TensorRng::seed_from(6);
        for _ in 0..100 {
            assert!(rng.index(7) < 7);
        }
    }
}
