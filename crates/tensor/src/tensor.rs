//! The dense tensor type.

use crate::Shape;
use std::fmt;

/// A dense, row-major, owned `f32` tensor.
///
/// All SafeCross numeric state — images, network activations, weights,
/// gradients — flows through this type. Storage is always contiguous, so
/// `reshape` is free and elementwise kernels are simple loops over the
/// backing `Vec<f32>`.
///
/// ```
/// use safecross_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a square identity matrix of side `n`.
    ///
    /// ```
    /// use safecross_tensor::Tensor;
    /// let i = Tensor::eye(3);
    /// assert_eq!(i.at(&[1, 1]), 1.0);
    /// assert_eq!(i.at(&[1, 2]), 0.0);
    /// ```
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Shorthand for `shape().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Tensors always contain at least one element; this mirrors the
    /// standard `len`/`is_empty` pairing and is always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Immutable view of the backing buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds or of the wrong rank.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds or of the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a reshaped copy sharing the same element order.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.len(),
            "cannot reshape {} elements into {shape}",
            self.len()
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// In-place reshape (free: storage is contiguous).
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshape_in_place(&mut self, dims: &[usize]) {
        let shape = Shape::new(dims);
        assert_eq!(shape.len(), self.len());
        self.shape = shape;
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_map shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Extracts the `i`-th slice along axis 0 (e.g. one sample of a batch).
    ///
    /// The result drops the leading axis: slicing `[N, C, H, W]` yields
    /// `[C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is a scalar or `i` is out of bounds.
    pub fn index_axis0(&self, i: usize) -> Tensor {
        assert!(!self.shape.is_empty(), "cannot slice a scalar");
        let n = self.shape.dim(0);
        assert!(i < n, "index {i} out of bounds for axis 0 (extent {n})");
        let chunk = self.len() / n;
        let dims = self.shape.dims()[1..].to_vec();
        Tensor::from_vec(self.data[i * chunk..(i + 1) * chunk].to_vec(), &dims)
    }

    /// Writes `src` into the `i`-th slice along axis 0.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible or `i` is out of bounds.
    pub fn set_axis0(&mut self, i: usize, src: &Tensor) {
        let n = self.shape.dim(0);
        assert!(i < n, "index {i} out of bounds for axis 0 (extent {n})");
        let chunk = self.len() / n;
        assert_eq!(src.len(), chunk, "slice length mismatch");
        self.data[i * chunk..(i + 1) * chunk].copy_from_slice(&src.data);
    }

    /// Stacks same-shaped tensors along a new leading axis.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or shapes differ.
    pub fn stack(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "cannot stack zero tensors");
        let inner = parts[0].shape;
        let mut dims = vec![parts.len()];
        dims.extend_from_slice(inner.dims());
        let mut data = Vec::with_capacity(parts.len() * inner.len());
        for p in parts {
            assert_eq!(p.shape, inner, "stack shape mismatch");
            data.extend_from_slice(&p.data);
        }
        Tensor::from_vec(data, &dims)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}", self.shape)?;
        if self.len() <= 8 {
            write!(f, ", {:?})", self.data)
        } else {
            write!(
                f,
                ", [{:.4}, {:.4}, .. {:.4}] n={})",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1],
                self.len()
            )
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 5.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.data()[5], 5.0);
    }

    #[test]
    fn from_vec_and_reshape_preserve_order() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.at(&[0, 1]), 1.0);
        assert_eq!(r.at(&[2, 1]), 5.0);
        assert_eq!(t.data(), r.data());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_mismatch_panics() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn index_axis0_extracts_samples() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 2, 2]);
        let s = t.index_axis0(1);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn set_axis0_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        let row = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        t.set_axis0(1, &row);
        assert_eq!(t.index_axis0(1), row);
        assert_eq!(t.index_axis0(0).data(), &[0.0; 3]);
    }

    #[test]
    fn stack_builds_batch() {
        let a = Tensor::full(&[2], 1.0);
        let b = Tensor::full(&[2], 2.0);
        let s = Tensor::stack(&[a, b]);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let b = a.map(f32::abs);
        assert_eq!(b.data(), &[1.0, 2.0]);
        let c = a.zip_map(&b, |x, y| x + y);
        assert_eq!(c.data(), &[2.0, 0.0]);
    }

    #[test]
    fn scalar_tensor() {
        let s = Tensor::scalar(3.5);
        assert_eq!(s.len(), 1);
        assert_eq!(s.at(&[]), 3.5);
    }

    #[test]
    fn debug_never_empty() {
        assert!(!format!("{:?}", Tensor::zeros(&[1])).is_empty());
        assert!(!format!("{:?}", Tensor::zeros(&[100])).is_empty());
    }
}
