//! Shape bookkeeping for dense row-major tensors.

use std::fmt;

/// The extent of a tensor along each axis.
///
/// Shapes are always row-major ("C order"): the last axis is contiguous in
/// memory. A zero-dimensional shape describes a scalar with one element.
///
/// ```
/// use safecross_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of axis extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero; empty tensors are not supported.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-sized axis in shape {dims:?}"
        );
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The number of axes.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Total element count (product of extents; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape describes zero axes (a scalar). Never "empty" in
    /// the element-count sense; scalars hold one element.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Extent along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-index into a linear offset.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} != shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} (extent {d})");
            off += i * strides[axis];
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.ndim(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert!(s.is_empty());
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn offset_matches_manual() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "zero-sized axis")]
    fn zero_axis_panics() {
        Shape::new(&[3, 0]);
    }

    #[test]
    fn equality_and_from() {
        let a: Shape = [2, 3].into();
        let b = Shape::new(&[2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, Shape::new(&[3, 2]));
    }
}
