//! Shape bookkeeping for dense row-major tensors.

use std::fmt;

/// Maximum tensor rank the shape can describe.
///
/// The deepest shape the workspace uses is a stacked video batch
/// `[K, N, C, T, H, W]` (rank 6). Storing extents inline (instead of a
/// `Vec<usize>`) keeps `Shape` construction allocation-free, which the
/// kernel layer's zero-allocation classify path relies on.
pub const MAX_RANK: usize = 6;

/// The extent of a tensor along each axis.
///
/// Shapes are always row-major ("C order"): the last axis is contiguous in
/// memory. A zero-dimensional shape describes a scalar with one element.
/// Extents are stored inline (up to [`MAX_RANK`] axes), so creating a
/// shape never touches the heap.
///
/// ```
/// use safecross_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    // Unused trailing slots are always zero, so the derived equality and
    // hash over the whole array agree with equality over `dims()`.
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Creates a shape from a slice of axis extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero (empty tensors are not supported) or
    /// if the rank exceeds [`MAX_RANK`].
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "rank {} exceeds the supported maximum {MAX_RANK}",
            dims.len()
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-sized axis in shape {dims:?}"
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: inline,
            rank: dims.len() as u8,
        }
    }

    /// The number of axes.
    pub fn ndim(&self) -> usize {
        self.rank as usize
    }

    /// Total element count (product of extents; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Whether the shape describes zero axes (a scalar). Never "empty" in
    /// the element-count sense; scalars hold one element.
    pub fn is_empty(&self) -> bool {
        self.rank == 0
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Extent along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims()[axis]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let dims = self.dims();
        let mut strides = vec![1; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-index into a linear offset.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        let dims = self.dims();
        assert_eq!(
            index.len(),
            dims.len(),
            "index rank {} != shape rank {}",
            index.len(),
            dims.len()
        );
        // Accumulate from the innermost axis with a running stride, so
        // indexing never materialises the stride vector.
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..dims.len()).rev() {
            let (i, d) = (index[axis], dims[axis]);
            assert!(i < d, "index {i} out of bounds for axis {axis} (extent {d})");
            off += i * stride;
            stride *= d;
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.ndim(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert!(s.is_empty());
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn offset_matches_manual() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "zero-sized axis")]
    fn zero_axis_panics() {
        Shape::new(&[3, 0]);
    }

    #[test]
    #[should_panic(expected = "exceeds the supported maximum")]
    fn over_max_rank_panics() {
        Shape::new(&[1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn max_rank_shape_works() {
        let s = Shape::new(&[2, 1, 3, 1, 2, 2]);
        assert_eq!(s.ndim(), 6);
        assert_eq!(s.len(), 24);
        assert_eq!(s.offset(&[1, 0, 2, 0, 1, 1]), 12 + 8 + 3);
    }

    #[test]
    fn equality_and_from() {
        let a: Shape = [2, 3].into();
        let b = Shape::new(&[2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, Shape::new(&[3, 2]));
        // Same leading extents but different rank must differ.
        assert_ne!(Shape::new(&[2]), Shape::new(&[2, 1]));
    }
}
