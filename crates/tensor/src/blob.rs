//! Content hashing for weight blobs.
//!
//! The model artifact IR (see `safecross-nn`'s serialisation manifest and
//! `safecross-modelswitch`'s `ModelRegistry`) addresses layer groups by the
//! content of their tensors: two groups with the same shapes and the same
//! bit pattern hash identically, so daytime/rain/snow checkpoints that
//! share a backbone stage store its weights once. Both crates must agree
//! on the hash, so it lives here in the substrate.
//!
//! The hash is FNV-1a over 64 bits, fed with each tensor's rank, its
//! dimensions, and the little-endian bytes of its `f32` data, in order.
//! FNV is not cryptographic; the registry always verifies candidate
//! matches by comparing the actual bytes before deduplicating, so a
//! collision can never silently alias two different weight groups.

use crate::Tensor;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over byte streams.
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u64,
}

impl ContentHasher {
    /// A hasher in its initial state.
    pub fn new() -> Self {
        ContentHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` as little-endian bytes.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Feeds one tensor: rank, dims, then data bytes.
    pub fn update_tensor(&mut self, t: &Tensor) {
        self.update_u64(t.dims().len() as u64);
        for &d in t.dims() {
            self.update_u64(d as u64);
        }
        for &v in t.data() {
            self.update(&v.to_le_bytes());
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for ContentHasher {
    fn default() -> Self {
        ContentHasher::new()
    }
}

/// One-shot FNV-1a over a byte slice — the workspace's single shared
/// implementation of the plain (rank-free, shape-free) byte hash.
/// Call sites that used to carry their own copy of the constants
/// (replay's chaos scheduler, the registry's string keys) route through
/// here; the output is byte-identical to theirs, so existing traces and
/// checkpoints keyed on it remain valid.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = ContentHasher::new();
    h.update(bytes);
    h.finish()
}

/// Content hash of an ordered sequence of tensors (a weight group).
///
/// Sensitive to order, shapes, and every bit of the data; insensitive to
/// the names the tensors travel under, so a few-shot-adapted checkpoint
/// whose head changed but whose backbone stages did not still shares the
/// unchanged stages with its parent model.
pub fn content_hash<'a>(tensors: impl IntoIterator<Item = &'a Tensor>) -> u64 {
    let mut h = ContentHasher::new();
    for t in tensors {
        h.update_tensor(t);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_shape_sensitive() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        assert_eq!(content_hash([&a]), content_hash([&a.clone()]));
        assert_ne!(content_hash([&a]), content_hash([&b]));
    }

    #[test]
    fn hash_is_data_sensitive_and_order_sensitive() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![2.0, 1.0], &[2]);
        assert_ne!(content_hash([&a]), content_hash([&b]));
        assert_ne!(content_hash([&a, &b]), content_hash([&b, &a]));
    }

    #[test]
    fn hash_distinguishes_group_splits() {
        // [1.0, 2.0] as one tensor vs two scalars must differ, so a
        // group's hash pins its internal layout, not just its bytes.
        let joined = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let a = Tensor::from_vec(vec![1.0], &[1]);
        let b = Tensor::from_vec(vec![2.0], &[1]);
        assert_ne!(content_hash([&joined]), content_hash([&a, &b]));
    }

    #[test]
    fn empty_iterator_hashes_to_offset_basis() {
        assert_eq!(content_hash(std::iter::empty()), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Pinned so every routed caller (replay traces, registry keys)
        // keeps producing the bytes existing artifacts were keyed on.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
