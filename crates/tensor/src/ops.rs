//! Elementwise arithmetic, reductions, and activation helpers.

use crate::Tensor;
use std::ops::{Add, Div, Mul, Neg, Sub};

macro_rules! elementwise_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip_map(rhs, |a, b| a $op b)
            }
        }
        impl $trait for Tensor {
            type Output = Tensor;
            fn $method(self, rhs: Tensor) -> Tensor {
                (&self).$method(&rhs)
            }
        }
        impl $trait<f32> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                self.map(|a| a $op rhs)
            }
        }
        impl $trait<f32> for Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                (&self).$method(rhs)
            }
        }
    };
}

elementwise_binop!(Add, add, +);
elementwise_binop!(Sub, sub, -);
elementwise_binop!(Mul, mul, *);
elementwise_binop!(Div, div, /);

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|a| -a)
    }
}

impl Neg for Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        -&self
    }
}

impl Tensor {
    /// Adds `other * scale` in place (the `axpy` pattern used by SGD).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a += b * scale;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        self.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in the flattened buffer (first on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data().iter().enumerate() {
            if v > self.data()[best] {
                best = i;
            }
        }
        best
    }

    /// Row-wise argmax of a 2-D tensor, one index per row.
    ///
    /// Used to turn a `[batch, classes]` logit matrix into predictions.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape().ndim(), 2, "argmax_rows requires a 2-D tensor");
        let (rows, cols) = (self.shape().dim(0), self.shape().dim(1));
        (0..rows)
            .map(|r| {
                let row = &self.data()[r * cols..(r + 1) * cols];
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data().iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Rectified linear unit, elementwise.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Numerically stable softmax over the last axis of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "softmax_rows requires a 2-D tensor");
        let (rows, cols) = (self.shape().dim(0), self.shape().dim(1));
        let mut out = self.clone();
        for r in 0..rows {
            let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                z += *v;
            }
            for v in row.iter_mut() {
                *v /= z;
            }
        }
        out
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// `true` when every corresponding element differs by at most `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data()
                .iter()
                .zip(other.data())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()])
    }

    #[test]
    fn arithmetic_ops() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[3.0, 4.0]);
        assert_eq!((&a + &b).data(), &[4.0, 6.0]);
        assert_eq!((&b - &a).data(), &[2.0, 2.0]);
        assert_eq!((&a * &b).data(), &[3.0, 8.0]);
        assert_eq!((&b / &a).data(), &[3.0, 2.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0]);
        assert_eq!((&a * 2.0).data(), &[2.0, 4.0]);
        assert_eq!((a + 1.0).data(), &[2.0, 3.0]);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = t(&[1.0, 2.0]);
        a.add_scaled(&t(&[10.0, 10.0]), 0.5);
        assert_eq!(a.data(), &[6.0, 7.0]);
    }

    #[test]
    fn reductions() {
        let a = t(&[1.0, -3.0, 2.0]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max(), 2.0);
        assert_eq!(a.min(), -3.0);
        assert_eq!(a.argmax(), 2);
        assert!((a.norm() - 14.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_per_sample() {
        let m = Tensor::from_vec(vec![0.1, 0.9, 0.8, 0.2], &[2, 2]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // uniform logits -> uniform probabilities
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let m = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]);
        let s = m.softmax_rows();
        assert!(s.data().iter().all(|v| v.is_finite()));
        assert!(s.at(&[0, 1]) > s.at(&[0, 0]));
    }

    #[test]
    fn relu_and_clamp() {
        let a = t(&[-1.0, 0.5, 2.0]);
        assert_eq!(a.relu().data(), &[0.0, 0.5, 2.0]);
        assert_eq!(a.clamp(0.0, 1.0).data(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn allclose_tolerance() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0005, 2.0]);
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-4));
        assert!(!a.allclose(&Tensor::zeros(&[3]), 1.0));
    }
}
