//! Property-based tests over the tensor core.

use crate::{col2im, im2col, Conv2dGeom, Tensor};
use proptest::prelude::*;

fn small_tensor() -> impl Strategy<Value = Tensor> {
    (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]))
    })
}

proptest! {
    #[test]
    fn add_commutes(a in small_tensor()) {
        let b = a.map(|x| x * 0.5 + 1.0);
        prop_assert!((&a + &b).allclose(&(&b + &a), 1e-5));
    }

    #[test]
    fn add_zero_is_identity(a in small_tensor()) {
        let z = Tensor::zeros(a.dims());
        prop_assert_eq!(&a + &z, a);
    }

    #[test]
    fn double_negation_is_identity(a in small_tensor()) {
        prop_assert_eq!(-(-&a), a);
    }

    #[test]
    fn reshape_preserves_sum(a in small_tensor()) {
        let n = a.len();
        let flat = a.reshape(&[n]);
        prop_assert!((a.sum() - flat.sum()).abs() < 1e-3);
    }

    #[test]
    fn transpose_involution(a in small_tensor()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_distributes_over_add(
        seed in 0u64..1000,
        m in 1usize..4, k in 1usize..4, n in 1usize..4,
    ) {
        let mut rng = crate::TensorRng::seed_from(seed);
        let a = rng.uniform(&[m, k], -1.0, 1.0);
        let b = rng.uniform(&[k, n], -1.0, 1.0);
        let c = rng.uniform(&[k, n], -1.0, 1.0);
        let lhs = a.matmul(&(&b + &c));
        let rhs = a.matmul(&b) + a.matmul(&c);
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    #[test]
    fn softmax_rows_are_distributions(
        seed in 0u64..1000, r in 1usize..4, c in 1usize..6,
    ) {
        let mut rng = crate::TensorRng::seed_from(seed);
        let logits = rng.uniform(&[r, c], -10.0, 10.0);
        let p = logits.softmax_rows();
        for row in 0..r {
            let s: f32 = p.data()[row * c..(row + 1) * c].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
        }
        prop_assert!(p.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn im2col_col2im_adjoint(
        seed in 0u64..500,
        c in 1usize..3, h in 3usize..7, w in 3usize..7,
        k in 1usize..4, s in 1usize..3, p in 0usize..2,
    ) {
        prop_assume!(h + 2 * p >= k && w + 2 * p >= k);
        let g = Conv2dGeom { in_channels: c, height: h, width: w, kernel: k, stride: s, padding: p };
        let mut rng = crate::TensorRng::seed_from(seed);
        let x = rng.uniform(&[c, h, w], -1.0, 1.0);
        let cols = im2col(&x, &g);
        let y = rng.uniform(cols.dims(), -1.0, 1.0);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, &g);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn stack_then_index_roundtrip(a in small_tensor(), n in 1usize..4) {
        let parts: Vec<Tensor> = (0..n).map(|i| a.map(|x| x + i as f32)).collect();
        let stacked = Tensor::stack(&parts);
        for (i, p) in parts.iter().enumerate() {
            prop_assert_eq!(&stacked.index_axis0(i), p);
        }
    }

    #[test]
    fn parallel_matmul_bit_identical_across_thread_counts(
        seed in 0u64..1000,
        m in 0usize..9, k in 1usize..40, n in 1usize..40,
        zero_rate in 0.0f32..1.0,
    ) {
        // m = 0 is legal on the raw slice API (Shape forbids it, so the
        // sweep runs below the Tensor layer); n = 1 / k = 1 hit the
        // matvec-shaped and rank-1-update corners.
        let mut rng = crate::TensorRng::seed_from(seed);
        let mut a = vec![0.0f32; m * k];
        for v in &mut a {
            *v = if rng.unit() < zero_rate { 0.0 } else { rng.unit() * 2.0 - 1.0 };
        }
        let mut b = vec![0.0f32; k * n];
        for v in &mut b {
            *v = rng.unit() * 2.0 - 1.0;
        }
        let mut sequential = vec![0.0f32; m * n];
        crate::kernel::gemm_into_with_threads(&a, &b, &mut sequential, m, k, n, 1);
        for threads in [2usize, 4, 7] {
            let mut out = vec![f32::NAN; m * n];
            crate::kernel::gemm_into_with_threads(&a, &b, &mut out, m, k, n, threads);
            prop_assert_eq!(&out, &sequential);
        }
    }

    #[test]
    fn simd_gemm_bit_identical_to_scalar_fallback(
        seed in 0u64..1000,
        m in 0usize..9, k in 1usize..40, n in 1usize..40,
        zero_rate in 0.0f32..1.0,
    ) {
        // The dispatch contract: whatever ISA the host detects, f32
        // GEMM bits match the portable scalar path for every shape
        // (m=0 / n=1 / k=1 degenerates included) and thread count.
        // Flipping the global ISA mid-suite is safe for concurrently
        // running tests precisely because of this property.
        let mut rng = crate::TensorRng::seed_from(seed);
        let mut a = vec![0.0f32; m * k];
        for v in &mut a {
            *v = if rng.unit() < zero_rate { 0.0 } else { rng.unit() * 2.0 - 1.0 };
        }
        let mut b = vec![0.0f32; k * n];
        for v in &mut b {
            *v = rng.unit() * 2.0 - 1.0;
        }
        let detected = crate::kernel::Isa::detect();
        crate::kernel::set_isa(crate::kernel::Isa::Scalar);
        let mut scalar = vec![0.0f32; m * n];
        crate::kernel::gemm_into_with_threads(&a, &b, &mut scalar, m, k, n, 1);
        crate::kernel::set_isa(detected);
        for threads in [1usize, 2, 4, 7] {
            let mut out = vec![f32::NAN; m * n];
            crate::kernel::gemm_into_with_threads(&a, &b, &mut out, m, k, n, threads);
            prop_assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn quantized_gemm_identical_across_isa_and_threads(
        seed in 0u64..500,
        m in 1usize..6, k in 1usize..48, n in 1usize..6,
    ) {
        // Integer accumulation is exact, so the int8 GEMM must agree
        // bit-for-bit between the scalar and SIMD paths too.
        let mut rng = crate::TensorRng::seed_from(seed);
        let wa = rng.uniform(&[m, k], -2.0, 2.0);
        let wb = rng.uniform(&[n, k], -2.0, 2.0);
        let qa = crate::QTensor::quantize_rows(&wa);
        let qb = crate::QTensor::quantize_rows(&wb);
        let detected = crate::kernel::Isa::detect();
        crate::kernel::set_isa(crate::kernel::Isa::Scalar);
        let mut scalar = vec![f32::NAN; m * n];
        crate::qtensor::qgemm_transb_into(
            qa.data(), qa.scales(), qb.data(), qb.scales(), &mut scalar, m, k, n,
        );
        crate::kernel::set_isa(detected);
        let mut out = vec![f32::NAN; m * n];
        crate::qtensor::qgemm_transb_into(
            qa.data(), qa.scales(), qb.data(), qb.scales(), &mut out, m, k, n,
        );
        prop_assert_eq!(
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tiled_transpose_involution_across_tile_boundaries(
        seed in 0u64..1000, m in 1usize..48, n in 1usize..48,
    ) {
        // Up to 48 per axis so shapes land on both sides of the 32-wide
        // tile edge (partial tiles in one or both dimensions).
        let mut rng = crate::TensorRng::seed_from(seed);
        let a = rng.uniform(&[m, n], -1.0, 1.0);
        let t = a.transpose();
        prop_assert_eq!(t.dims(), &[n, m]);
        for i in 0..m.min(5) {
            for j in 0..n.min(5) {
                prop_assert_eq!(t.at(&[j, i]), a.at(&[i, j]));
            }
        }
        prop_assert_eq!(t.transpose(), a);
    }
}
