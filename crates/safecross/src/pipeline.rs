//! Multi-threaded staged execution of the SafeCross frame path.
//!
//! [`SafeCross::process_frame`] runs scene detection, VP preprocessing,
//! and classification back-to-back on one thread, so a slow
//! classification stalls the whole intersection feed.
//! [`SafeCross::run_pipelined`] runs the *same stage code* on three
//! worker threads connected by bounded channels, PipeSwitch-style:
//! while frame `t` is being classified, frame `t+1` is in VP and frame
//! `t+2` is in scene detection.
//!
//! Guarantees, in order of importance:
//!
//! 1. **Bit-identical output.** Each stage is internally sequential (it
//!    owns its mutable state and consumes frames in feed order over FIFO
//!    channels), so every stage sees exactly the state it would have seen
//!    in the sequential loop. `tests/pipeline_equivalence.rs` asserts
//!    equality of verdict and switch sequences against
//!    [`SafeCross::process_frame`].
//! 2. **Frame ordering.** Single-producer FIFO channels preserve feed
//!    order end-to-end; the collector additionally asserts that outcomes
//!    arrive in index order.
//! 3. **Backpressure, no drops.** Channels are bounded
//!    ([`PipelineConfig::channel_capacity`]); a slow stage blocks its
//!    upstream instead of queueing unboundedly. Dropping the feed ends
//!    the run cleanly: every in-flight frame still produces its outcome.
//!
//! The module also hosts the data-parallel batch path
//! ([`SafeCross::classify_clips_parallel`]): independent, already-built
//! clips sharded across a worker pool — the evaluation/bench shape of
//! parallelism, complementary to the latency-oriented staged pipeline.

use crate::errors::SafeCrossError;
use crate::framework::{classify_with_model, FrameOutcome, SafeCross, Verdict};
use safecross_modelswitch::SwitchReport;
use safecross_tensor::{KernelScratch, Tensor};
use safecross_trafficsim::Weather;
use safecross_videoclass::SlowFastLite;
use safecross_vision::GrayFrame;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvError, SyncSender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for [`SafeCross::run_pipelined`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Capacity of each inter-stage channel (minimum 1). Small values
    /// tighten memory and surface backpressure sooner; large values
    /// absorb burstier stage-time variance.
    pub channel_capacity: usize,
    /// Artificial per-frame delay injected before the classify stage —
    /// a fault-injection knob for backpressure/stress tests.
    pub classify_delay: Option<Duration>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            channel_capacity: 8,
            classify_delay: None,
        }
    }
}

/// Counters one pipeline stage reports after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Stage name (`"scene"`, `"vp"`, `"classify"`).
    pub name: &'static str,
    /// Frames received from upstream.
    pub frames_in: usize,
    /// Frames handed downstream.
    pub frames_out: usize,
    /// High-water mark of this stage's *input* queue depth. Depth is
    /// gauged outside the channel's own synchronisation, so the mark can
    /// read up to one above the configured capacity (a frame counted
    /// mid-handoff) — but never grows past `capacity + 1`, which is the
    /// boundedness guarantee the stress test pins down.
    pub queue_high_water: usize,
    /// Wall time spent inside the stage's compute (excludes channel
    /// waits).
    pub busy: Duration,
}

impl StageStats {
    fn new(name: &'static str) -> Self {
        StageStats {
            name,
            frames_in: 0,
            frames_out: 0,
            queue_high_water: 0,
            busy: Duration::ZERO,
        }
    }
}

/// Observability record of one pipelined run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineStats {
    /// Per-stage counters in pipeline order.
    pub stages: Vec<StageStats>,
    /// Frames fed into the pipeline.
    pub frames: usize,
    /// End-to-end wall time of the run.
    pub wall: Duration,
}

impl PipelineStats {
    /// The counters of one stage, by name.
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.name == name)
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pipeline: {} frames in {:?}", self.frames, self.wall)?;
        for s in &self.stages {
            writeln!(
                f,
                "  {:<9} in {:>6}  out {:>6}  queue high-water {:>3}  busy {:?}",
                s.name, s.frames_in, s.frames_out, s.queue_high_water, s.busy
            )?;
        }
        Ok(())
    }
}

/// Everything a pipelined run produced.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// One outcome per fed frame, in feed order — element `i` is
    /// bit-identical to what `process_frame` would have returned for
    /// frame `i`.
    pub outcomes: Vec<FrameOutcome>,
    /// Per-stage observability counters.
    pub stats: PipelineStats,
}

/// Queue-depth gauge shared by a channel's sender and receiver.
#[derive(Debug, Default)]
struct Gauge {
    depth: AtomicIsize,
    high: AtomicUsize,
}

impl Gauge {
    fn on_send(&self) {
        let d = self.depth.fetch_add(1, Ordering::SeqCst) + 1;
        if d > 0 {
            self.high.fetch_max(d as usize, Ordering::SeqCst);
        }
    }

    fn on_recv(&self) {
        self.depth.fetch_sub(1, Ordering::SeqCst);
    }

    fn high_water(&self) -> usize {
        self.high.load(Ordering::SeqCst)
    }
}

struct GaugedSender<T> {
    tx: SyncSender<T>,
    gauge: Arc<Gauge>,
}

impl<T> GaugedSender<T> {
    /// Sends with backpressure; `false` means the receiver hung up.
    fn send(&self, value: T) -> bool {
        if self.tx.send(value).is_ok() {
            self.gauge.on_send();
            true
        } else {
            false
        }
    }
}

struct GaugedReceiver<T> {
    rx: Receiver<T>,
    gauge: Arc<Gauge>,
}

impl<T> GaugedReceiver<T> {
    fn recv(&self) -> Result<T, RecvError> {
        let value = self.rx.recv()?;
        self.gauge.on_recv();
        Ok(value)
    }

    fn high_water(&self) -> usize {
        self.gauge.high_water()
    }
}

fn gauged_channel<T>(capacity: usize) -> (GaugedSender<T>, GaugedReceiver<T>) {
    let gauge = Arc::new(Gauge::default());
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
    (
        GaugedSender {
            tx,
            gauge: Arc::clone(&gauge),
        },
        GaugedReceiver { rx, gauge },
    )
}

struct SceneJob {
    index: usize,
    frame: GrayFrame,
}

struct VpJob {
    index: usize,
    frame: GrayFrame,
    scene_switch: Option<(Weather, SwitchReport)>,
    effective: Option<Weather>,
}

struct ClassifyJob {
    index: usize,
    scene_switch: Option<(Weather, SwitchReport)>,
    effective: Option<Weather>,
    clip: Option<Tensor>,
}

struct OutJob {
    index: usize,
    outcome: FrameOutcome,
}

impl SafeCross {
    /// Processes a frame stream through the staged pipeline: scene
    /// detection, VP, and classification run on separate threads with
    /// bounded channels between them, overlapping the per-frame work of
    /// consecutive frames.
    ///
    /// Output (outcome `i` per frame `i`, the verdict log, the switch
    /// log, and all stage state afterwards) is bit-identical to calling
    /// [`SafeCross::process_frame`] on the same frames in the same
    /// order; see the module docs for why.
    pub fn run_pipelined<I>(&mut self, frames: I, config: &PipelineConfig) -> PipelineRun
    where
        I: IntoIterator<Item = GrayFrame>,
        I::IntoIter: Send,
    {
        let start = Instant::now();
        let capacity = config.channel_capacity.max(1);
        let delay = config.classify_delay;
        let iter = frames.into_iter();
        let scene_stage = &mut self.scene_stage;
        let vp_stage = &mut self.vp_stage;
        let classify_stage = &mut self.classify_stage;

        let (outcomes, fed, stage_stats) = thread::scope(|s| {
            let (tx_in, rx_in) = gauged_channel::<SceneJob>(capacity);
            let (tx_scene, rx_scene) = gauged_channel::<VpJob>(capacity);
            let (tx_vp, rx_vp) = gauged_channel::<ClassifyJob>(capacity);
            let (tx_out, rx_out) = gauged_channel::<OutJob>(capacity);

            let feeder = s.spawn(move || {
                let mut fed = 0usize;
                for frame in iter {
                    if !tx_in.send(SceneJob { index: fed, frame }) {
                        break;
                    }
                    fed += 1;
                }
                fed
            });

            let scene_worker = s.spawn(move || {
                let mut stats = StageStats::new("scene");
                while let Ok(job) = rx_in.recv() {
                    stats.frames_in += 1;
                    let t = Instant::now();
                    let (scene_switch, effective) = scene_stage.step(&job.frame);
                    stats.busy += t.elapsed();
                    let sent = tx_scene.send(VpJob {
                        index: job.index,
                        frame: job.frame,
                        scene_switch,
                        effective,
                    });
                    if !sent {
                        break;
                    }
                    stats.frames_out += 1;
                }
                stats.queue_high_water = rx_in.high_water();
                stats
            });

            let vp_worker = s.spawn(move || {
                let mut stats = StageStats::new("vp");
                while let Ok(job) = rx_scene.recv() {
                    stats.frames_in += 1;
                    let t = Instant::now();
                    let clip = vp_stage.step(&job.frame);
                    stats.busy += t.elapsed();
                    let sent = tx_vp.send(ClassifyJob {
                        index: job.index,
                        scene_switch: job.scene_switch,
                        effective: job.effective,
                        clip,
                    });
                    if !sent {
                        break;
                    }
                    stats.frames_out += 1;
                }
                stats.queue_high_water = rx_scene.high_water();
                stats
            });

            let classify_worker = s.spawn(move || {
                let mut stats = StageStats::new("classify");
                while let Ok(job) = rx_vp.recv() {
                    stats.frames_in += 1;
                    if let Some(d) = delay {
                        thread::sleep(d);
                    }
                    let t = Instant::now();
                    let verdict = classify_stage.step(job.clip, job.effective);
                    stats.busy += t.elapsed();
                    let sent = tx_out.send(OutJob {
                        index: job.index,
                        outcome: FrameOutcome {
                            verdict,
                            scene_switch: job.scene_switch,
                        },
                    });
                    if !sent {
                        break;
                    }
                    stats.frames_out += 1;
                }
                stats.queue_high_water = rx_vp.high_water();
                stats
            });

            // Collect on the scope's own thread, asserting the ordering
            // guarantee as outcomes arrive.
            let mut outcomes = Vec::new();
            while let Ok(job) = rx_out.recv() {
                assert_eq!(
                    job.index,
                    outcomes.len(),
                    "pipeline delivered outcomes out of order"
                );
                outcomes.push(job.outcome);
            }
            let fed = feeder.join().expect("pipeline feeder panicked");
            let stage_stats = vec![
                scene_worker.join().expect("scene stage panicked"),
                vp_worker.join().expect("vp stage panicked"),
                classify_worker.join().expect("classify stage panicked"),
            ];
            (outcomes, fed, stage_stats)
        });

        assert_eq!(outcomes.len(), fed, "pipeline dropped frames");
        self.frames_seen += fed;
        for outcome in &outcomes {
            if let Some(v) = outcome.verdict {
                self.verdicts.push(v);
            }
        }
        let stats = PipelineStats {
            stages: stage_stats,
            frames: fed,
            wall: start.elapsed(),
        };
        self.record_pipeline_run(&stats);
        PipelineRun { outcomes, stats }
    }

    /// Mirrors one run's [`PipelineStats`] onto the shared telemetry
    /// registry, so pipelined runs and the sequential path export
    /// through the same snapshot.
    fn record_pipeline_run(&self, stats: &PipelineStats) {
        let registry = &self.registry;
        if !registry.is_enabled() {
            return;
        }
        registry.counter("pipe.runs").inc();
        registry.counter("pipe.frames").add(stats.frames as u64);
        let wall_ms = stats.wall.as_secs_f64() * 1e3;
        registry.histogram("pipe.wall_ms").observe_ms(wall_ms);
        let mut fields = vec![
            ("frames".to_owned(), stats.frames.into()),
            ("wall_ms".to_owned(), wall_ms.into()),
        ];
        for stage in &stats.stages {
            registry
                .histogram(&format!("pipe.{}.busy_ms", stage.name))
                .observe_duration(stage.busy);
            registry
                .gauge(&format!("pipe.{}.queue_high_water", stage.name))
                .set_max(stage.queue_high_water as f64);
            fields.push((
                format!("{}_busy_ms", stage.name),
                (stage.busy.as_secs_f64() * 1e3).into(),
            ));
        }
        registry.event("pipeline_run", fields);
    }

    /// Classifies a batch of independent, already-preprocessed clips by
    /// sharding them across `workers` threads, each with private model
    /// clones. Returns one verdict per job, in job order — identical to
    /// calling [`SafeCross::classify_clip`] per job sequentially.
    ///
    /// This is the throughput-oriented counterpart of
    /// [`SafeCross::run_pipelined`]: no cross-clip state exists, so the
    /// work is embarrassingly parallel.
    ///
    /// # Errors
    ///
    /// [`SafeCrossError::NoWorkers`] if `workers == 0`, and
    /// [`SafeCrossError::NoModel`] (checked up front, before any work
    /// runs) if any job names a weather without a registered model.
    pub fn classify_clips_parallel(
        &self,
        jobs: &[(Tensor, Weather)],
        workers: usize,
    ) -> Result<Vec<Verdict>, SafeCrossError> {
        if workers == 0 {
            return Err(SafeCrossError::NoWorkers);
        }
        for (_, weather) in jobs {
            if !self.classify_stage.models.contains_key(weather) {
                return Err(SafeCrossError::NoModel {
                    weather: *weather,
                    registered: self.registered_scenes(),
                });
            }
        }
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let chunk_len = jobs.len().div_ceil(workers);
        let models = &self.classify_stage.models;
        Ok(thread::scope(|s| {
            let handles: Vec<_> = jobs
                .chunks(chunk_len)
                .map(|chunk| {
                    s.spawn(move || {
                        // Each worker clones only the models its shard
                        // needs, lazily, and reuses one kernel scratch
                        // arena across its whole shard.
                        let mut local: HashMap<Weather, SlowFastLite> = HashMap::new();
                        let mut scratch = KernelScratch::new();
                        chunk
                            .iter()
                            .map(|(clip, weather)| {
                                let model = local
                                    .entry(*weather)
                                    .or_insert_with(|| models[weather].clone());
                                classify_with_model(model, clip, *weather, &mut scratch)
                            })
                            .collect::<Vec<Verdict>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("classification worker panicked"))
                .collect()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::SafeCrossConfig;
    use safecross_tensor::TensorRng;

    fn system() -> SafeCross {
        let mut rng = TensorRng::seed_from(0);
        let mut sc = SafeCross::try_new(SafeCrossConfig::default()).expect("default configuration is valid");
        sc.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng));
        sc
    }

    fn frames(n: usize) -> Vec<GrayFrame> {
        (0..n)
            .map(|i| GrayFrame::filled(320, 240, 80 + (i % 30) as u8))
            .collect()
    }

    #[test]
    fn pipelined_matches_sequential_on_a_simple_stream() {
        let stream = frames(40);
        let mut seq = system();
        let expected: Vec<FrameOutcome> =
            stream.iter().map(|f| seq.process_frame(f)).collect();

        let mut par = system();
        let run = par.run_pipelined(stream, &PipelineConfig::default());
        assert_eq!(run.outcomes, expected);
        assert_eq!(par.verdicts(), seq.verdicts());
        assert_eq!(par.frames_seen(), seq.frames_seen());
    }

    #[test]
    fn stats_account_for_every_frame() {
        let mut sc = system();
        let run = sc.run_pipelined(frames(37), &PipelineConfig::default());
        assert_eq!(run.stats.frames, 37);
        for stage in &run.stats.stages {
            assert_eq!(stage.frames_in, 37, "{} lost frames", stage.name);
            assert_eq!(stage.frames_out, 37, "{} lost frames", stage.name);
        }
        let printed = format!("{}", run.stats);
        assert!(printed.contains("classify"));
        assert!(run.stats.stage("vp").is_some());
        assert!(run.stats.stage("nonesuch").is_none());
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let mut sc = system();
        let run = sc.run_pipelined(Vec::new(), &PipelineConfig::default());
        assert!(run.outcomes.is_empty());
        assert_eq!(run.stats.frames, 0);
        assert_eq!(sc.frames_seen(), 0);
    }

    #[test]
    fn batch_classification_matches_sequential() {
        let mut sc = system();
        let mut rng = TensorRng::seed_from(5);
        let jobs: Vec<(Tensor, Weather)> = (0..9)
            .map(|_| (rng.uniform(&[1, 32, 20, 20], 0.0, 1.0), Weather::Daytime))
            .collect();
        let sequential: Vec<Verdict> = jobs
            .iter()
            .map(|(clip, w)| sc.classify_clip(clip, *w).unwrap())
            .collect();
        for workers in [1, 2, 4, 16] {
            assert_eq!(sc.classify_clips_parallel(&jobs, workers).unwrap(), sequential);
        }
        assert!(sc.classify_clips_parallel(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn batch_classification_checks_models_up_front() {
        use crate::errors::SafeCrossError;
        let sc = system();
        let jobs = vec![(Tensor::zeros(&[1, 32, 20, 20]), Weather::Snow)];
        let err = sc.classify_clips_parallel(&jobs, 2).unwrap_err();
        assert!(matches!(err, SafeCrossError::NoModel { weather: Weather::Snow, .. }));
        assert_eq!(
            sc.classify_clips_parallel(&jobs, 0).unwrap_err(),
            SafeCrossError::NoWorkers
        );
    }

    #[test]
    fn pipelined_run_exports_telemetry() {
        let mut rng = TensorRng::seed_from(1);
        let config = crate::framework::SafeCrossConfig::builder()
            .telemetry(true)
            .build()
            .unwrap();
        let mut sc = SafeCross::try_new(config).expect("validated configuration");
        sc.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng));
        let run = sc.run_pipelined(frames(35), &PipelineConfig::default());
        assert_eq!(run.stats.frames, 35);
        let snap = sc.telemetry().snapshot();
        assert_eq!(snap.counter("pipe.runs"), Some(1));
        assert_eq!(snap.counter("pipe.frames"), Some(35));
        assert_eq!(snap.counter("stage.scene.frames"), Some(35));
        assert_eq!(snap.counter("vp.frames"), Some(35));
        for stage in ["scene", "vp", "classify"] {
            let h = snap
                .histogram(&format!("pipe.{stage}.busy_ms"))
                .unwrap_or_else(|| panic!("missing pipe.{stage}.busy_ms"));
            assert_eq!(h.count, 1);
        }
        let events = sc.telemetry().events();
        assert!(events.iter().any(|e| e.name == "pipeline_run"));
    }
}
