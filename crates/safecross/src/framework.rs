//! The SafeCross orchestrator.

use crate::scene::SceneDetector;
use safecross_dataset::Class;
use safecross_modelswitch::{
    GpuSpec, ModelDesc, ModelSwitcher, SwitchOutcome, SwitchReport, SwitchStrategy,
};
use safecross_nn::Mode;
use safecross_tensor::Tensor;
use safecross_trafficsim::Weather;
use safecross_videoclass::{SlowFastLite, VideoClassifier};
use safecross_vision::{GrayFrame, PreprocessConfig, Preprocessor, SegmentBuffer};
use std::collections::HashMap;

/// Orchestrator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SafeCrossConfig {
    /// Camera frame width.
    pub frame_width: usize,
    /// Camera frame height.
    pub frame_height: usize,
    /// VP pipeline settings.
    pub preprocess: PreprocessConfig,
    /// Frames per classified segment (paper: 32).
    pub segment_frames: usize,
    /// Scene-detector voting window.
    pub scene_window: usize,
    /// Minimum softmax confidence to emit a verdict at all.
    pub min_confidence: f32,
}

impl Default for SafeCrossConfig {
    fn default() -> Self {
        SafeCrossConfig {
            frame_width: 320,
            frame_height: 240,
            preprocess: PreprocessConfig::default(),
            segment_frames: 32,
            scene_window: 8,
            min_confidence: 0.0,
        }
    }
}

/// A turn/no-turn verdict for the waiting left-turner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Predicted class at the decision keyframe.
    pub class: Class,
    /// Softmax confidence of that class.
    pub confidence: f32,
    /// Scene model that produced the verdict.
    pub weather: Weather,
}

impl Verdict {
    /// Whether the verdict warns against turning.
    pub fn is_warning(&self) -> bool {
        self.class == Class::Danger
    }
}

/// Everything one camera frame produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameOutcome {
    /// A classification verdict, once the segment buffer is full.
    pub verdict: Option<Verdict>,
    /// A model switch triggered by a scene change, with its simulated
    /// latency report.
    pub scene_switch: Option<(Weather, SwitchReport)>,
}

/// The deployed SafeCross system: VP -> VC with FL-produced per-scene
/// models and MS-managed switching.
pub struct SafeCross {
    config: SafeCrossConfig,
    vp: Preprocessor,
    buffer: SegmentBuffer,
    scene: SceneDetector,
    models: HashMap<Weather, SlowFastLite>,
    switcher: ModelSwitcher,
    verdicts: Vec<Verdict>,
    frames_seen: usize,
}

impl SafeCross {
    /// Creates a system with no registered models (register at least the
    /// daytime model before expecting verdicts).
    pub fn new(config: SafeCrossConfig) -> Self {
        let switcher = ModelSwitcher::new(
            GpuSpec::rtx_2080_ti(),
            11_000_000_000,
            SwitchStrategy::PipelinedOptimal,
        );
        SafeCross {
            config,
            vp: Preprocessor::new(config.frame_width, config.frame_height, config.preprocess),
            buffer: SegmentBuffer::new(config.segment_frames),
            scene: SceneDetector::new(config.scene_window),
            models: HashMap::new(),
            switcher,
            verdicts: Vec::new(),
            frames_seen: 0,
        }
    }

    /// Registers the classifier for one weather scene (the FL module's
    /// output). The first registered model becomes active.
    pub fn register_model(&mut self, weather: Weather, model: SlowFastLite) {
        let desc = ModelDesc::from_state_sizes(
            weather.label(),
            &model
                .state_dict()
                .iter()
                .map(|(n, t)| (n.clone(), t.len()))
                .collect::<Vec<_>>(),
            36.0e9,
        );
        self.switcher.register(weather.label(), desc);
        if self.models.is_empty() {
            self.switcher.switch_to(weather.label());
        }
        self.models.insert(weather, model);
    }

    /// Scenes with a registered model.
    pub fn registered_scenes(&self) -> Vec<Weather> {
        let mut scenes: Vec<Weather> = self.models.keys().copied().collect();
        scenes.sort_by_key(|w| w.label());
        scenes
    }

    /// The scene the detector currently believes in.
    pub fn current_scene(&self) -> Weather {
        self.scene.current()
    }

    /// Total frames processed.
    pub fn frames_seen(&self) -> usize {
        self.frames_seen
    }

    /// All verdicts emitted so far.
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// The simulated switch log `(model, latency_ms)`.
    pub fn switch_log(&self) -> Vec<(String, f64)> {
        self.switcher.switch_log()
    }

    /// Consumes one camera frame: scene detection (and model switch if
    /// the scene flipped), VP, and — once a full segment is buffered — a
    /// VC verdict.
    pub fn process_frame(&mut self, frame: &GrayFrame) -> FrameOutcome {
        self.frames_seen += 1;
        let mut scene_switch = None;
        if let Some(new_scene) = self.scene.observe(frame) {
            if self.models.contains_key(&new_scene) {
                if let SwitchOutcome::Switched(report) =
                    self.switcher.switch_to(new_scene.label())
                {
                    scene_switch = Some((new_scene, report));
                }
            }
        }
        let grid = self.vp.process(frame);
        self.buffer.push(grid);
        let verdict = self.classify_buffer();
        if let Some(v) = verdict {
            self.verdicts.push(v);
        }
        FrameOutcome {
            verdict,
            scene_switch,
        }
    }

    /// Classifies the current buffer if full and a model is available.
    fn classify_buffer(&mut self) -> Option<Verdict> {
        let clip = self.buffer.as_clip()?;
        let weather = self.effective_scene()?;
        let model = self.models.get_mut(&weather)?;
        let dims = clip.dims().to_vec();
        let batch = clip.reshape(&[1, dims[0], dims[1], dims[2], dims[3]]);
        let logits = model.forward(&batch, Mode::Eval);
        let probs = logits.softmax_rows();
        let class_idx = probs.argmax_rows()[0];
        let confidence = probs.at(&[0, class_idx]);
        if confidence < self.config.min_confidence {
            return None;
        }
        Some(Verdict {
            class: Class::from_index(class_idx),
            confidence,
            weather,
        })
    }

    /// The scene whose model should run: the detected scene when a model
    /// exists for it, else the daytime fallback.
    fn effective_scene(&self) -> Option<Weather> {
        let detected = self.scene.current();
        if self.models.contains_key(&detected) {
            Some(detected)
        } else if self.models.contains_key(&Weather::Daytime) {
            Some(Weather::Daytime)
        } else {
            self.models.keys().next().copied()
        }
    }

    /// Classifies one externally-prepared clip (`[1, T, H, W]`) with the
    /// model for `weather` — the batch path used by the evaluation
    /// harnesses.
    ///
    /// # Panics
    ///
    /// Panics if no model is registered for `weather`.
    pub fn classify_clip(&mut self, clip: &Tensor, weather: Weather) -> Verdict {
        let model = self
            .models
            .get_mut(&weather)
            .unwrap_or_else(|| panic!("no model registered for {weather}"));
        let dims = clip.dims().to_vec();
        let batch = clip.reshape(&[1, dims[0], dims[1], dims[2], dims[3]]);
        let logits = model.forward(&batch, Mode::Eval);
        let probs = logits.softmax_rows();
        let class_idx = probs.argmax_rows()[0];
        Verdict {
            class: Class::from_index(class_idx),
            confidence: probs.at(&[0, class_idx]),
            weather,
        }
    }
}

impl std::fmt::Debug for SafeCross {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SafeCross(scene {}, {} models, {} frames seen, {} verdicts)",
            self.scene.current(),
            self.models.len(),
            self.frames_seen,
            self.verdicts.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safecross_tensor::TensorRng;
    use safecross_trafficsim::{Renderer, RenderConfig, Scenario, Simulator};

    fn system_with_models() -> SafeCross {
        let mut rng = TensorRng::seed_from(0);
        let mut sc = SafeCross::new(SafeCrossConfig::default());
        sc.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng));
        sc.register_model(Weather::Snow, SlowFastLite::new(2, &mut rng));
        sc.register_model(Weather::Rain, SlowFastLite::new(2, &mut rng));
        sc
    }

    #[test]
    fn needs_full_buffer_for_verdict() {
        let mut sc = system_with_models();
        let frame = GrayFrame::filled(320, 240, 90);
        for i in 0..31 {
            let out = sc.process_frame(&frame);
            assert!(out.verdict.is_none(), "frame {i} produced early verdict");
        }
        let out = sc.process_frame(&frame);
        assert!(out.verdict.is_some());
        assert_eq!(sc.frames_seen(), 32);
        assert_eq!(sc.verdicts().len(), 1);
    }

    #[test]
    fn scene_change_triggers_model_switch() {
        let mut sc = system_with_models();
        let mut sim = Simulator::new(Scenario::new(Weather::Snow, true, 0.2), 1);
        let mut renderer = Renderer::new(RenderConfig::default(), Weather::Snow, 1);
        let mut switched = None;
        for _ in 0..20 {
            sim.step(1.0 / 30.0);
            let frame = renderer.render(&sim);
            let out = sc.process_frame(&frame);
            if let Some((scene, report)) = out.scene_switch {
                switched = Some((scene, report));
            }
        }
        let (scene, report) = switched.expect("snow frames should switch the model");
        assert_eq!(scene, Weather::Snow);
        assert!(report.switch_overhead_ms < 10.0);
        assert_eq!(sc.current_scene(), Weather::Snow);
        // The switch log recorded daytime (initial) then snow.
        let log = sc.switch_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[1].0, "snow");
    }

    #[test]
    fn classify_clip_batches() {
        let mut sc = system_with_models();
        let clip = Tensor::zeros(&[1, 32, 20, 20]);
        let v = sc.classify_clip(&clip, Weather::Daytime);
        assert!(v.confidence >= 0.5);
        assert_eq!(v.weather, Weather::Daytime);
    }

    #[test]
    fn fallback_to_daytime_model() {
        let mut rng = TensorRng::seed_from(1);
        let mut sc = SafeCross::new(SafeCrossConfig::default());
        sc.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng));
        // Snow frames but no snow model: the daytime model still answers.
        let bright = GrayFrame::filled(320, 240, 150);
        for _ in 0..32 {
            sc.process_frame(&bright);
        }
        assert!(!sc.verdicts().is_empty());
        assert_eq!(sc.verdicts()[0].weather, Weather::Daytime);
    }

    #[test]
    #[should_panic(expected = "no model registered")]
    fn classify_without_model_panics() {
        let mut sc = SafeCross::new(SafeCrossConfig::default());
        sc.classify_clip(&Tensor::zeros(&[1, 32, 20, 20]), Weather::Rain);
    }

    #[test]
    fn verdict_warning_semantics() {
        let warn = Verdict { class: Class::Danger, confidence: 0.9, weather: Weather::Daytime };
        let clear = Verdict { class: Class::Safe, confidence: 0.9, weather: Weather::Daytime };
        assert!(warn.is_warning());
        assert!(!clear.is_warning());
    }

    #[test]
    fn min_confidence_gates_verdicts() {
        let mut rng = TensorRng::seed_from(9);
        let mut sc = SafeCross::new(SafeCrossConfig {
            min_confidence: 0.999, // an untrained model never reaches this
            ..SafeCrossConfig::default()
        });
        sc.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng));
        let frame = GrayFrame::filled(320, 240, 90);
        for _ in 0..35 {
            sc.process_frame(&frame);
        }
        assert!(sc.verdicts().is_empty(), "low-confidence verdicts leaked");
    }

    #[test]
    fn debug_output_is_informative() {
        let sc = system_with_models();
        let s = format!("{sc:?}");
        assert!(s.contains("SafeCross"));
        assert!(s.contains("3 models"));
    }
}
