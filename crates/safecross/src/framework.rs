//! The SafeCross orchestrator.
//!
//! The per-frame work is factored into three *stages* — scene detection
//! plus model switching ([`SceneStage`]), VP preprocessing plus segment
//! assembly ([`VpStage`]), and clip classification ([`ClassifyStage`]).
//! [`SafeCross::process_frame`] drives them back-to-back on the calling
//! thread; [`SafeCross::run_pipelined`](crate::pipeline) drives the very
//! same stage code on overlapping worker threads. Because both paths
//! execute identical stage transitions in identical frame order, their
//! outputs are bit-identical — the property `tests/pipeline_equivalence.rs`
//! locks in.

use crate::errors::{ConfigError, SafeCrossError};
use crate::scene::SceneDetector;
use safecross_dataset::Class;
use safecross_modelswitch::{
    GpuSpec, ModelRegistry, ModelSwitcher, SwitchError, SwitchFaultHook, SwitchOutcome,
    SwitchRecord, SwitchReport, SwitchStrategy,
};
use safecross_nn::Mode;
use safecross_telemetry::{Counter, Histogram, Registry};
use safecross_tensor::kernel::{self, GemmObserverFn};
use safecross_tensor::{KernelScratch, Tensor};
use safecross_trafficsim::Weather;
use safecross_videoclass::{SlowFastLite, VideoClassifier};
use safecross_vision::{GrayFrame, PreprocessConfig, Preprocessor, SegmentBuffer};
use std::collections::HashMap;
use std::sync::Arc;

/// Orchestrator configuration.
///
/// Construct via [`SafeCrossConfig::builder`] to get validation at
/// build time, or fill the fields directly and let
/// [`SafeCross::try_new`] validate.
#[derive(Debug, Clone, Copy)]
pub struct SafeCrossConfig {
    /// Camera frame width.
    pub frame_width: usize,
    /// Camera frame height.
    pub frame_height: usize,
    /// VP pipeline settings.
    pub preprocess: PreprocessConfig,
    /// Frames per classified segment (paper: 32).
    pub segment_frames: usize,
    /// Scene-detector voting window.
    pub scene_window: usize,
    /// Minimum softmax confidence to emit a verdict at all.
    pub min_confidence: f32,
    /// Whether the built-in telemetry registry records anything. When
    /// `false` (the default) every metric handle is inert and the frame
    /// path never reads the clock for instrumentation.
    pub telemetry: bool,
}

impl Default for SafeCrossConfig {
    fn default() -> Self {
        SafeCrossConfig {
            frame_width: 320,
            frame_height: 240,
            preprocess: PreprocessConfig::default(),
            segment_frames: 32,
            scene_window: 8,
            min_confidence: 0.0,
            telemetry: false,
        }
    }
}

impl SafeCrossConfig {
    /// Starts a builder seeded with the defaults.
    pub fn builder() -> SafeCrossConfigBuilder {
        SafeCrossConfigBuilder {
            config: SafeCrossConfig::default(),
        }
    }

    /// Checks every invariant the orchestrator relies on.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.frame_width == 0 || self.frame_height == 0 {
            return Err(ConfigError::EmptyFrame {
                frame_width: self.frame_width,
                frame_height: self.frame_height,
            });
        }
        if self.segment_frames < 2 {
            return Err(ConfigError::SegmentTooShort {
                segment_frames: self.segment_frames,
            });
        }
        if self.scene_window == 0 {
            return Err(ConfigError::EmptySceneWindow);
        }
        if !self.min_confidence.is_finite() || !(0.0..=1.0).contains(&self.min_confidence) {
            return Err(ConfigError::BadConfidence {
                min_confidence: self.min_confidence,
            });
        }
        Ok(())
    }
}

/// Fluent, validating constructor for [`SafeCrossConfig`].
///
/// ```
/// use safecross::SafeCrossConfig;
///
/// let config = SafeCrossConfig::builder()
///     .frame_size(320, 240)
///     .segment_frames(32)
///     .min_confidence(0.25)
///     .telemetry(true)
///     .build()
///     .expect("valid configuration");
/// assert!(config.telemetry);
/// ```
#[derive(Debug, Clone)]
pub struct SafeCrossConfigBuilder {
    config: SafeCrossConfig,
}

impl SafeCrossConfigBuilder {
    /// Camera frame dimensions.
    pub fn frame_size(mut self, width: usize, height: usize) -> Self {
        self.config.frame_width = width;
        self.config.frame_height = height;
        self
    }

    /// VP pipeline settings.
    pub fn preprocess(mut self, preprocess: PreprocessConfig) -> Self {
        self.config.preprocess = preprocess;
        self
    }

    /// Frames per classified segment (paper: 32).
    pub fn segment_frames(mut self, segment_frames: usize) -> Self {
        self.config.segment_frames = segment_frames;
        self
    }

    /// Scene-detector voting window.
    pub fn scene_window(mut self, scene_window: usize) -> Self {
        self.config.scene_window = scene_window;
        self
    }

    /// Minimum softmax confidence to emit a verdict.
    pub fn min_confidence(mut self, min_confidence: f32) -> Self {
        self.config.min_confidence = min_confidence;
        self
    }

    /// Enables or disables the telemetry registry.
    pub fn telemetry(mut self, telemetry: bool) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`ConfigError`].
    pub fn build(self) -> Result<SafeCrossConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A turn/no-turn verdict for the waiting left-turner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Predicted class at the decision keyframe.
    pub class: Class,
    /// Softmax confidence of that class.
    pub confidence: f32,
    /// Scene model that produced the verdict.
    pub weather: Weather,
}

impl Verdict {
    /// Whether the verdict warns against turning.
    pub fn is_warning(&self) -> bool {
        self.class == Class::Danger
    }
}

/// Everything one camera frame produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameOutcome {
    /// A classification verdict, once the segment buffer is full.
    pub verdict: Option<Verdict>,
    /// A model switch triggered by a scene change, with its simulated
    /// latency report.
    pub scene_switch: Option<(Weather, SwitchReport)>,
}

/// The output of the pre-classification half of the frame path
/// ([`SafeCross::prepare_frame`]): everything scene detection and VP
/// produced for one frame, ready for classification.
///
/// A serving layer can run many sessions' `prepare_frame` calls locally
/// and funnel the clips into shared, batched inference, then hand each
/// raw verdict back through [`SafeCross::complete_frame`]. Driving the
/// two halves back-to-back with the session's own models is exactly
/// [`SafeCross::process_frame`].
#[derive(Debug, Clone)]
pub struct FramePrep {
    /// A model switch triggered by this frame's scene vote.
    pub scene_switch: Option<(Weather, SwitchReport)>,
    /// The scene whose model should classify this frame (the detected
    /// scene, the daytime fallback, or the first registered scene).
    pub effective: Option<Weather>,
    /// The assembled `[1, T, H, W]` clip, once the segment buffer is
    /// full.
    pub clip: Option<Tensor>,
}

/// FLOP budget attributed to a scene checkpoint's switch descriptor —
/// the cost model every scene registration (and continual-learning
/// promotion) derives its transfer timeline from.
pub const SCENE_TOTAL_FLOPS: f64 = 36.0e9;

/// Stage 1: scene detection and model switching.
///
/// Owns the voting-window detector and the MS runtime. Sequential per
/// frame (the voting window is stateful), but independent of the VP and
/// classification state, so it can run on its own pipeline thread.
pub(crate) struct SceneStage {
    scene: SceneDetector,
    switcher: ModelSwitcher,
    /// Scenes with a registered model, in registration order. The first
    /// entry doubles as the deterministic fallback when neither the
    /// detected scene nor daytime has a model.
    registered: Vec<Weather>,
    /// Checkpoint name bound to each scene. Starts as the weather label
    /// at registration; continual-learning promotions rebind a scene to
    /// an adapted challenger ([`SafeCross::bind_scene_model`]), and
    /// every later switch onto that scene activates the bound name.
    names: HashMap<Weather, Arc<str>>,
    /// Frames this stage has consumed. Owned by the stage (not the
    /// orchestrator) so the frame index attributed to a switch is the
    /// same in sequential and pipelined execution.
    frames: u64,
    frames_total: Counter,
    step_ms: Histogram,
}

impl SceneStage {
    fn new(scene_window: usize, registry: &Registry) -> Self {
        let switcher = ModelSwitcher::new(
            GpuSpec::rtx_2080_ti(),
            11_000_000_000,
            SwitchStrategy::PipelinedOptimal,
        );
        switcher.instrument(registry);
        SceneStage {
            scene: SceneDetector::new(scene_window),
            switcher,
            registered: Vec::new(),
            names: HashMap::new(),
            frames: 0,
            frames_total: registry.counter("stage.scene.frames"),
            step_ms: registry.histogram("stage.scene.step_ms"),
        }
    }

    /// Consumes one frame: updates the scene vote, performs a model
    /// switch when the vote flips onto a registered scene, and reports
    /// the scene whose model should classify this frame.
    pub(crate) fn step(
        &mut self,
        frame: &GrayFrame,
    ) -> (Option<(Weather, SwitchReport)>, Option<Weather>) {
        let _t = self.step_ms.start_timer();
        self.frames_total.inc();
        let frame_index = self.frames;
        self.frames += 1;
        let mut scene_switch = None;
        if let Some(new_scene) = self.scene.observe(frame) {
            if self.registered.contains(&new_scene) {
                let name = self.model_name(new_scene);
                // The registered-scene guard makes an error here
                // unreachable; a refused switch just means no swap.
                if let Ok(SwitchOutcome::Switched(report)) =
                    self.switcher.switch_to_at(name.as_ref(), frame_index)
                {
                    scene_switch = Some((new_scene, report));
                }
            }
        }
        (scene_switch, self.effective_scene())
    }

    /// The checkpoint name bound to `weather`: the promotion-bound
    /// challenger if one was promoted, else the weather label itself.
    fn model_name(&self, weather: Weather) -> Arc<str> {
        self.names
            .get(&weather)
            .cloned()
            .unwrap_or_else(|| Arc::from(weather.label()))
    }

    /// The scene whose model should run: the detected scene when a model
    /// exists for it, else the daytime fallback, else the first
    /// registered scene.
    fn effective_scene(&self) -> Option<Weather> {
        let detected = self.scene.current();
        if self.registered.contains(&detected) {
            Some(detected)
        } else if self.registered.contains(&Weather::Daytime) {
            Some(Weather::Daytime)
        } else {
            self.registered.first().copied()
        }
    }
}

/// Stage 2: VP preprocessing and segment assembly.
///
/// Owns the background-subtraction state and the sliding segment buffer;
/// emits a full `[1, T, H, W]` clip once the buffer fills.
pub(crate) struct VpStage {
    vp: Preprocessor,
    buffer: SegmentBuffer,
    step_ms: Histogram,
}

impl VpStage {
    fn new(config: &SafeCrossConfig, registry: &Registry) -> Self {
        let mut vp = Preprocessor::new(config.frame_width, config.frame_height, config.preprocess);
        vp.instrument(registry);
        VpStage {
            vp,
            buffer: SegmentBuffer::new(config.segment_frames),
            step_ms: registry.histogram("stage.vp.step_ms"),
        }
    }

    /// Consumes one frame; returns the assembled clip when the segment
    /// buffer is full.
    pub(crate) fn step(&mut self, frame: &GrayFrame) -> Option<Tensor> {
        let _t = self.step_ms.start_timer();
        let grid = self.vp.process(frame);
        self.buffer.push(grid);
        self.buffer.as_clip()
    }
}

/// Stage 3: clip classification with the per-scene models.
pub(crate) struct ClassifyStage {
    pub(crate) models: HashMap<Weather, SlowFastLite>,
    /// Kernel scratch arena reused across every clip this stage
    /// classifies; after the first few clips the steady-state forward
    /// pass performs no heap allocation at all.
    pub(crate) scratch: KernelScratch,
    min_confidence: f32,
    step_ms: Histogram,
    verdicts_total: Counter,
}

impl ClassifyStage {
    fn new(config: &SafeCrossConfig, registry: &Registry) -> Self {
        ClassifyStage {
            models: HashMap::new(),
            scratch: KernelScratch::new(),
            min_confidence: config.min_confidence,
            step_ms: registry.histogram("stage.classify.step_ms"),
            verdicts_total: registry.counter("stage.classify.verdicts"),
        }
    }

    /// Classifies a clip with the model for `scene`, gating on the
    /// configured minimum confidence.
    pub(crate) fn step(&mut self, clip: Option<Tensor>, scene: Option<Weather>) -> Option<Verdict> {
        let raw = self.classify(clip.as_ref(), scene);
        self.accept(raw)
    }

    /// The lookup-and-forward half: classifies a clip with this
    /// session's own model for `scene`, without confidence gating.
    fn classify(&mut self, clip: Option<&Tensor>, scene: Option<Weather>) -> Option<Verdict> {
        let _t = self.step_ms.start_timer();
        let clip = clip?;
        let weather = scene?;
        let model = self.models.get_mut(&weather)?;
        Some(classify_with_model(model, clip, weather, &mut self.scratch))
    }

    /// The gating half: applies the minimum-confidence threshold to a
    /// raw verdict (however it was computed) and counts accepted ones.
    pub(crate) fn accept(&mut self, raw: Option<Verdict>) -> Option<Verdict> {
        let verdict = raw?;
        if verdict.confidence < self.min_confidence {
            return None;
        }
        self.verdicts_total.inc();
        Some(verdict)
    }
}

/// The shared classification kernel: every verdict in the system —
/// sequential, pipelined, batch-parallel, or served — goes through this
/// one function, so the numeric path is identical everywhere. The
/// verdict is **not** confidence-gated; feed it through
/// [`SafeCross::complete_frame`] (or compare against
/// [`SafeCrossConfig::min_confidence`]) for that.
///
/// `scratch` is the caller-owned kernel arena: once it has warmed up
/// (a few clips), classification performs no heap allocation — every
/// intermediate, including the batched clip view and the probability
/// row, cycles through the pool.
pub fn classify_with_model(
    model: &mut SlowFastLite,
    clip: &Tensor,
    weather: Weather,
    scratch: &mut KernelScratch,
) -> Verdict {
    let d = clip.dims();
    assert_eq!(d.len(), 4, "expected a [C, T, H, W] clip");
    let mut batch = scratch.take_tensor(&[1, d[0], d[1], d[2], d[3]]);
    batch.data_mut().copy_from_slice(clip.data());
    let logits = model.forward_scratch(&batch, Mode::Eval, scratch);
    scratch.recycle_tensor(batch);
    let k = logits.shape().dim(1);
    let mut probs = scratch.take(k);
    let (class_idx, confidence) = top_class_from_logits(&logits.data()[..k], &mut probs);
    scratch.recycle(probs);
    scratch.recycle_tensor(logits);
    Verdict {
        class: Class::from_index(class_idx),
        confidence,
        weather,
    }
}

/// Softmax + argmax over one logit row, written into a caller-provided
/// probability buffer. Arithmetic is expression-for-expression identical
/// to [`Tensor::softmax_rows`] followed by [`Tensor::argmax_rows`] (same
/// max-shift, same accumulation order, same strict `>` first-on-ties
/// argmax), so verdicts computed through this allocation-free path are
/// bit-identical to the tensor-op path.
///
/// # Panics
///
/// Panics if `probs` is shorter than `row`.
pub fn top_class_from_logits(row: &[f32], probs: &mut [f32]) -> (usize, f32) {
    let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut z = 0.0;
    for (p, &v) in probs.iter_mut().zip(row) {
        *p = (v - m).exp();
        z += *p;
    }
    for p in &mut probs[..row.len()] {
        *p /= z;
    }
    let mut best = 0;
    for (i, &v) in probs[..row.len()].iter().enumerate() {
        if v > probs[best] {
            best = i;
        }
    }
    (best, probs[best])
}

/// The deployed SafeCross system: VP -> VC with FL-produced per-scene
/// models and MS-managed switching.
pub struct SafeCross {
    pub(crate) config: SafeCrossConfig,
    pub(crate) registry: Registry,
    /// Content-addressed store holding every registered checkpoint's
    /// layer-group blobs. Private to this session unless a serving layer
    /// shares one handle across sessions
    /// ([`SafeCross::share_model_store`]), in which case per-weather
    /// weights are held once for the whole fleet.
    pub(crate) model_store: ModelRegistry,
    pub(crate) scene_stage: SceneStage,
    pub(crate) vp_stage: VpStage,
    pub(crate) classify_stage: ClassifyStage,
    pub(crate) verdicts: Vec<Verdict>,
    pub(crate) frames_seen: usize,
    /// Strong handle keeping the `nn.gemm.*` telemetry bridge alive in
    /// the kernel layer's observer registry; the registry itself only
    /// holds a `Weak`, so dropping the system unhooks the observer.
    _gemm_observer: Option<Arc<GemmObserverFn>>,
}

impl SafeCross {
    /// Creates a system with no registered models (register at least the
    /// daytime model before expecting verdicts).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`SafeCross::try_new`] to handle that as a value.
    #[deprecated(
        since = "0.1.0",
        note = "panics on invalid configurations; migrate to `SafeCross::try_new`, \
                which returns the violated invariant as a `ConfigError` value"
    )]
    pub fn new(config: SafeCrossConfig) -> Self {
        match SafeCross::try_new(config) {
            Ok(system) => system,
            Err(e) => panic!("invalid SafeCross configuration: {e}"),
        }
    }

    /// Creates a system after validating `config`. When
    /// `config.telemetry` is set, the system carries a live
    /// [`Registry`] (see [`SafeCross::telemetry`]); otherwise every
    /// instrument is inert and costs one branch per use.
    ///
    /// # Errors
    ///
    /// The first violated configuration invariant.
    pub fn try_new(config: SafeCrossConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let registry = if config.telemetry {
            Registry::new()
        } else {
            Registry::disabled()
        };
        // Bridge the kernel layer's GEMM samples into this system's
        // registry. Only live (telemetry-enabled) systems register, so a
        // disabled system never makes the kernel layer read the clock.
        let gemm_observer = if config.telemetry {
            let calls = registry.counter("nn.gemm.calls");
            let flops = registry.counter("nn.gemm.flops");
            let ms = registry.histogram("nn.gemm.ms");
            let observer: Arc<GemmObserverFn> = Arc::new(move |sample| {
                calls.inc();
                flops.add(sample.flops());
                ms.observe_ms(sample.elapsed_ms);
            });
            kernel::register_gemm_observer(&observer);
            Some(observer)
        } else {
            None
        };
        let model_store = ModelRegistry::new();
        model_store.instrument(&registry);
        let scene_stage = SceneStage::new(config.scene_window, &registry);
        scene_stage.switcher.attach_store(&model_store);
        Ok(SafeCross {
            config,
            model_store,
            scene_stage,
            vp_stage: VpStage::new(&config, &registry),
            classify_stage: ClassifyStage::new(&config, &registry),
            verdicts: Vec::new(),
            frames_seen: 0,
            registry,
            _gemm_observer: gemm_observer,
        })
    }

    /// Registers the classifier for one weather scene (the FL module's
    /// output). The first registered model becomes active.
    ///
    /// The checkpoint is stored in the [`ModelRegistry`] as
    /// content-addressed layer groups, and the session's resident copy
    /// is resolved back *through the store* — so the weights this
    /// session classifies with are bit-identical to the stored
    /// checkpoint, and identical groups across weather checkpoints are
    /// held once.
    pub fn register_model(&mut self, weather: Weather, mut model: SlowFastLite) {
        self.register_scene(weather, &model);
        let state = self
            .model_store
            .state_dict(weather.label())
            .expect("checkpoint was stored by register_scene");
        model.load_state_dict(&state);
        model.instrument(&self.registry);
        self.classify_stage.models.insert(weather, model);
    }

    /// Registers a weather scene for detection and model switching
    /// *without* storing a local copy of the classifier — `model` is
    /// only measured to build the switcher's transfer descriptor.
    ///
    /// This is the serving-layer entry point: a fleet front keeps one
    /// shared copy of each scene model and runs classification
    /// centrally (see `safecross-serve`), while every session still
    /// owns its scene detector and switcher so its switch log is
    /// bit-identical to a standalone run that called
    /// [`SafeCross::register_model`] with the same models. A session
    /// set up this way never classifies locally:
    /// [`SafeCross::process_frame`] yields no verdicts; pair
    /// [`SafeCross::prepare_frame`] with external classification and
    /// [`SafeCross::complete_frame`] instead. Either way the checkpoint
    /// lands in the [`ModelRegistry`] and the switcher's transfer
    /// descriptor is derived from its layer-group manifest, so a switch
    /// moves the checkpoint's real bytes.
    pub fn register_scene(&mut self, weather: Weather, model: &SlowFastLite) {
        self.model_store
            .register_model(weather.label(), &model.state_groups());
        self.scene_stage
            .switcher
            .register_from_store(weather.label(), SCENE_TOTAL_FLOPS)
            .expect("checkpoint was just stored");
        if self.scene_stage.registered.is_empty() {
            self.scene_stage
                .switcher
                .switch_to(weather.label())
                .expect("first registered model must fit the empty GPU pool");
        }
        if !self.scene_stage.registered.contains(&weather) {
            self.scene_stage.registered.push(weather);
            self.scene_stage
                .names
                .insert(weather, Arc::from(weather.label()));
        }
    }

    /// Rebinds the scene `weather` to the stored checkpoint `name` and
    /// activates it — the continual-learning promotion entry point.
    ///
    /// Returns `Ok(true)` when the challenger was activated (the
    /// switcher swapped onto its real weights and every later switch
    /// onto this scene uses it), or `Ok(false)` when the promotion was
    /// *deferred* without binding anything: the scene is not the one
    /// currently classified, and activating a model the stream is not
    /// running would perturb the switch log of an unaffected scene.
    ///
    /// # Errors
    ///
    /// [`SwitchError::UnknownModel`] if `weather` has no registered
    /// scene or `name` is not in the model store;
    /// [`SwitchError::OutOfMemory`] if activation failed — the
    /// switcher's rollback machinery has already restored the previous
    /// resident model, and no binding is changed.
    pub fn bind_scene_model(&mut self, weather: Weather, name: &str) -> Result<bool, SwitchError> {
        if !self.scene_stage.registered.contains(&weather) {
            return Err(SwitchError::UnknownModel {
                name: name.to_owned(),
                registered: self
                    .scene_stage
                    .registered
                    .iter()
                    .map(|w| w.label().to_owned())
                    .collect(),
            });
        }
        if !self.model_store.contains(name) {
            return Err(SwitchError::UnknownModel {
                name: name.to_owned(),
                registered: self.model_store.models(),
            });
        }
        if self.scene_stage.effective_scene() != Some(weather) {
            return Ok(false);
        }
        self.scene_stage
            .switcher
            .register_from_store(name, SCENE_TOTAL_FLOPS)?;
        self.scene_stage
            .switcher
            .switch_to_at(name, self.scene_stage.frames)?;
        self.scene_stage.names.insert(weather, Arc::from(name));
        // Standalone sessions classify locally: refresh that replica so
        // the local path serves the promoted weights too.
        if let Some(model) = self.classify_stage.models.get_mut(&weather) {
            if let Some(state) = self.model_store.state_dict(name) {
                model.load_state_dict(&state);
            }
        }
        Ok(true)
    }

    /// The checkpoint name currently bound to `weather`: the weather
    /// label after [`SafeCross::register_scene`], or the promoted
    /// challenger after a successful [`SafeCross::bind_scene_model`].
    /// `None` when the scene has no registered model.
    pub fn scene_model_name(&self, weather: Weather) -> Option<Arc<str>> {
        if !self.scene_stage.registered.contains(&weather) {
            return None;
        }
        Some(self.scene_stage.model_name(weather))
    }

    /// The telemetry registry the frame path records into. Disabled (all
    /// handles inert) unless the configuration enabled telemetry; call
    /// [`Registry::snapshot`] on it for a point-in-time export.
    pub fn telemetry(&self) -> &Registry {
        &self.registry
    }

    /// The content-addressed checkpoint store this session registers
    /// its models into. The returned handle shares state with the
    /// session (a [`ModelRegistry`] is a shared handle), so few-shot
    /// adapters or evaluation harnesses can store and resolve
    /// checkpoints next to the scene models.
    pub fn model_store(&self) -> &ModelRegistry {
        &self.model_store
    }

    /// Replaces this session's private model store with a shared handle
    /// — the fleet-serving setup, where N sessions register the same
    /// per-weather checkpoints and each unique layer group must be held
    /// once, not N times.
    ///
    /// # Panics
    ///
    /// Panics if a model was already registered: the store must be
    /// shared before any [`SafeCross::register_model`] /
    /// [`SafeCross::register_scene`] call, otherwise earlier
    /// checkpoints would be stranded in the private store.
    pub fn share_model_store(&mut self, store: &ModelRegistry) {
        assert!(
            self.scene_stage.registered.is_empty(),
            "share the model store before registering scene models"
        );
        self.model_store = store.clone();
        self.scene_stage.switcher.attach_store(&self.model_store);
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SafeCrossConfig {
        &self.config
    }

    /// Scenes with a registered model.
    pub fn registered_scenes(&self) -> Vec<Weather> {
        let mut scenes: Vec<Weather> = self.scene_stage.registered.clone();
        scenes.sort_by_key(|w| w.label());
        scenes
    }

    /// The scene the detector currently believes in.
    pub fn current_scene(&self) -> Weather {
        self.scene_stage.scene.current()
    }

    /// Total frames processed.
    pub fn frames_seen(&self) -> usize {
        self.frames_seen
    }

    /// All verdicts emitted so far.
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// Every model swap performed so far, oldest first, with the frame
    /// index it was attributed to and the per-phase latency breakdown.
    ///
    /// This clones the whole log; prefer
    /// [`SafeCross::with_switch_log`] when a borrowed view is enough.
    pub fn switch_log(&self) -> Vec<SwitchRecord> {
        self.scene_stage.switcher.switch_log()
    }

    /// Runs `f` over a borrowed view of the switch log, oldest first,
    /// without cloning any record.
    pub fn with_switch_log<R>(&self, f: impl FnOnce(&[SwitchRecord]) -> R) -> R {
        self.scene_stage.switcher.with_switch_log(f)
    }

    /// How many model swaps have completed, without cloning the log.
    pub fn switch_count(&self) -> usize {
        self.scene_stage.switcher.switch_count()
    }

    /// Installs a chaos fault hook on this session's model switcher:
    /// subsequent switch attempts can be forced to fail with a
    /// synthetic out-of-memory error after evicting the old model,
    /// exercising the full rollback path (see [`SwitchFaultHook`]).
    /// Install after registration — the initial activation of the first
    /// registered scene happens inside
    /// [`SafeCross::register_model`] / [`SafeCross::register_scene`].
    pub fn set_switch_fault_hook(&self, hook: Arc<dyn SwitchFaultHook>) {
        self.scene_stage.switcher.set_fault_hook(hook);
    }

    /// Removes any installed switch fault hook.
    pub fn clear_switch_fault_hook(&self) {
        self.scene_stage.switcher.clear_fault_hook();
    }

    /// The name of the model whose weights the switcher holds resident,
    /// if the last successful switch activated real weights.
    pub fn resident_model(&self) -> Option<String> {
        self.scene_stage.switcher.resident_model()
    }

    /// The resident weights as a named state dictionary — bit-identical
    /// to the stored checkpoint of the active scene model. `None` when
    /// nothing weight-bearing is resident.
    pub fn resident_state_dict(&self) -> Option<Vec<(String, Tensor)>> {
        self.scene_stage.switcher.resident_state_dict()
    }

    /// Consumes one camera frame: scene detection (and model switch if
    /// the scene flipped), VP, and — once a full segment is buffered — a
    /// VC verdict.
    pub fn process_frame(&mut self, frame: &GrayFrame) -> FrameOutcome {
        let prep = self.prepare_frame(frame);
        let raw = self
            .classify_stage
            .classify(prep.clip.as_ref(), prep.effective);
        self.complete_frame(prep, raw)
    }

    /// Runs the pre-classification half of the frame path: scene
    /// detection (and model switch if the scene flipped) plus VP and
    /// segment assembly. The caller owns classification: compute a raw
    /// verdict for [`FramePrep::clip`] — with
    /// [`classify_with_model`] against any model replica for
    /// [`FramePrep::effective`] — and hand it to
    /// [`SafeCross::complete_frame`]. `prepare_frame` /
    /// `complete_frame` pairs executed in feed order are bit-identical
    /// to [`SafeCross::process_frame`] on the same frames.
    pub fn prepare_frame(&mut self, frame: &GrayFrame) -> FramePrep {
        self.frames_seen += 1;
        let (scene_switch, effective) = self.scene_stage.step(frame);
        let clip = self.vp_stage.step(frame);
        FramePrep {
            scene_switch,
            effective,
            clip,
        }
    }

    /// Completes a prepared frame with an externally-computed raw
    /// verdict: applies the configured minimum-confidence gate, records
    /// the verdict, and assembles the [`FrameOutcome`]. Pass `None`
    /// when the frame produced no clip or no model exists for its
    /// effective scene.
    pub fn complete_frame(&mut self, prep: FramePrep, raw: Option<Verdict>) -> FrameOutcome {
        let verdict = self.classify_stage.accept(raw);
        if let Some(v) = verdict {
            self.verdicts.push(v);
        }
        FrameOutcome {
            verdict,
            scene_switch: prep.scene_switch,
        }
    }

    /// Classifies one externally-prepared clip (`[1, T, H, W]`) with the
    /// model for `weather` — the batch path used by the evaluation
    /// harnesses.
    ///
    /// # Errors
    ///
    /// [`SafeCrossError::NoModel`] if no model is registered for
    /// `weather`.
    pub fn classify_clip(&mut self, clip: &Tensor, weather: Weather) -> Result<Verdict, SafeCrossError> {
        let registered = self.registered_scenes();
        let model = self
            .classify_stage
            .models
            .get_mut(&weather)
            .ok_or(SafeCrossError::NoModel { weather, registered })?;
        Ok(classify_with_model(
            model,
            clip,
            weather,
            &mut self.classify_stage.scratch,
        ))
    }
}

impl std::fmt::Debug for SafeCross {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SafeCross(scene {}, {} models, {} frames seen, {} verdicts)",
            self.scene_stage.scene.current(),
            self.classify_stage.models.len(),
            self.frames_seen,
            self.verdicts.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safecross_tensor::TensorRng;
    use safecross_trafficsim::{Renderer, RenderConfig, Scenario, Simulator};

    fn system_with_models() -> SafeCross {
        let mut rng = TensorRng::seed_from(0);
        let mut sc = SafeCross::try_new(SafeCrossConfig::default()).expect("default configuration is valid");
        sc.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng));
        sc.register_model(Weather::Snow, SlowFastLite::new(2, &mut rng));
        sc.register_model(Weather::Rain, SlowFastLite::new(2, &mut rng));
        sc
    }

    #[test]
    fn needs_full_buffer_for_verdict() {
        let mut sc = system_with_models();
        let frame = GrayFrame::filled(320, 240, 90);
        for i in 0..31 {
            let out = sc.process_frame(&frame);
            assert!(out.verdict.is_none(), "frame {i} produced early verdict");
        }
        let out = sc.process_frame(&frame);
        assert!(out.verdict.is_some());
        assert_eq!(sc.frames_seen(), 32);
        assert_eq!(sc.verdicts().len(), 1);
    }

    #[test]
    fn scene_change_triggers_model_switch() {
        let mut sc = system_with_models();
        let mut sim = Simulator::new(Scenario::new(Weather::Snow, true, 0.2), 1);
        let mut renderer = Renderer::new(RenderConfig::default(), Weather::Snow, 1);
        let mut switched = None;
        for _ in 0..20 {
            sim.step(1.0 / 30.0);
            let frame = renderer.render(&sim);
            let out = sc.process_frame(&frame);
            if let Some((scene, report)) = out.scene_switch {
                switched = Some((scene, report));
            }
        }
        let (scene, report) = switched.expect("snow frames should switch the model");
        assert_eq!(scene, Weather::Snow);
        assert!(report.switch_overhead_ms < 10.0);
        assert_eq!(sc.current_scene(), Weather::Snow);
        // The switch log recorded daytime (initial) then snow, with the
        // snow switch attributed to a real frame index.
        let log = sc.switch_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].model, "daytime");
        assert_eq!(log[0].frame, 0);
        assert_eq!(log[1].model, "snow");
        assert!(log[1].frame > 0);
        assert!(log[1].breakdown.transmit_ms > 0.0);
    }

    #[test]
    fn classify_clip_batches() {
        let mut sc = system_with_models();
        let clip = Tensor::zeros(&[1, 32, 20, 20]);
        let v = sc.classify_clip(&clip, Weather::Daytime).unwrap();
        assert!(v.confidence >= 0.5);
        assert_eq!(v.weather, Weather::Daytime);
    }

    #[test]
    fn fallback_to_daytime_model() {
        let mut rng = TensorRng::seed_from(1);
        let mut sc = SafeCross::try_new(SafeCrossConfig::default()).expect("default configuration is valid");
        sc.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng));
        // Snow frames but no snow model: the daytime model still answers.
        let bright = GrayFrame::filled(320, 240, 150);
        for _ in 0..32 {
            sc.process_frame(&bright);
        }
        assert!(!sc.verdicts().is_empty());
        assert_eq!(sc.verdicts()[0].weather, Weather::Daytime);
    }

    #[test]
    fn fallback_to_first_registered_model() {
        let mut rng = TensorRng::seed_from(2);
        let mut sc = SafeCross::try_new(SafeCrossConfig::default()).expect("default configuration is valid");
        // Only a rain model exists; daytime frames must still classify
        // with it (deterministic first-registered fallback).
        sc.register_model(Weather::Rain, SlowFastLite::new(2, &mut rng));
        let frame = GrayFrame::filled(320, 240, 90);
        for _ in 0..32 {
            sc.process_frame(&frame);
        }
        assert!(!sc.verdicts().is_empty());
        assert_eq!(sc.verdicts()[0].weather, Weather::Rain);
    }

    #[test]
    fn classify_without_model_is_a_typed_error() {
        let mut rng = TensorRng::seed_from(3);
        let mut sc = SafeCross::try_new(SafeCrossConfig::default()).expect("default configuration is valid");
        sc.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng));
        let err = sc
            .classify_clip(&Tensor::zeros(&[1, 32, 20, 20]), Weather::Rain)
            .unwrap_err();
        match err {
            SafeCrossError::NoModel { weather, registered } => {
                assert_eq!(weather, Weather::Rain);
                assert_eq!(registered, vec![Weather::Daytime]);
            }
            other => panic!("expected NoModel, got {other:?}"),
        }
    }

    #[test]
    fn builder_validates() {
        assert!(SafeCrossConfig::builder().build().is_ok());
        assert_eq!(
            SafeCrossConfig::builder().segment_frames(1).build().unwrap_err(),
            ConfigError::SegmentTooShort { segment_frames: 1 }
        );
        assert_eq!(
            SafeCrossConfig::builder().scene_window(0).build().unwrap_err(),
            ConfigError::EmptySceneWindow
        );
        assert_eq!(
            SafeCrossConfig::builder().min_confidence(1.5).build().unwrap_err(),
            ConfigError::BadConfidence { min_confidence: 1.5 }
        );
        assert!(SafeCrossConfig::builder()
            .min_confidence(f32::NAN)
            .build()
            .is_err());
        assert_eq!(
            SafeCrossConfig::builder().frame_size(0, 240).build().unwrap_err(),
            ConfigError::EmptyFrame { frame_width: 0, frame_height: 240 }
        );
    }

    #[test]
    fn try_new_rejects_bad_configs() {
        let bad = SafeCrossConfig {
            segment_frames: 0,
            ..SafeCrossConfig::default()
        };
        assert!(SafeCross::try_new(bad).is_err());
        assert!(SafeCross::try_new(SafeCrossConfig::default()).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid SafeCross configuration")]
    fn new_panics_on_bad_config() {
        // The deprecated constructor keeps its panicking contract until
        // it is removed.
        #[allow(deprecated)]
        SafeCross::new(SafeCrossConfig {
            scene_window: 0,
            ..SafeCrossConfig::default()
        });
    }

    #[test]
    fn telemetry_records_the_sequential_frame_path() {
        let mut rng = TensorRng::seed_from(4);
        let config = SafeCrossConfig::builder()
            .telemetry(true)
            .build()
            .unwrap();
        let mut sc = SafeCross::try_new(config).expect("validated configuration");
        sc.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng));
        let frame = GrayFrame::filled(320, 240, 90);
        for _ in 0..32 {
            sc.process_frame(&frame);
        }
        let snap = sc.telemetry().snapshot();
        assert_eq!(snap.counter("stage.scene.frames"), Some(32));
        assert_eq!(snap.counter("vp.frames"), Some(32));
        assert_eq!(snap.counter("stage.classify.verdicts"), Some(1));
        assert_eq!(snap.counter("ms.switches"), Some(1)); // initial switch
        let forwards = snap.counter("vc.slowfast.forwards");
        assert_eq!(forwards, Some(1));
        assert!(snap.histogram("stage.vp.step_ms").unwrap().count == 32);
    }

    #[test]
    fn telemetry_exports_gemm_kernel_metrics() {
        let mut rng = TensorRng::seed_from(11);
        let config = SafeCrossConfig::builder().telemetry(true).build().unwrap();
        let mut sc = SafeCross::try_new(config).expect("validated configuration");
        sc.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng));
        let frame = GrayFrame::filled(320, 240, 90);
        for _ in 0..32 {
            sc.process_frame(&frame);
        }
        // The observer registry is process-global, so GEMMs issued by
        // concurrently running tests can also land here — assert the
        // bridge recorded activity, never exact counts.
        let snap = sc.telemetry().snapshot();
        assert!(snap.counter("nn.gemm.calls").unwrap_or(0) > 0);
        assert!(snap.counter("nn.gemm.flops").unwrap_or(0) > 0);
        assert!(snap.histogram("nn.gemm.ms").map_or(0, |h| h.count) > 0);
    }

    #[test]
    fn top_class_matches_tensor_softmax_argmax() {
        // Row 0 carries a tie (0.3 at indices 0 and 2) to pin the
        // first-on-ties argmax convention; row 1 is a spread-out case.
        let logits = Tensor::from_vec(vec![0.3, -1.2, 0.3, 2.0, 7.5, -3.0], &[2, 3]);
        let reference = logits.softmax_rows();
        let winners = logits.argmax_rows();
        for (r, &winner) in winners.iter().enumerate() {
            let row = &logits.data()[r * 3..(r + 1) * 3];
            let mut probs = vec![0.0; 3];
            let (idx, conf) = top_class_from_logits(row, &mut probs);
            assert_eq!(idx, winner);
            assert_eq!(conf, reference.at(&[r, idx]));
            for (j, &p) in probs.iter().enumerate() {
                assert_eq!(p, reference.at(&[r, j]));
            }
        }
    }

    #[test]
    fn disabled_telemetry_stays_at_zero() {
        let mut sc = system_with_models();
        assert!(!sc.telemetry().is_enabled());
        let frame = GrayFrame::filled(320, 240, 90);
        for _ in 0..5 {
            sc.process_frame(&frame);
        }
        let snap = sc.telemetry().snapshot();
        assert_eq!(snap.counter("stage.scene.frames"), Some(0));
        assert!(snap.events.is_empty());
    }

    #[test]
    fn verdict_warning_semantics() {
        let warn = Verdict { class: Class::Danger, confidence: 0.9, weather: Weather::Daytime };
        let clear = Verdict { class: Class::Safe, confidence: 0.9, weather: Weather::Daytime };
        assert!(warn.is_warning());
        assert!(!clear.is_warning());
    }

    #[test]
    fn min_confidence_gates_verdicts() {
        let mut rng = TensorRng::seed_from(9);
        let mut sc = SafeCross::try_new(SafeCrossConfig {
            min_confidence: 0.999, // an untrained model never reaches this
            ..SafeCrossConfig::default()
        })
        .expect("validated configuration");
        sc.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng));
        let frame = GrayFrame::filled(320, 240, 90);
        for _ in 0..35 {
            sc.process_frame(&frame);
        }
        assert!(sc.verdicts().is_empty(), "low-confidence verdicts leaked");
    }

    #[test]
    fn debug_output_is_informative() {
        let sc = system_with_models();
        let s = format!("{sc:?}");
        assert!(s.contains("SafeCross"));
        assert!(s.contains("3 models"));
    }
}
