//! Typed errors for the public SafeCross API.
//!
//! Recoverable conditions — a bad configuration, a clip for a scene with
//! no registered model, a switch the MS runtime rejected — surface as
//! values instead of panics, so a deployment can degrade (fall back to
//! the daytime model, skip a clip, keep serving) rather than abort.

use safecross_modelswitch::SwitchError;
use safecross_trafficsim::Weather;
use std::fmt;

/// A [`SafeCrossConfig`](crate::SafeCrossConfig) value the orchestrator
/// cannot run with.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `segment_frames` must be at least 2: a single-frame "clip" has no
    /// temporal axis for the classifier to pool over.
    SegmentTooShort {
        /// The rejected value.
        segment_frames: usize,
    },
    /// `scene_window` must be positive — the detector votes over it.
    EmptySceneWindow,
    /// `min_confidence` must be a finite value in `[0, 1]`.
    BadConfidence {
        /// The rejected value.
        min_confidence: f32,
    },
    /// Frame dimensions must both be nonzero.
    EmptyFrame {
        /// The rejected width.
        frame_width: usize,
        /// The rejected height.
        frame_height: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::SegmentTooShort { segment_frames } => {
                write!(f, "segment_frames must be >= 2, got {segment_frames}")
            }
            ConfigError::EmptySceneWindow => write!(f, "scene_window must be > 0"),
            ConfigError::BadConfidence { min_confidence } => {
                write!(f, "min_confidence must be in [0, 1], got {min_confidence}")
            }
            ConfigError::EmptyFrame {
                frame_width,
                frame_height,
            } => {
                write!(f, "frame dimensions must be nonzero, got {frame_width}x{frame_height}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A recoverable failure from a [`SafeCross`](crate::SafeCross)
/// operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SafeCrossError {
    /// The configuration was rejected (see [`ConfigError`]).
    Config(ConfigError),
    /// A clip was submitted for a scene with no registered model.
    NoModel {
        /// The scene the clip was meant for.
        weather: Weather,
        /// Scenes that *do* have a model, sorted by label.
        registered: Vec<Weather>,
    },
    /// The MS runtime refused a model switch.
    Switch(SwitchError),
    /// A parallel operation was asked to run with zero workers.
    NoWorkers,
}

impl fmt::Display for SafeCrossError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafeCrossError::Config(e) => write!(f, "invalid configuration: {e}"),
            SafeCrossError::NoModel { weather, registered } => {
                write!(f, "no model registered for {weather} (registered: ")?;
                for (i, w) in registered.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{w}")?;
                }
                write!(f, ")")
            }
            SafeCrossError::Switch(e) => write!(f, "model switch failed: {e}"),
            SafeCrossError::NoWorkers => write!(f, "need at least one worker"),
        }
    }
}

impl std::error::Error for SafeCrossError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SafeCrossError::Config(e) => Some(e),
            SafeCrossError::Switch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SafeCrossError {
    fn from(e: ConfigError) -> Self {
        SafeCrossError::Config(e)
    }
}

impl From<SwitchError> for SafeCrossError {
    fn from(e: SwitchError) -> Self {
        SafeCrossError::Switch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = ConfigError::SegmentTooShort { segment_frames: 1 };
        assert!(e.to_string().contains(">= 2"));
        let e = SafeCrossError::NoModel {
            weather: Weather::Snow,
            registered: vec![Weather::Daytime, Weather::Rain],
        };
        let s = e.to_string();
        assert!(s.contains("snow") && s.contains("daytime") && s.contains("rain"), "{s}");
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = SafeCrossError::from(ConfigError::EmptySceneWindow);
        assert!(e.source().is_some());
        assert!(SafeCrossError::NoWorkers.source().is_none());
    }
}
