//! The Sec. V-D left-turn throughput analysis.
//!
//! The paper builds a test set of 63 blind-zone segments (31 with a car
//! in the blind area — class 0, must wait — and 32 without — class 1,
//! may turn), classifies them with SafeCross, and counts how many
//! immediate turns the system unlocks. A driver without SafeCross cannot
//! verify an occluded lane and must wait out every blind-zone situation,
//! so every correctly-predicted "safe" verdict is throughput gained:
//! the paper reports 32/63 ≈ +50%.

use crate::errors::SafeCrossError;
use crate::framework::SafeCross;
use safecross_dataset::{Class, Dataset};
use std::fmt;

/// The outcome of the throughput study.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Blind-zone segments evaluated.
    pub segments: usize,
    /// Ground-truth safe segments (empty blind zone).
    pub truth_safe: usize,
    /// Ground-truth danger segments (occupied blind zone).
    pub truth_danger: usize,
    /// Safe segments correctly released for an immediate turn.
    pub correct_turns: usize,
    /// Danger segments correctly held back.
    pub correct_waits: usize,
    /// Danger segments wrongly released (the safety-critical error).
    pub unsafe_turns: usize,
    /// Safe segments wrongly held (lost throughput only).
    pub missed_turns: usize,
}

impl ThroughputReport {
    /// Classification accuracy on the blind-zone test set.
    pub fn accuracy(&self) -> f64 {
        if self.segments == 0 {
            return 0.0;
        }
        (self.correct_turns + self.correct_waits) as f64 / self.segments as f64
    }

    /// Throughput gain over the always-wait baseline: the fraction of
    /// blind-zone encounters converted into immediate turns.
    pub fn throughput_gain(&self) -> f64 {
        if self.segments == 0 {
            return 0.0;
        }
        self.correct_turns as f64 / self.segments as f64
    }

    /// Whether the system kept the paper's safety guarantee (zero unsafe
    /// releases).
    pub fn is_safe(&self) -> bool {
        self.unsafe_turns == 0
    }
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "blind-zone segments: {} ({} safe / {} danger)",
            self.segments, self.truth_safe, self.truth_danger
        )?;
        writeln!(
            f,
            "verdicts: {} correct turns, {} correct waits, {} unsafe turns, {} missed turns",
            self.correct_turns, self.correct_waits, self.unsafe_turns, self.missed_turns
        )?;
        writeln!(f, "accuracy: {:.4}", self.accuracy())?;
        write!(
            f,
            "left-turn throughput gain vs always-wait: +{:.0}% ({}/{})",
            100.0 * self.throughput_gain(),
            self.correct_turns,
            self.segments
        )
    }
}

/// Runs the study: classify every blind-area segment in `indices` with
/// the system's scene models and tally turns against ground truth.
///
/// Ground truth for a blind-zone segment is *blind-zone occupancy* (the
/// paper's class definition in Sec. V-D), not general danger: a car in
/// the blind area means wait.
///
/// # Errors
///
/// [`SafeCrossError::NoModel`] if a segment's weather has no registered
/// model.
pub fn throughput_study(
    system: &mut SafeCross,
    data: &Dataset,
    indices: &[usize],
) -> Result<ThroughputReport, SafeCrossError> {
    let mut report = empty_report();
    for &i in indices {
        let seg = data.get(i);
        if !seg.label.blind_area {
            continue; // the study only concerns blind-zone scenes
        }
        let truth_danger = seg.label.class == Class::Danger;
        let verdict = system.classify_clip(&seg.clip, seg.weather)?;
        tally(&mut report, verdict.class, truth_danger);
    }
    Ok(report)
}

/// The parallel twin of [`throughput_study`]: blind-zone segments are
/// independent, so they are classified as one batch sharded across
/// `workers` threads via
/// [`SafeCross::classify_clips_parallel`](crate::SafeCross::classify_clips_parallel).
/// The report is identical to the sequential study's.
///
/// # Errors
///
/// [`SafeCrossError::NoWorkers`] if `workers` is zero, and
/// [`SafeCrossError::NoModel`] if a segment's weather has no registered
/// model.
pub fn throughput_study_parallel(
    system: &SafeCross,
    data: &Dataset,
    indices: &[usize],
    workers: usize,
) -> Result<ThroughputReport, SafeCrossError> {
    let mut jobs = Vec::new();
    let mut truths = Vec::new();
    for &i in indices {
        let seg = data.get(i);
        if !seg.label.blind_area {
            continue;
        }
        jobs.push((seg.clip.clone(), seg.weather));
        truths.push(seg.label.class == Class::Danger);
    }
    let verdicts = system.classify_clips_parallel(&jobs, workers)?;
    let mut report = empty_report();
    for (verdict, truth_danger) in verdicts.iter().zip(truths) {
        tally(&mut report, verdict.class, truth_danger);
    }
    Ok(report)
}

fn empty_report() -> ThroughputReport {
    ThroughputReport {
        segments: 0,
        truth_safe: 0,
        truth_danger: 0,
        correct_turns: 0,
        correct_waits: 0,
        unsafe_turns: 0,
        missed_turns: 0,
    }
}

/// Folds one classified blind-zone segment into the tally.
fn tally(report: &mut ThroughputReport, predicted: Class, truth_danger: bool) {
    report.segments += 1;
    if truth_danger {
        report.truth_danger += 1;
    } else {
        report.truth_safe += 1;
    }
    match (predicted, truth_danger) {
        (Class::Safe, false) => report.correct_turns += 1,
        (Class::Danger, true) => report.correct_waits += 1,
        (Class::Safe, true) => report.unsafe_turns += 1,
        (Class::Danger, false) => report.missed_turns += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ct: usize, cw: usize, ut: usize, mt: usize) -> ThroughputReport {
        ThroughputReport {
            segments: ct + cw + ut + mt,
            truth_safe: ct + mt,
            truth_danger: cw + ut,
            correct_turns: ct,
            correct_waits: cw,
            unsafe_turns: ut,
            missed_turns: mt,
        }
    }

    #[test]
    fn paper_numbers_give_fifty_percent() {
        // The paper's result: 32 correct turns, 31 correct waits, 0 errors.
        let r = report(32, 31, 0, 0);
        assert_eq!(r.segments, 63);
        assert!((r.accuracy() - 1.0).abs() < 1e-9);
        assert!((r.throughput_gain() - 32.0 / 63.0).abs() < 1e-9);
        assert!(r.is_safe());
        let text = format!("{r}");
        assert!(text.contains("+51%") || text.contains("+50%"), "{text}");
    }

    #[test]
    fn unsafe_turns_break_the_guarantee() {
        let r = report(30, 28, 2, 3);
        assert!(!r.is_safe());
        assert!(r.accuracy() < 1.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = report(0, 0, 0, 0);
        assert_eq!(r.accuracy(), 0.0);
        assert_eq!(r.throughput_gain(), 0.0);
    }
}
