//! End-to-end experiment harnesses regenerating the paper's evaluation.
//!
//! One function per table/figure of Sec. V, each returning a typed report
//! whose `Display` implementation prints the same rows the paper
//! tabulates. The Criterion benches in `crates/bench` call these and add
//! wall-clock measurements of the latency-sensitive inner pieces; the
//! runnable examples call them for human-readable output.
//!
//! Every harness takes an [`ExperimentConfig`] so tests can run scaled-
//! down versions of the same code path the full benches exercise.

use crate::framework::{SafeCross, SafeCrossConfig};
use crate::throughput::{throughput_study, ThroughputReport};
use safecross_dataset::{Dataset, DatasetSpec, SegmentGenerator};
use safecross_fewshot::train_from_scratch;
use safecross_tensor::TensorRng;
use safecross_telemetry::Snapshot;
use safecross_trafficsim::Weather;
use safecross_videoclass::{
    evaluate, train, C3dLite, EvalReport, SlowFastLite, TrainConfig, TsnLite,
};
use std::collections::HashMap;
use std::fmt;

/// Shared experiment knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Dataset size as a fraction of the paper's Table I counts.
    pub dataset_factor: f64,
    /// Training epochs for from-scratch models.
    pub epochs: usize,
    /// Few-shot support shots per class (K-sweep ablations).
    pub k_shot: usize,
    /// Inner-loop adaptation steps (K-shot ablations).
    pub adapt_steps: usize,
    /// Fine-tuning epochs when adapting the daytime model to a scarce
    /// scene's training pool (the paper's FL recipe).
    pub finetune_epochs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            dataset_factor: 0.10,
            epochs: 10,
            k_shot: 2,
            adapt_steps: 12,
            finetune_epochs: 8,
            seed: 2022,
        }
    }
}

impl ExperimentConfig {
    /// A drastically reduced configuration for unit tests.
    pub fn smoke_test() -> Self {
        ExperimentConfig {
            dataset_factor: 0.016,
            epochs: 2,
            k_shot: 2,
            adapt_steps: 2,
            finetune_epochs: 1,
            seed: 7,
        }
    }

    fn spec(&self) -> DatasetSpec {
        DatasetSpec::paper_scaled(self.dataset_factor)
    }
}

/// Experiment E1 (Table I): generate the dataset and report its
/// statistics.
pub fn table1_dataset(cfg: &ExperimentConfig) -> Dataset {
    SegmentGenerator::new(cfg.seed).generate_dataset(&cfg.spec())
}

/// One row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneAccuracyRow {
    /// Weather scene.
    pub scene: Weather,
    /// Top-1 accuracy on the scene's held-out segments.
    pub top1: f32,
    /// Mean per-class accuracy.
    pub mean_class: f32,
    /// Held-out sample count.
    pub test_samples: usize,
}

/// Results of E3: Table III plus the trained per-scene models, which
/// downstream experiments (throughput, model switching) reuse.
pub struct SceneAccuracyResult {
    /// Table III rows in paper order (daytime, snow, rain).
    pub rows: Vec<SceneAccuracyRow>,
    /// The per-scene models (daytime trained from scratch; rain/snow
    /// few-shot adapted from daytime).
    pub models: HashMap<Weather, SlowFastLite>,
    /// Held-out test indices per scene.
    pub test_indices: HashMap<Weather, Vec<usize>>,
}

impl fmt::Display for SceneAccuracyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Types      Top1_acc   Mean_class_acc   (n)")?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<10} {:<10.4} {:<16.4} {}",
                row.scene, row.top1, row.mean_class, row.test_samples
            )?;
        }
        Ok(())
    }
}

/// Experiment E3 (Table III): per-scene classification accuracy with the
/// paper's training recipe — daytime from scratch on the 8:1:1 split,
/// rain and snow few-shot adapted from the daytime model.
pub fn table3_scene_accuracy(data: &Dataset, cfg: &ExperimentConfig) -> SceneAccuracyResult {
    let mut rng = TensorRng::seed_from(cfg.seed);
    let mut models = HashMap::new();
    let mut test_indices = HashMap::new();
    let mut rows = Vec::new();

    // Daytime: from-scratch training on the 8:1:1 split.
    let day_idx = data.indices_of_weather(Weather::Daytime);
    let day_split = data.split_indices(&day_idx, &mut rng);
    let mut daytime = SlowFastLite::new(2, &mut rng);
    train(
        &mut daytime,
        data,
        &day_split.train,
        &TrainConfig {
            epochs: cfg.epochs,
            seed: cfg.seed,
            ..TrainConfig::default()
        },
    );
    let day_eval = evaluate(&mut daytime, data, &day_split.test);
    rows.push(SceneAccuracyRow {
        scene: Weather::Daytime,
        top1: day_eval.top1,
        mean_class: day_eval.mean_class,
        test_samples: day_eval.samples,
    });
    test_indices.insert(Weather::Daytime, day_split.test.clone());

    // Snow then rain (paper row order): few-shot adaptation.
    for weather in [Weather::Snow, Weather::Rain] {
        let (model, eval, test) = adapt_scene(&daytime, data, weather, cfg, &mut rng);
        rows.push(SceneAccuracyRow {
            scene: weather,
            top1: eval.top1,
            mean_class: eval.mean_class,
            test_samples: eval.samples,
        });
        test_indices.insert(weather, test);
        models.insert(weather, model);
    }
    models.insert(Weather::Daytime, daytime);
    SceneAccuracyResult {
        rows,
        models,
        test_indices,
    }
}

/// Splits a scene's indices into a 75/25 train/test partition, fine-tunes
/// the pretrained daytime model on the training pool (the paper's FL
/// recipe: small data, few epochs, reduced learning rate), and evaluates
/// on the held-out quarter.
fn adapt_scene(
    pretrained: &SlowFastLite,
    data: &Dataset,
    weather: Weather,
    cfg: &ExperimentConfig,
    rng: &mut TensorRng,
) -> (SlowFastLite, EvalReport, Vec<usize>) {
    // Scarce scenes get 3-fold repetition so the reported accuracy is not
    // hostage to one tiny split (the paper's rain test is just as small).
    let folds = if data.indices_of_weather(weather).len() < 40 { 3 } else { 1 };
    let mut reports = Vec::with_capacity(folds);
    let mut last = None;
    for _ in 0..folds {
        let (train_pool, test) = scene_split(data, weather, rng);
        let mut model = finetune(pretrained, data, &train_pool, cfg);
        let eval = evaluate(&mut model, data, &test);
        reports.push(eval);
        last = Some((model, test));
    }
    let (model, test) = last.expect("at least one fold");
    let samples: usize = reports.iter().map(|r| r.samples).sum();
    let mean = |f: fn(&EvalReport) -> f32| {
        reports.iter().map(|r| f(r) * r.samples as f32).sum::<f32>() / samples as f32
    };
    let eval = EvalReport {
        top1: mean(|r| r.top1),
        mean_class: mean(|r| r.mean_class),
        confusion: reports.last().expect("non-empty").confusion,
        samples,
    };
    (model, eval, test)
}

/// 75/25 train/test partition of one scene's segments.
///
/// # Panics
///
/// Panics if the scene has fewer than 4 segments.
pub fn scene_split(data: &Dataset, weather: Weather, rng: &mut TensorRng) -> (Vec<usize>, Vec<usize>) {
    let mut idx = data.indices_of_weather(weather);
    assert!(idx.len() >= 4, "{weather}: need at least 4 segments");
    rng.shuffle(&mut idx);
    let n_test = (idx.len() / 4).max(1);
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    (train, test)
}

/// The FL module's transfer recipe: clone the daytime model and
/// fine-tune briefly at a reduced learning rate.
pub fn finetune(
    pretrained: &SlowFastLite,
    data: &Dataset,
    train_pool: &[usize],
    cfg: &ExperimentConfig,
) -> SlowFastLite {
    let mut model = pretrained.clone();
    train(
        &mut model,
        data,
        train_pool,
        &TrainConfig {
            epochs: cfg.finetune_epochs,
            lr: 0.02,
            seed: cfg.seed + 17,
            ..TrainConfig::default()
        },
    );
    model
}

/// Shots per class for a scene: proportional to how much labelled data
/// the scene has (the paper's snow set is ~25x larger than rain), capped
/// at 4x the configured base shot count.
pub fn scene_shots(data: &Dataset, weather: Weather, cfg: &ExperimentConfig) -> usize {
    use safecross_dataset::Class;
    let idx = data.indices_of_weather(weather);
    let per_class = idx
        .iter()
        .filter(|&&i| data.get(i).label.class == Class::Danger)
        .count()
        .min(
            idx.iter()
                .filter(|&&i| data.get(i).label.class == Class::Safe)
                .count(),
        );
    (per_class / 3).clamp(cfg.k_shot.min(per_class.saturating_sub(1)).max(1), cfg.k_shot * 4)
}

/// Balanced `k`-shot support selection; everything else becomes test.
///
/// # Panics
///
/// Panics if either class has fewer than `k + 1` segments in the scene.
pub fn fewshot_split(
    data: &Dataset,
    weather: Weather,
    k: usize,
    rng: &mut TensorRng,
) -> (Vec<usize>, Vec<usize>) {
    use safecross_dataset::Class;
    let idx = data.indices_of_weather(weather);
    let mut danger: Vec<usize> = idx
        .iter()
        .copied()
        .filter(|&i| data.get(i).label.class == Class::Danger)
        .collect();
    let mut safe: Vec<usize> = idx
        .iter()
        .copied()
        .filter(|&i| data.get(i).label.class == Class::Safe)
        .collect();
    assert!(
        danger.len() > k && safe.len() > k,
        "{weather}: need more than {k} segments per class (danger {}, safe {})",
        danger.len(),
        safe.len()
    );
    rng.shuffle(&mut danger);
    rng.shuffle(&mut safe);
    let mut support: Vec<usize> = danger[..k].to_vec();
    support.extend(&safe[..k]);
    let mut test: Vec<usize> = danger[k..].to_vec();
    test.extend(&safe[k..]);
    (support, test)
}

/// One row of Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchitectureRow {
    /// Model configuration name.
    pub model: &'static str,
    /// Top-1 accuracy on the daytime test split.
    pub top1: f32,
    /// Mean per-class accuracy.
    pub mean_class: f32,
}

/// Results of E4 (Table IV).
pub struct ArchitectureResult {
    /// Rows in the paper's order: SlowFast, C3D, TSN.
    pub rows: Vec<ArchitectureRow>,
}

impl fmt::Display for ArchitectureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Models                      Top1_acc   Mean_class_acc")?;
        for row in &self.rows {
            writeln!(f, "{:<27} {:<10.4} {:.4}", row.model, row.top1, row.mean_class)?;
        }
        Ok(())
    }
}

/// Experiment E4 (Table IV): SlowFast vs C3D vs TSN, trained on the
/// daytime 8:1:1 train split and evaluated on the held-out split *plus*
/// a freshly generated daytime evaluation set — the scaled-down bench
/// needs the larger n to resolve the architectures' true error rates.
pub fn table4_architectures(data: &Dataset, cfg: &ExperimentConfig) -> ArchitectureResult {
    let mut rng = TensorRng::seed_from(cfg.seed);
    let day_idx = data.indices_of_weather(Weather::Daytime);
    let split = data.split_indices(&day_idx, &mut rng);
    let tc = TrainConfig {
        epochs: cfg.epochs,
        seed: cfg.seed,
        ..TrainConfig::default()
    };

    // Fresh evaluation segments from an independent generator seed.
    let extra_n = (day_idx.len() / 2).clamp(8, 80);
    let mut eval_data: Dataset = data
        .iter()
        .enumerate()
        .filter(|(i, _)| split.test.contains(i))
        .map(|(_, seg)| seg.clone())
        .collect();
    let mut fresh_gen = SegmentGenerator::new(cfg.seed + 31);
    let spec = cfg.spec();
    for i in 0..extra_n {
        let blind = i % 2 == 0;
        let want_danger = (i / 2) % 2 == 0;
        eval_data.push(fresh_gen.generate(Weather::Daytime, blind, want_danger, &spec));
    }
    let eval_idx: Vec<usize> = (0..eval_data.len()).collect();

    let mut rows = Vec::new();
    let mut slowfast = SlowFastLite::new(2, &mut rng);
    train(&mut slowfast, data, &split.train, &tc);
    let e = evaluate(&mut slowfast, &eval_data, &eval_idx);
    rows.push(ArchitectureRow {
        model: "slowfast_r50_4x16x1_256e",
        top1: e.top1,
        mean_class: e.mean_class,
    });

    let mut c3d = C3dLite::new(2, &mut rng);
    train(&mut c3d, data, &split.train, &tc);
    let e = evaluate(&mut c3d, &eval_data, &eval_idx);
    rows.push(ArchitectureRow {
        model: "c3d_sports1m_16x1x1_45e",
        top1: e.top1,
        mean_class: e.mean_class,
    });

    let mut tsn = TsnLite::new(2, &mut rng);
    train(&mut tsn, data, &split.train, &tc);
    let e = evaluate(&mut tsn, &eval_data, &eval_idx);
    rows.push(ArchitectureRow {
        model: "tsn_r50_1x1x3_75e",
        top1: e.top1,
        mean_class: e.mean_class,
    });

    ArchitectureResult { rows }
}

/// One row of Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct FewshotRow {
    /// Scene and arm description (e.g. "snow with few shot learning").
    pub experiment: String,
    /// Top-1 accuracy.
    pub top1: f32,
    /// Mean per-class accuracy.
    pub mean_class: f32,
}

/// Results of E5 (Table V).
pub struct FewshotResult {
    /// Four rows: snow/rain x with/without few-shot learning.
    pub rows: Vec<FewshotRow>,
}

impl fmt::Display for FewshotResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Experiments                        Top1_acc   Mean_class_acc")?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<34} {:<10.4} {:.4}",
                row.experiment, row.top1, row.mean_class
            )?;
        }
        Ok(())
    }
}

/// Experiment E5 (Table V): the few-shot ablation. For each scarce scene
/// the same support/test split is used by both arms; "with few-shot"
/// adapts the daytime-pretrained model, "without" trains from scratch on
/// the support set alone.
pub fn table5_fewshot(
    data: &Dataset,
    daytime: &SlowFastLite,
    cfg: &ExperimentConfig,
) -> FewshotResult {
    let mut rng = TensorRng::seed_from(cfg.seed + 1);
    let mut rows = Vec::new();
    for weather in [Weather::Snow, Weather::Rain] {
        // Both arms share the same train/test partition of the scene.
        let (train_pool, test) = scene_split(data, weather, &mut rng);

        let mut adapted = finetune(daytime, data, &train_pool, cfg);
        let with_fs = evaluate(&mut adapted, data, &test);
        rows.push(FewshotRow {
            experiment: format!("{weather} with few shot learning"),
            top1: with_fs.top1,
            mean_class: with_fs.mean_class,
        });

        let fresh = SlowFastLite::new(2, &mut rng);
        let mut scratch =
            train_from_scratch(fresh, data, &train_pool, cfg.epochs, 0.05, cfg.seed);
        let without_fs = evaluate(&mut scratch, data, &test);
        rows.push(FewshotRow {
            experiment: format!("{weather} without few shot learning"),
            top1: without_fs.top1,
            mean_class: without_fs.mean_class,
        });
    }
    FewshotResult { rows }
}

/// Experiment E7 (Sec. V-D): build the blind-zone test set (the paper's
/// 63 segments: 32 safe, 31 danger), classify with the scene models, and
/// tally the throughput gain.
pub fn table7_throughput(
    models: &HashMap<Weather, SlowFastLite>,
    cfg: &ExperimentConfig,
) -> ThroughputReport {
    let test_set = blind_zone_test_set(cfg);
    let mut system = system_with(models, false);
    let all: Vec<usize> = (0..test_set.len()).collect();
    throughput_study(&mut system, &test_set, &all)
        .expect("harness registers a model for every test-set scene")
}

/// Experiment E7 with telemetry enabled: the same study, returning the
/// registry [`Snapshot`] alongside the report so benches and downstream
/// tooling can export per-stage latency distributions and switch events
/// next to the throughput numbers.
pub fn table7_throughput_instrumented(
    models: &HashMap<Weather, SlowFastLite>,
    cfg: &ExperimentConfig,
) -> (ThroughputReport, Snapshot) {
    let test_set = blind_zone_test_set(cfg);
    let mut system = system_with(models, true);
    let all: Vec<usize> = (0..test_set.len()).collect();
    let report = throughput_study(&mut system, &test_set, &all)
        .expect("harness registers a model for every test-set scene");
    (report, system.telemetry().snapshot())
}

/// Experiment E7, data-parallel: the identical study with the segment
/// batch sharded across `workers` threads via
/// [`throughput_study_parallel`](crate::throughput::throughput_study_parallel)
/// — the bench arm that measures how far
/// the embarrassingly-parallel evaluation path scales.
pub fn table7_throughput_parallel(
    models: &HashMap<Weather, SlowFastLite>,
    cfg: &ExperimentConfig,
    workers: usize,
) -> ThroughputReport {
    let test_set = blind_zone_test_set(cfg);
    let system = system_with(models, false);
    let all: Vec<usize> = (0..test_set.len()).collect();
    crate::throughput::throughput_study_parallel(&system, &test_set, &all, workers)
        .expect("harness registers a model for every test-set scene")
}

fn system_with(models: &HashMap<Weather, SlowFastLite>, telemetry: bool) -> SafeCross {
    let config = SafeCrossConfig::builder()
        .telemetry(telemetry)
        .build()
        .expect("default experiment configuration is valid");
    let mut system = SafeCross::try_new(config).expect("validated configuration");
    // Sorted registration keeps the switch log and fallback order stable
    // regardless of HashMap iteration order.
    let mut entries: Vec<_> = models.iter().collect();
    entries.sort_by_key(|(w, _)| w.label());
    for (weather, model) in entries {
        system.register_model(*weather, model.clone());
    }
    system
}

/// The dedicated blind-zone test set (the paper's 63 segments), built
/// with a fresh seed so it is disjoint from training data.
fn blind_zone_test_set(cfg: &ExperimentConfig) -> Dataset {
    let spec = cfg.spec();
    let mut generator = SegmentGenerator::new(cfg.seed + 99);
    let mut segments = Vec::with_capacity(63);
    // The paper's mix: segments from all three scenes' footage. Weight
    // towards daytime like the underlying 10 h of video.
    let plan: [(Weather, usize, usize); 3] = [
        (Weather::Daytime, 22, 21),
        (Weather::Snow, 6, 6),
        (Weather::Rain, 4, 4),
    ];
    // The paper's Sec. V-D classes are presence/absence of a car in the
    // blind zone — unambiguous situations, not near-boundary gaps — so
    // the test set is generated with a wide scripting margin.
    for (weather, n_safe, n_danger) in plan {
        for _ in 0..n_safe {
            segments.push(generator.generate_with_margin(weather, true, false, &spec, 1.2));
        }
        for _ in 0..n_danger {
            segments.push(generator.generate_with_margin(weather, true, true, &spec, 1.2));
        }
    }
    Dataset::new(segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One smoke-test pass through every harness; the full-scale runs
    /// live in the benches.
    #[test]
    fn all_experiments_run_end_to_end_at_smoke_scale() {
        let cfg = ExperimentConfig::smoke_test();
        let data = table1_dataset(&cfg);
        assert!(data.len() >= 24);
        let stats = data.stats();
        assert!(stats.daytime.0 >= stats.rain.0);

        let scene = table3_scene_accuracy(&data, &cfg);
        assert_eq!(scene.rows.len(), 3);
        assert_eq!(scene.rows[0].scene, Weather::Daytime);
        assert!(scene.models.contains_key(&Weather::Rain));
        assert!(!format!("{scene}").is_empty());

        let fewshot = table5_fewshot(&data, &scene.models[&Weather::Daytime], &cfg);
        assert_eq!(fewshot.rows.len(), 4);
        assert!(fewshot.rows[0].experiment.contains("snow"));

        let throughput = table7_throughput(&scene.models, &cfg);
        assert_eq!(throughput.segments, 63);
        assert!(!format!("{throughput}").is_empty());
    }

    #[test]
    fn architecture_comparison_runs_at_smoke_scale() {
        let cfg = ExperimentConfig::smoke_test();
        let data = table1_dataset(&cfg);
        let arch = table4_architectures(&data, &cfg);
        assert_eq!(arch.rows.len(), 3);
        assert!(arch.rows.iter().all(|r| (0.0..=1.0).contains(&r.top1)));
        let table = format!("{arch}");
        assert!(table.contains("slowfast"));
        assert!(table.contains("tsn"));
    }

    #[test]
    fn scene_split_partitions_without_overlap() {
        let cfg = ExperimentConfig::smoke_test();
        let data = table1_dataset(&cfg);
        let mut rng = TensorRng::seed_from(1);
        let (train, test) = scene_split(&data, Weather::Snow, &mut rng);
        let snow = data.indices_of_weather(Weather::Snow);
        assert_eq!(train.len() + test.len(), snow.len());
        for t in &test {
            assert!(!train.contains(t));
            assert!(snow.contains(t));
        }
        // Roughly a quarter held out.
        assert!(test.len() >= snow.len() / 5);
    }

    #[test]
    fn scene_shots_scale_with_data_volume() {
        let cfg = ExperimentConfig::default();
        let data = table1_dataset(&ExperimentConfig {
            dataset_factor: 0.05,
            ..ExperimentConfig::smoke_test()
        });
        let rain_k = scene_shots(&data, Weather::Rain, &cfg);
        let snow_k = scene_shots(&data, Weather::Snow, &cfg);
        assert!(snow_k >= rain_k, "snow {snow_k} < rain {rain_k}");
        assert!(rain_k >= 1);
        assert!(snow_k <= cfg.k_shot * 4);
    }

    #[test]
    fn throughput_test_set_is_the_papers_63(
    ) {
        // Structure only (no training): the generated blind-zone test set
        // always holds 63 segments with the paper's 32/31 split intent.
        let cfg = ExperimentConfig::smoke_test();
        let mut models = HashMap::new();
        let mut rng = TensorRng::seed_from(0);
        models.insert(Weather::Daytime, SlowFastLite::new(2, &mut rng));
        models.insert(Weather::Rain, SlowFastLite::new(2, &mut rng));
        models.insert(Weather::Snow, SlowFastLite::new(2, &mut rng));
        let report = table7_throughput(&models, &cfg);
        assert_eq!(report.segments, 63);
        assert_eq!(report.truth_safe + report.truth_danger, 63);
        // Clear-margin scripting keeps the intended 32/31 split within a
        // segment or two.
        assert!((report.truth_safe as i64 - 32).abs() <= 2, "{report:?}");
        // The data-parallel study tallies the exact same report.
        for workers in [1, 3, 8] {
            assert_eq!(table7_throughput_parallel(&models, &cfg, workers), report);
        }
        // The instrumented study sees the same segments and exports a
        // snapshot covering every clip it classified: one forward pass
        // per blind-zone segment.
        let (timed_report, snapshot) = table7_throughput_instrumented(&models, &cfg);
        assert_eq!(timed_report, report);
        assert_eq!(snapshot.counter("vc.slowfast.forwards"), Some(63));
        let forward_ms = snapshot
            .histogram("vc.slowfast.forward_ms")
            .expect("instrumented models time every forward");
        assert_eq!(forward_ms.count, 63);
    }

    #[test]
    fn fewshot_split_is_balanced_and_disjoint() {
        let cfg = ExperimentConfig::smoke_test();
        let data = table1_dataset(&cfg);
        let mut rng = TensorRng::seed_from(0);
        let (support, test) = fewshot_split(&data, Weather::Snow, 2, &mut rng);
        assert_eq!(support.len(), 4);
        for i in &support {
            assert!(!test.contains(i));
        }
        // Support is class-balanced.
        use safecross_dataset::Class;
        let danger = support
            .iter()
            .filter(|&&i| data.get(i).label.class == Class::Danger)
            .count();
        assert_eq!(danger, 2);
    }
}
