//! # safecross
//!
//! The SafeCross framework — a reproduction of *"To Turn or Not To Turn,
//! SafeCross is the Answer"* (Wu et al., ICDCS 2022).
//!
//! SafeCross watches an intersection through a roadside camera and warns
//! left-turning vehicles when the blind area behind an opposing vehicle
//! hides oncoming traffic. The framework wires four modules:
//!
//! 1. **VP** — video pre-processing: dynamic background subtraction,
//!    morphological opening, and 2-D grid remapping
//!    ([`safecross_vision::Preprocessor`]);
//! 2. **VC** — video classification: a SlowFast-style model over
//!    32-frame occupancy clips ([`safecross_videoclass::SlowFastLite`]);
//! 3. **FL** — few-shot learning: rain/snow models adapted from the
//!    daytime model ([`safecross_fewshot`]);
//! 4. **MS** — model switching: PipeSwitch-style pipelined swaps when
//!    the scene changes ([`safecross_modelswitch::ModelSwitcher`]).
//!
//! The [`SafeCross`] orchestrator consumes camera frames and produces
//! turn/no-turn verdicts plus scene-switch telemetry; [`throughput`]
//! reproduces the paper's Sec. V-D left-turn throughput analysis.
//!
//! ## Example
//!
//! ```
//! use safecross::{SafeCross, SafeCrossConfig};
//! use safecross_videoclass::SlowFastLite;
//! use safecross_tensor::TensorRng;
//! use safecross_trafficsim::Weather;
//! use safecross_vision::GrayFrame;
//!
//! let mut rng = TensorRng::seed_from(0);
//! let mut system = SafeCross::try_new(SafeCrossConfig::default()).expect("valid config");
//! system.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng));
//! let outcome = system.process_frame(&GrayFrame::filled(320, 240, 90));
//! assert!(outcome.verdict.is_none()); // needs a full 32-frame buffer
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod errors;
pub mod experiments;
mod framework;
pub mod pipeline;
mod scene;
pub mod throughput;

#[cfg(test)]
mod proptests;

pub use errors::{ConfigError, SafeCrossError};
pub use framework::{
    classify_with_model, top_class_from_logits, FrameOutcome, FramePrep, SafeCross,
    SafeCrossConfig, SafeCrossConfigBuilder, Verdict, SCENE_TOTAL_FLOPS,
};
pub use pipeline::{PipelineConfig, PipelineRun, PipelineStats, StageStats};
pub use scene::{SceneDetector, SceneFeatures};
pub use throughput::{throughput_study, throughput_study_parallel, ThroughputReport};

// Re-exports so downstream code can consume the typed switch log and
// telemetry snapshots without depending on the sub-crates directly.
pub use safecross_modelswitch::{SwitchBreakdown, SwitchError, SwitchRecord};
pub use safecross_telemetry::{Registry, Snapshot};
