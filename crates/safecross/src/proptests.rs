//! Property-based tests on the scene detector's voting invariants.
//!
//! The detector debounces per-frame weather votes over a sliding
//! window. Whatever frames it sees — including adversarial noise — its
//! agreed scene must always be explainable by the votes actually in the
//! window: no weather it never observed, no switch without a strict
//! majority, no flip announced when the scene did not change.

use crate::scene::{SceneDetector, SceneFeatures};
use proptest::prelude::*;
use safecross_trafficsim::Weather;
use safecross_vision::GrayFrame;

fn arb_frame() -> impl Strategy<Value = GrayFrame> {
    (4usize..12, 4usize..12).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), w * h)
            .prop_map(move |px| GrayFrame::from_pixels(w, h, px))
    })
}

proptest! {
    #[test]
    fn detector_never_agrees_on_an_unobserved_weather(
        frames in proptest::collection::vec(arb_frame(), 1..40),
        window in 1usize..9,
    ) {
        let mut det = SceneDetector::new(window);
        // Independently recompute each frame's vote the same way the
        // detector does, and keep the sliding window ourselves.
        let mut votes: Vec<Weather> = Vec::new();
        for frame in &frames {
            let vote = SceneFeatures::measure(frame).classify();
            votes.push(vote);
            let switched = det.observe(frame);
            let tail_start = votes.len().saturating_sub(window);
            let in_window = &votes[tail_start..];

            if let Some(new_scene) = switched {
                // A switch target must be a vote inside the current
                // window — never a weather the detector did not observe.
                prop_assert!(
                    in_window.contains(&new_scene),
                    "switched to {new_scene} but window holds {in_window:?}"
                );
                // And it must hold a strict majority of a full window.
                let count = in_window.iter().filter(|&&v| v == new_scene).count();
                prop_assert!(in_window.len() == window);
                prop_assert!(
                    2 * count > window,
                    "switch without majority: {count}/{window}"
                );
                prop_assert_eq!(det.current(), new_scene);
            }

            // The agreed scene is always the daytime start or something
            // that actually appeared in the vote stream.
            prop_assert!(
                det.current() == Weather::Daytime || votes.contains(&det.current()),
                "current {} never voted ({votes:?})",
                det.current()
            );
        }
    }

    #[test]
    fn unanimous_votes_always_win(
        frames in proptest::collection::vec(arb_frame(), 1..10),
        window in 1usize..6,
    ) {
        // Feed each frame `window` times: once the window is saturated
        // with a unanimous vote, the detector must agree with it.
        let mut det = SceneDetector::new(window);
        for frame in &frames {
            let vote = SceneFeatures::measure(frame).classify();
            for _ in 0..window {
                det.observe(frame);
            }
            prop_assert_eq!(det.current(), vote);
        }
    }

    #[test]
    fn switch_fires_exactly_once_per_flip(
        frame in arb_frame(),
        window in 1usize..6,
    ) {
        // Repeating one frame forever can flip the detector at most once.
        let mut det = SceneDetector::new(window);
        let mut switches = 0;
        for _ in 0..window * 3 {
            if det.observe(&frame).is_some() {
                switches += 1;
            }
        }
        prop_assert!(switches <= 1, "same frame switched {switches} times");
    }
}
