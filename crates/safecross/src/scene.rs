//! Weather-scene detection from frame statistics.
//!
//! The MS module needs a trigger: *which* scene model should be active?
//! SafeCross infers the scene from cheap photometric statistics of the
//! raw frame — no learned model required — and debounces the decision
//! over a voting window so a single odd frame cannot thrash the GPU with
//! switches.

use safecross_trafficsim::Weather;
use safecross_vision::GrayFrame;
use std::collections::VecDeque;

/// Photometric features of one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneFeatures {
    /// Mean intensity (snow scenes are bright, rain scenes dark).
    pub mean: f32,
    /// Intensity standard deviation (contrast collapses in bad weather).
    pub stddev: f32,
    /// Fraction of isolated bright pixels (snowflake speckle).
    pub speckle: f32,
    /// Fraction of bright short vertical runs (rain streaks).
    pub streaks: f32,
}

impl SceneFeatures {
    /// Measures a frame.
    pub fn measure(frame: &GrayFrame) -> Self {
        let mean = frame.mean();
        let stddev = frame.stddev();
        let (w, h) = (frame.width(), frame.height());
        let bright = (mean + 2.5 * stddev).min(235.0) as i32;
        let mut speckle = 0usize;
        let mut streaks = 0usize;
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let v = frame.at(x, y) as i32;
                if v < bright {
                    continue;
                }
                let above = frame.at(x, y - 1) as i32 >= bright;
                let below = frame.at(x, y + 1) as i32 >= bright;
                let left = frame.at(x - 1, y) as i32 >= bright;
                let right = frame.at(x + 1, y) as i32 >= bright;
                if !above && !below && !left && !right {
                    speckle += 1;
                } else if (above || below) && !left && !right {
                    streaks += 1;
                }
            }
        }
        let n = (w * h) as f32;
        SceneFeatures {
            mean,
            stddev,
            speckle: speckle as f32 / n,
            streaks: streaks as f32 / n,
        }
    }

    /// Classifies the features into a weather scene.
    pub fn classify(&self) -> Weather {
        // Snow: bright ambient and/or heavy isolated speckle.
        if self.mean > 115.0 || self.speckle > 0.004 {
            return Weather::Snow;
        }
        // Rain: darker ambient with vertical streak energy.
        if self.streaks > 0.0015 || self.mean < 80.0 {
            return Weather::Rain;
        }
        Weather::Daytime
    }
}

/// Debounced scene detector: majority vote over a sliding window.
#[derive(Debug, Clone)]
pub struct SceneDetector {
    window: VecDeque<Weather>,
    capacity: usize,
    current: Weather,
}

impl SceneDetector {
    /// Creates a detector voting over `window` frames, starting in
    /// daytime.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "voting window must be positive");
        SceneDetector {
            window: VecDeque::with_capacity(window),
            capacity: window,
            current: Weather::Daytime,
        }
    }

    /// The currently agreed scene.
    pub fn current(&self) -> Weather {
        self.current
    }

    /// Feeds one frame; returns `Some(new_scene)` when the vote flips.
    pub fn observe(&mut self, frame: &GrayFrame) -> Option<Weather> {
        let vote = SceneFeatures::measure(frame).classify();
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(vote);
        let winner = Weather::ALL
            .iter()
            .copied()
            .max_by_key(|w| self.window.iter().filter(|&&v| v == *w).count())
            .expect("ALL is non-empty");
        // Require a strict majority of the full window to switch.
        let count = self.window.iter().filter(|&&v| v == winner).count();
        if winner != self.current && self.window.len() == self.capacity && 2 * count > self.capacity
        {
            self.current = winner;
            Some(winner)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safecross_trafficsim::{Renderer, RenderConfig, Scenario, Simulator};

    fn rendered_frame(weather: Weather, seed: u64) -> GrayFrame {
        let mut sim = Simulator::new(Scenario::new(weather, true, 0.2), seed);
        sim.run(1.0);
        let mut renderer = Renderer::new(RenderConfig::default(), weather, seed);
        renderer.render(&sim)
    }

    #[test]
    fn classifies_rendered_scenes() {
        for (weather, seed) in [
            (Weather::Daytime, 1),
            (Weather::Rain, 2),
            (Weather::Snow, 3),
        ] {
            let frame = rendered_frame(weather, seed);
            let features = SceneFeatures::measure(&frame);
            assert_eq!(
                features.classify(),
                weather,
                "misclassified {weather}: {features:?}"
            );
        }
    }

    #[test]
    fn detector_needs_majority_to_switch() {
        let mut det = SceneDetector::new(5);
        assert_eq!(det.current(), Weather::Daytime);
        // Two snow frames in a window of five: no switch yet.
        let snow = rendered_frame(Weather::Snow, 4);
        let day = rendered_frame(Weather::Daytime, 5);
        det.observe(&day);
        det.observe(&day);
        det.observe(&day);
        assert_eq!(det.observe(&snow), None);
        assert_eq!(det.observe(&snow), None);
        assert_eq!(det.current(), Weather::Daytime);
        // Third snow frame gives snow 3/5: switch fires exactly once.
        assert_eq!(det.observe(&snow), Some(Weather::Snow));
        assert_eq!(det.observe(&snow), None);
        assert_eq!(det.current(), Weather::Snow);
    }

    #[test]
    fn detector_is_stable_within_a_scene() {
        let mut det = SceneDetector::new(5);
        let mut switches = 0;
        for seed in 0..30 {
            let frame = rendered_frame(Weather::Rain, 100 + seed);
            if det.observe(&frame).is_some() {
                switches += 1;
            }
        }
        assert_eq!(switches, 1, "rain should be detected exactly once");
        assert_eq!(det.current(), Weather::Rain);
    }
}
