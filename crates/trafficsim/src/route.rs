//! Arc-length-parameterised vehicle paths.

use crate::geometry::Vec2;

/// A polyline path a vehicle follows, parameterised by arc length.
///
/// Left-turn trajectories are built as straight approach + circular-arc
/// turn + straight exit, discretised into short segments so one code path
/// handles every manoeuvre.
///
/// ```
/// use safecross_trafficsim::{Route, Vec2};
///
/// let r = Route::new(vec![Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0)]);
/// assert_eq!(r.length(), 10.0);
/// assert_eq!(r.point_at(4.0), Vec2::new(4.0, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    points: Vec<Vec2>,
    cumulative: Vec<f64>,
}

impl Route {
    /// Builds a route through `points`.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two points or zero-length segments.
    pub fn new(points: Vec<Vec2>) -> Self {
        assert!(points.len() >= 2, "a route needs at least two points");
        let mut cumulative = Vec::with_capacity(points.len());
        cumulative.push(0.0);
        for i in 1..points.len() {
            let seg = points[i].distance(points[i - 1]);
            assert!(seg > 1e-9, "zero-length route segment at index {i}");
            cumulative.push(cumulative[i - 1] + seg);
        }
        Route { points, cumulative }
    }

    /// A straight route from `a` to `b`.
    pub fn straight(a: Vec2, b: Vec2) -> Self {
        Route::new(vec![a, b])
    }

    /// Approach + circular left-turn arc + exit, discretised.
    ///
    /// `approach_end` is where the arc begins; the arc sweeps from heading
    /// `h0` to `h1` (radians, counter-clockwise positive) around radius
    /// `radius`, then the route continues straight for `exit_len` metres.
    ///
    /// # Panics
    ///
    /// Panics if `radius` or `exit_len` is non-positive.
    pub fn with_turn(
        approach_start: Vec2,
        approach_end: Vec2,
        h0: f64,
        h1: f64,
        radius: f64,
        exit_len: f64,
    ) -> Self {
        assert!(radius > 0.0 && exit_len > 0.0, "radius and exit must be positive");
        let mut pts = vec![approach_start, approach_end];
        // Arc centre is 90° left of the initial heading.
        let center = approach_end + Vec2::new(h0.cos(), h0.sin()).perp() * radius;
        let steps = 12usize;
        for i in 1..=steps {
            let t = i as f64 / steps as f64;
            let h = h0 + (h1 - h0) * t;
            // Point on circle: centre + radius * direction from centre.
            let radial = Vec2::new(h.cos(), h.sin()).perp() * -radius;
            pts.push(center + radial);
        }
        let last_heading = Vec2::new(h1.cos(), h1.sin());
        let last = *pts.last().expect("non-empty");
        pts.push(last + last_heading * exit_len);
        Route::new(pts)
    }

    /// Total length in metres.
    pub fn length(&self) -> f64 {
        *self.cumulative.last().expect("non-empty")
    }

    /// Position at arc length `s` (clamped to the route ends).
    pub fn point_at(&self, s: f64) -> Vec2 {
        let s = s.clamp(0.0, self.length());
        let i = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite"))
        {
            Ok(i) => i.min(self.points.len() - 2),
            Err(i) => (i - 1).min(self.points.len() - 2),
        };
        let seg_len = self.cumulative[i + 1] - self.cumulative[i];
        let t = (s - self.cumulative[i]) / seg_len;
        self.points[i].lerp(self.points[i + 1], t)
    }

    /// Unit heading at arc length `s`.
    pub fn heading_at(&self, s: f64) -> Vec2 {
        let s = s.clamp(0.0, self.length());
        let i = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite"))
        {
            Ok(i) => i.min(self.points.len() - 2),
            Err(i) => (i - 1).min(self.points.len() - 2),
        };
        (self.points[i + 1] - self.points[i]).normalized()
    }

    /// Arc length of the route point nearest to `p` (coarse search over
    /// vertices, refined within the winning segment).
    pub fn project(&self, p: Vec2) -> f64 {
        let mut best_s = 0.0;
        let mut best_d = f64::INFINITY;
        for i in 0..self.points.len() - 1 {
            let a = self.points[i];
            let b = self.points[i + 1];
            let ab = b - a;
            let t = ((p - a).dot(ab) / ab.length_squared()).clamp(0.0, 1.0);
            let q = a.lerp(b, t);
            let d = p.distance(q);
            if d < best_d {
                best_d = d;
                best_s = self.cumulative[i] + ab.length() * t;
            }
        }
        best_s
    }

    /// The route's waypoints.
    pub fn points(&self) -> &[Vec2] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn straight_route_parameterisation() {
        let r = Route::straight(Vec2::zero(), Vec2::new(0.0, 20.0));
        assert_eq!(r.length(), 20.0);
        assert_eq!(r.point_at(5.0), Vec2::new(0.0, 5.0));
        assert_eq!(r.heading_at(5.0), Vec2::new(0.0, 1.0));
        // Clamping.
        assert_eq!(r.point_at(-3.0), Vec2::zero());
        assert_eq!(r.point_at(99.0), Vec2::new(0.0, 20.0));
    }

    #[test]
    fn polyline_length_accumulates() {
        let r = Route::new(vec![
            Vec2::zero(),
            Vec2::new(3.0, 0.0),
            Vec2::new(3.0, 4.0),
        ]);
        assert_eq!(r.length(), 7.0);
        assert_eq!(r.point_at(3.0), Vec2::new(3.0, 0.0));
        assert_eq!(r.point_at(5.0), Vec2::new(3.0, 2.0));
        assert_eq!(r.heading_at(6.0), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn left_turn_route_ends_heading_north() {
        // Eastbound approach turning left (to north): heading 0 -> pi/2.
        let r = Route::with_turn(
            Vec2::new(-20.0, -2.0),
            Vec2::new(-5.0, -2.0),
            0.0,
            FRAC_PI_2,
            7.0,
            15.0,
        );
        let end_heading = r.heading_at(r.length() - 0.1);
        assert!(end_heading.y > 0.99, "end heading {end_heading:?}");
        // The exit is north-east of the turn start for a left turn with
        // the arc centre on the left.
        let end = r.point_at(r.length());
        assert!(end.y > 10.0, "end {end:?}");
    }

    #[test]
    fn turn_route_is_continuous() {
        let r = Route::with_turn(
            Vec2::new(-20.0, -2.0),
            Vec2::new(-5.0, -2.0),
            0.0,
            FRAC_PI_2,
            7.0,
            10.0,
        );
        // No jumps: consecutive samples are close.
        let mut prev = r.point_at(0.0);
        let mut s = 0.5;
        while s < r.length() {
            let p = r.point_at(s);
            assert!(p.distance(prev) < 1.0, "jump at s={s}");
            prev = p;
            s += 0.5;
        }
    }

    #[test]
    fn u_turn_heading_sweep() {
        let r = Route::with_turn(
            Vec2::new(-10.0, 0.0),
            Vec2::new(0.0, 0.0),
            0.0,
            PI,
            5.0,
            10.0,
        );
        let end_heading = r.heading_at(r.length() - 0.1);
        assert!(end_heading.x < -0.99);
    }

    #[test]
    fn project_finds_nearest_arc_length() {
        let r = Route::straight(Vec2::zero(), Vec2::new(10.0, 0.0));
        assert!((r.project(Vec2::new(4.0, 3.0)) - 4.0).abs() < 1e-9);
        assert_eq!(r.project(Vec2::new(-5.0, 0.0)), 0.0);
        assert_eq!(r.project(Vec2::new(50.0, 1.0)), 10.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn degenerate_route_panics() {
        Route::new(vec![Vec2::zero()]);
    }
}
