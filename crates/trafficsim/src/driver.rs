//! Driver behaviour models: IDM car following and gap-acceptance turning.

use crate::weather::WeatherParams;

/// Intelligent Driver Model parameters (Treiber et al.), derated by the
/// current weather's friction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdmParams {
    /// Desired (free-flow) speed, m/s.
    pub desired_speed: f64,
    /// Maximum acceleration, m/s².
    pub max_accel: f64,
    /// Comfortable deceleration, m/s².
    pub comfort_decel: f64,
    /// Minimum bumper-to-bumper gap, metres.
    pub min_gap: f64,
    /// Desired time headway, seconds.
    pub time_headway: f64,
}

impl IdmParams {
    /// Parameters appropriate for a weather scene: lower friction lowers
    /// usable acceleration/deceleration and drivers keep longer headways.
    pub fn for_weather(w: &WeatherParams) -> Self {
        IdmParams {
            desired_speed: w.desired_speed,
            max_accel: (1.5 * w.friction / 0.8).min(1.5),
            comfort_decel: w.braking_decel(),
            min_gap: 2.0,
            time_headway: 1.5 * (0.8 / w.friction).sqrt(),
        }
    }

    /// IDM acceleration for a vehicle at `speed` with an optional leader
    /// `(gap, leader_speed)`; `gap` is bumper-to-bumper metres.
    ///
    /// Free road (no leader) reduces to the IDM free-flow term.
    pub fn acceleration(&self, speed: f64, leader: Option<(f64, f64)>) -> f64 {
        let free = 1.0 - (speed / self.desired_speed).powi(4);
        let interaction = match leader {
            Some((gap, leader_speed)) => {
                let gap = gap.max(0.01);
                let dv = speed - leader_speed;
                let s_star = self.min_gap
                    + (speed * self.time_headway
                        + speed * dv / (2.0 * (self.max_accel * self.comfort_decel).sqrt()))
                    .max(0.0);
                (s_star / gap).powi(2)
            }
            None => 0.0,
        };
        self.max_accel * (free - interaction)
    }
}

/// Gap-acceptance model for the left-turning driver.
///
/// A turn is accepted when every *visible* oncoming vehicle is at least
/// `safe_gap_seconds` away from the conflict point at its current speed.
/// Vehicles hidden by the occluder are — by definition — not part of the
/// decision, which is precisely the hazard SafeCross closes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapAcceptance {
    /// Minimum acceptable time-to-conflict, seconds.
    pub safe_gap_seconds: f64,
}

impl GapAcceptance {
    /// Builds the model from weather parameters.
    pub fn for_weather(w: &WeatherParams) -> Self {
        GapAcceptance {
            safe_gap_seconds: w.safe_gap_seconds,
        }
    }

    /// Time for an oncoming vehicle to reach the conflict point.
    ///
    /// `distance` is metres before the conflict point (negative = already
    /// past it); stationary vehicles never arrive.
    pub fn time_to_conflict(distance: f64, speed: f64) -> f64 {
        if distance <= 0.0 {
            0.0
        } else if speed < 0.1 {
            f64::INFINITY
        } else {
            distance / speed
        }
    }

    /// Whether a set of `(distance, speed)` oncoming observations admits
    /// a safe turn.
    pub fn accepts<'a, I>(&self, oncoming: I) -> bool
    where
        I: IntoIterator<Item = &'a (f64, f64)>,
    {
        oncoming.into_iter().all(|&(d, v)| {
            let t = Self::time_to_conflict(d, v);
            t > self.safe_gap_seconds
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weather::Weather;

    #[test]
    fn idm_free_flow_accelerates_to_desired_speed() {
        let p = IdmParams::for_weather(&Weather::Daytime.params());
        // Starting from rest: strong acceleration.
        assert!(p.acceleration(0.0, None) > 1.0);
        // At desired speed: zero acceleration.
        assert!(p.acceleration(p.desired_speed, None).abs() < 1e-9);
        // Above desired speed: deceleration.
        assert!(p.acceleration(p.desired_speed * 1.2, None) < 0.0);
    }

    #[test]
    fn idm_brakes_for_close_leader() {
        let p = IdmParams::for_weather(&Weather::Daytime.params());
        let a = p.acceleration(13.0, Some((5.0, 0.0)));
        assert!(a < -3.0, "expected hard braking, got {a}");
    }

    #[test]
    fn idm_ignores_distant_leader() {
        let p = IdmParams::for_weather(&Weather::Daytime.params());
        let far = p.acceleration(10.0, Some((500.0, 10.0)));
        let free = p.acceleration(10.0, None);
        assert!((far - free).abs() < 0.05);
    }

    #[test]
    fn snow_derates_dynamics() {
        let dry = IdmParams::for_weather(&Weather::Daytime.params());
        let snow = IdmParams::for_weather(&Weather::Snow.params());
        assert!(snow.max_accel < dry.max_accel);
        assert!(snow.comfort_decel < dry.comfort_decel);
        assert!(snow.time_headway > dry.time_headway);
        assert!(snow.desired_speed < dry.desired_speed);
    }

    #[test]
    fn gap_acceptance_thresholds() {
        let g = GapAcceptance { safe_gap_seconds: 4.0 };
        // 50 m away at 10 m/s -> 5 s: safe.
        assert!(g.accepts(&[(50.0, 10.0)]));
        // 30 m away at 10 m/s -> 3 s: unsafe.
        assert!(!g.accepts(&[(30.0, 10.0)]));
        // One safe + one unsafe -> unsafe.
        assert!(!g.accepts(&[(50.0, 10.0), (30.0, 10.0)]));
        // Nothing oncoming -> safe.
        assert!(g.accepts(&[]));
    }

    #[test]
    fn stationary_oncoming_vehicle_is_no_threat() {
        let g = GapAcceptance { safe_gap_seconds: 4.0 };
        assert!(g.accepts(&[(20.0, 0.0)]));
    }

    #[test]
    fn vehicle_already_past_conflict_blocks() {
        // Distance <= 0 means it is in the conflict area right now.
        let g = GapAcceptance { safe_gap_seconds: 4.0 };
        assert!(!g.accepts(&[(0.0, 5.0)]));
        assert!(!g.accepts(&[(-2.0, 5.0)]));
    }

    #[test]
    fn weather_scales_accepted_gap() {
        let dry = GapAcceptance::for_weather(&Weather::Daytime.params());
        let snow = GapAcceptance::for_weather(&Weather::Snow.params());
        // A 5 s gap is fine on dry roads but rejected on snow.
        assert!(dry.accepts(&[(50.0, 10.0)]));
        assert!(!snow.accepts(&[(50.0, 10.0)]));
    }
}
