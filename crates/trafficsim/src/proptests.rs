//! Property-based tests over the simulator's geometric and kinematic
//! invariants.

use crate::driver::{GapAcceptance, IdmParams};
use crate::geometry::{OrientedRect, Vec2};
use crate::route::Route;
use crate::weather::Weather;
use proptest::prelude::*;

fn arb_vec2() -> impl Strategy<Value = Vec2> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    #[test]
    fn route_point_at_is_monotone_along_arc(
        ax in -50.0f64..50.0, ay in -50.0f64..50.0,
        bx in -50.0f64..50.0, by in -50.0f64..50.0,
        t1 in 0.0f64..1.0, t2 in 0.0f64..1.0,
    ) {
        prop_assume!(Vec2::new(ax, ay).distance(Vec2::new(bx, by)) > 1.0);
        let r = Route::straight(Vec2::new(ax, ay), Vec2::new(bx, by));
        let (s1, s2) = (t1 * r.length(), t2 * r.length());
        let d1 = r.point_at(s1).distance(r.point_at(0.0));
        let d2 = r.point_at(s2).distance(r.point_at(0.0));
        // Arc length order implies distance-from-start order on a line.
        if s1 <= s2 {
            prop_assert!(d1 <= d2 + 1e-9);
        }
    }

    #[test]
    fn route_project_inverts_point_at(
        ax in -50.0f64..50.0, ay in -50.0f64..50.0,
        bx in -50.0f64..50.0, by in -50.0f64..50.0,
        t in 0.0f64..1.0,
    ) {
        prop_assume!(Vec2::new(ax, ay).distance(Vec2::new(bx, by)) > 1.0);
        let r = Route::straight(Vec2::new(ax, ay), Vec2::new(bx, by));
        let s = t * r.length();
        let back = r.project(r.point_at(s));
        prop_assert!((back - s).abs() < 1e-6, "{back} vs {s}");
    }

    #[test]
    fn rect_contains_its_center_and_corners(center in arb_vec2(),
        hl in 0.5f64..10.0, hw in 0.5f64..10.0, heading in -3.2f64..3.2,
    ) {
        let rect = OrientedRect::new(center, hl, hw, heading);
        prop_assert!(rect.contains(center));
        for c in rect.corners() {
            prop_assert!(rect.contains(c), "corner {c:?} outside");
        }
        // A point far outside along the heading axis is excluded.
        let dir = Vec2::new(heading.cos(), heading.sin());
        prop_assert!(!rect.contains(center + dir * (hl + hw + 1.0)));
    }

    #[test]
    fn segment_through_rect_center_always_intersects(
        center in arb_vec2(), hl in 0.5f64..10.0, hw in 0.5f64..10.0,
        heading in -3.2f64..3.2, dx in -50.0f64..50.0, dy in -50.0f64..50.0,
    ) {
        prop_assume!(dx.abs() + dy.abs() > 0.1);
        let rect = OrientedRect::new(center, hl, hw, heading);
        let offset = Vec2::new(dx, dy);
        prop_assert!(rect.intersects_segment(center - offset, center + offset));
    }

    #[test]
    fn idm_never_exceeds_comfortable_braking_on_free_road(
        speed in 0.0f64..40.0,
    ) {
        for w in Weather::ALL {
            let p = IdmParams::for_weather(&w.params());
            let a = p.acceleration(speed, None);
            prop_assert!(a <= p.max_accel + 1e-9);
        }
    }

    #[test]
    fn idm_closer_leader_never_increases_acceleration(
        speed in 1.0f64..20.0, leader_speed in 0.0f64..20.0,
        gap in 5.0f64..100.0, delta in 0.5f64..4.9,
    ) {
        let p = IdmParams::for_weather(&Weather::Daytime.params());
        let far = p.acceleration(speed, Some((gap, leader_speed)));
        let near = p.acceleration(speed, Some((gap - delta, leader_speed)));
        prop_assert!(near <= far + 1e-9, "near {near} > far {far}");
    }

    #[test]
    fn gap_acceptance_is_monotone_in_distance(
        speed in 1.0f64..20.0, d1 in 1.0f64..200.0, extra in 1.0f64..100.0,
    ) {
        let g = GapAcceptance { safe_gap_seconds: 4.0 };
        // If the nearer vehicle is acceptable, the farther one must be too.
        if g.accepts(&[(d1, speed)]) {
            prop_assert!(g.accepts(&[(d1 + extra, speed)]));
        }
    }

    #[test]
    fn stopping_distance_monotone_in_friction(speed in 1.0f64..30.0) {
        let dry = Weather::Daytime.params().stopping_distance(speed);
        let wet = Weather::Rain.params().stopping_distance(speed);
        let icy = Weather::Snow.params().stopping_distance(speed);
        prop_assert!(dry <= wet && wet <= icy);
    }
}
