//! Opposite-direction support (paper future work: "expand the research
//! scope... simultaneous warning in four directions").
//!
//! The canonical [`Intersection`] describes the eastbound left-turner
//! whose view is blocked by the westbound waiting vehicle. By the scene's
//! point symmetry, the *westbound* left-turner faces the mirrored
//! problem: the eastbound waiting vehicle hides a stretch of the
//! eastbound through lane. This module derives that mirrored geometry so
//! one SafeCross deployment can serve both left-turn movements — the
//! first half of the paper's "four directions" roadmap (the north/south
//! pair is the same construction rotated 90°).

use crate::geometry::{OrientedRect, Vec2};
use crate::intersection::Intersection;
use crate::occlusion::shadow_interval;
use crate::route::Route;
use crate::vehicle::VehicleKind;

/// The mirrored (westbound-turner) view of an intersection.
///
/// All quantities are expressed in the same world frame as the original
/// intersection; only the roles are reflected through the origin.
#[derive(Debug, Clone)]
pub struct MirroredScene {
    /// The westbound turner's eye position at its stop line.
    pub turner_eye: Vec2,
    /// The oncoming lane for the westbound turner: the *eastbound*
    /// through lane, re-parameterised to run towards its conflict point.
    pub oncoming: Route,
    /// Arc length of the conflict point on [`MirroredScene::oncoming`].
    pub conflict_s: f64,
}

/// Reflects a point through the intersection centre.
fn reflect(p: Vec2) -> Vec2 {
    Vec2::new(-p.x, -p.y)
}

impl MirroredScene {
    /// Derives the westbound-turner scene from the canonical geometry.
    pub fn of(intersection: &Intersection) -> Self {
        let turner_eye = reflect(intersection.turner_eye());
        // The eastbound through lane carries the westbound turner's
        // oncoming traffic. Reflect the canonical oncoming route so the
        // parameterisation again runs from far side towards the conflict.
        let points: Vec<Vec2> = intersection
            .oncoming_route()
            .points()
            .iter()
            .map(|&p| reflect(p))
            .collect();
        let oncoming = Route::new(points);
        let conflict_world = reflect(
            intersection
                .oncoming_route()
                .point_at(intersection.conflict_s()),
        );
        let conflict_s = oncoming.project(conflict_world);
        MirroredScene {
            turner_eye,
            oncoming,
            conflict_s,
        }
    }

    /// Footprint of the occluder blocking the westbound turner's view:
    /// a vehicle of `kind` waiting at the *eastbound* left-turn stop
    /// line (the mirror image of the canonical occluder pose).
    pub fn occluder_pose(&self, intersection: &Intersection, kind: VehicleKind) -> OrientedRect {
        let canonical = intersection.occluder_pose(kind);
        OrientedRect::new(
            reflect(canonical.center),
            canonical.half_length,
            canonical.half_width,
            canonical.heading + std::f64::consts::PI,
        )
    }

    /// The blind interval on the mirrored oncoming lane, or `None` if
    /// `kind` casts no shadow.
    pub fn blind_interval(
        &self,
        intersection: &Intersection,
        kind: VehicleKind,
    ) -> Option<(f64, f64)> {
        let occ = self.occluder_pose(intersection, kind);
        shadow_interval(self.turner_eye, &occ, &self.oncoming, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrored_eye_is_the_reflection() {
        let ix = Intersection::new();
        let m = MirroredScene::of(&ix);
        let e = ix.turner_eye();
        assert!((m.turner_eye.x + e.x).abs() < 1e-9);
        assert!((m.turner_eye.y + e.y).abs() < 1e-9);
    }

    #[test]
    fn mirrored_oncoming_is_the_eastbound_lane() {
        let ix = Intersection::new();
        let m = MirroredScene::of(&ix);
        // The mirrored oncoming lane lies south of the centre (y < 0),
        // i.e. the eastbound through lane, and runs west -> east.
        let start = m.oncoming.point_at(0.0);
        let end = m.oncoming.point_at(m.oncoming.length());
        assert!(start.y < 0.0 && end.y < 0.0);
        assert!(start.x < end.x, "runs west to east: {start:?} -> {end:?}");
    }

    #[test]
    fn blind_interval_matches_canonical_by_symmetry() {
        let ix = Intersection::new();
        let m = MirroredScene::of(&ix);
        let (c_lo, c_hi) = ix.blind_interval(VehicleKind::Van).expect("canonical");
        let (m_lo, m_hi) = m.blind_interval(&ix, VehicleKind::Van).expect("mirrored");
        // Point symmetry preserves arc lengths exactly (up to sampling).
        assert!((c_lo - m_lo).abs() < 1.0, "{c_lo} vs {m_lo}");
        assert!((c_hi - m_hi).abs() < 1.0, "{c_hi} vs {m_hi}");
    }

    #[test]
    fn conflict_point_reflects() {
        let ix = Intersection::new();
        let m = MirroredScene::of(&ix);
        let canonical = ix.oncoming_route().point_at(ix.conflict_s());
        let mirrored = m.oncoming.point_at(m.conflict_s);
        assert!((canonical.x + mirrored.x).abs() < 0.5);
        assert!((canonical.y + mirrored.y).abs() < 0.5);
    }

    #[test]
    fn both_directions_assess_independently() {
        // A vehicle threatening the canonical turner sits on the
        // westbound lane and is irrelevant to the mirrored turner's lane
        // (and vice versa) — the deployments are independent.
        let ix = Intersection::new();
        let m = MirroredScene::of(&ix);
        let threat_canonical = ix.oncoming_route().point_at(ix.conflict_s() - 20.0);
        // That point is on the north (westbound) lane; the mirrored
        // oncoming lane is south.
        assert!(threat_canonical.y > 0.0);
        let nearest_on_mirror = m
            .oncoming
            .point_at(m.oncoming.project(threat_canonical));
        assert!(
            nearest_on_mirror.distance(threat_canonical) > 5.0,
            "lanes must be distinct"
        );
    }
}
