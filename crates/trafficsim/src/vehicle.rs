//! Vehicle kinds and kinematic state.

use crate::geometry::{OrientedRect, Vec2};
use crate::route::Route;

/// Opaque vehicle identifier, unique within a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VehicleId(pub u64);

/// Vehicle body classes with distinct footprints and render intensities.
///
/// The paper's occluder is "a van" / "a big car"; the distinction matters
/// because only tall/long bodies produce a blind area worth warning
/// about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VehicleKind {
    /// Passenger car (4.5 m x 1.8 m).
    Car,
    /// Delivery van (6.0 m x 2.2 m) — the canonical occluder.
    Van,
    /// Truck (9.0 m x 2.5 m).
    Truck,
}

impl VehicleKind {
    /// Body length in metres.
    pub fn length(&self) -> f64 {
        match self {
            VehicleKind::Car => 4.5,
            VehicleKind::Van => 6.0,
            VehicleKind::Truck => 9.0,
        }
    }

    /// Body width in metres.
    pub fn width(&self) -> f64 {
        match self {
            VehicleKind::Car => 1.8,
            VehicleKind::Van => 2.2,
            VehicleKind::Truck => 2.5,
        }
    }

    /// Render intensity (trucks/vans read brighter on the synthetic
    /// camera, cars mid-gray).
    pub fn intensity(&self) -> u8 {
        match self {
            VehicleKind::Car => 190,
            VehicleKind::Van => 225,
            VehicleKind::Truck => 245,
        }
    }

    /// Whether this body is large enough to create a blind area behind it
    /// (the paper's "big car on the opposite side" labelling rule).
    pub fn is_occluder(&self) -> bool {
        !matches!(self, VehicleKind::Car)
    }
}

/// A vehicle travelling along a [`Route`].
#[derive(Debug, Clone)]
pub struct Vehicle {
    /// Unique identifier.
    pub id: VehicleId,
    /// Body class.
    pub kind: VehicleKind,
    /// Path being followed.
    pub route: Route,
    /// Arc-length position along the route, metres.
    pub s: f64,
    /// Current speed, m/s (non-negative).
    pub speed: f64,
    /// The driver's personal free-flow cruise speed, m/s. Car-following
    /// converges to this on an open road, so scripted vehicles hold the
    /// speed they were injected with.
    pub desired_speed: f64,
}

impl Vehicle {
    /// Creates a vehicle at the start of `route`, cruising at `speed`.
    pub fn new(id: VehicleId, kind: VehicleKind, route: Route, speed: f64) -> Self {
        Vehicle {
            id,
            kind,
            route,
            s: 0.0,
            speed: speed.max(0.0),
            desired_speed: speed.max(0.1),
        }
    }

    /// World position of the vehicle centre.
    pub fn position(&self) -> Vec2 {
        self.route.point_at(self.s)
    }

    /// Unit heading vector.
    pub fn heading(&self) -> Vec2 {
        self.route.heading_at(self.s)
    }

    /// Oriented body footprint for rendering and occlusion.
    pub fn footprint(&self) -> OrientedRect {
        OrientedRect::new(
            self.position(),
            self.kind.length() / 2.0,
            self.kind.width() / 2.0,
            self.heading().angle(),
        )
    }

    /// Advances the vehicle by `dt` seconds with acceleration `accel`,
    /// clamping speed at zero.
    pub fn advance(&mut self, accel: f64, dt: f64) {
        self.speed = (self.speed + accel * dt).max(0.0);
        self.s += self.speed * dt;
    }

    /// Whether the vehicle has reached the end of its route.
    pub fn finished(&self) -> bool {
        self.s >= self.route.length()
    }

    /// Remaining distance to the end of the route.
    pub fn remaining(&self) -> f64 {
        (self.route.length() - self.s).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_route() -> Route {
        Route::straight(Vec2::zero(), Vec2::new(100.0, 0.0))
    }

    #[test]
    fn kinds_have_distinct_footprints() {
        assert!(VehicleKind::Truck.length() > VehicleKind::Van.length());
        assert!(VehicleKind::Van.length() > VehicleKind::Car.length());
        assert!(!VehicleKind::Car.is_occluder());
        assert!(VehicleKind::Van.is_occluder());
        assert!(VehicleKind::Truck.is_occluder());
    }

    #[test]
    fn advance_integrates_speed() {
        let mut v = Vehicle::new(VehicleId(1), VehicleKind::Car, test_route(), 10.0);
        v.advance(0.0, 1.0);
        assert_eq!(v.s, 10.0);
        assert_eq!(v.position(), Vec2::new(10.0, 0.0));
        v.advance(2.0, 1.0); // accelerate
        assert_eq!(v.speed, 12.0);
    }

    #[test]
    fn speed_never_negative() {
        let mut v = Vehicle::new(VehicleId(1), VehicleKind::Car, test_route(), 1.0);
        v.advance(-10.0, 1.0);
        assert_eq!(v.speed, 0.0);
        let s = v.s;
        v.advance(-10.0, 1.0);
        assert_eq!(v.s, s); // fully stopped
    }

    #[test]
    fn finished_at_route_end() {
        let mut v = Vehicle::new(VehicleId(1), VehicleKind::Car, test_route(), 60.0);
        assert!(!v.finished());
        v.advance(0.0, 2.0);
        assert!(v.finished());
        assert_eq!(v.remaining(), 0.0);
    }

    #[test]
    fn footprint_follows_heading() {
        let v = Vehicle::new(
            VehicleId(1),
            VehicleKind::Van,
            Route::straight(Vec2::zero(), Vec2::new(0.0, 50.0)),
            5.0,
        );
        let fp = v.footprint();
        // Northbound: the long axis is vertical.
        assert!((fp.heading - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        assert!(fp.contains(Vec2::new(0.0, 2.5)));
        assert!(!fp.contains(Vec2::new(2.5, 0.0)));
    }
}
