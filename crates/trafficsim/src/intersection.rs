//! The paper's Fig. 2 intersection scene.
//!
//! World frame: metres, origin at the intersection centre, x east,
//! y north. Right-hand driving. The actors:
//!
//! - **Turner** ("green vehicle"): eastbound in the left-turn lane
//!   (y = -1.75), waiting at the stop line (x = -9) to turn north.
//! - **Occluder** ("grey van"): westbound in the opposing left-turn lane
//!   (y = +1.75), waiting at its own stop line (x = +9). Its body hides a
//!   stretch of the oncoming through lane from the turner.
//! - **Oncoming traffic**: westbound through lane (y = +5.25), crossing
//!   the turner's path at the conflict point.
//! - **Eastbound through traffic** (y = -5.25): scene clutter only.

use crate::geometry::{OrientedRect, Vec2};
use crate::occlusion::shadow_interval;
use crate::route::Route;
use crate::vehicle::VehicleKind;
use std::f64::consts::FRAC_PI_2;

/// Lane width in metres.
pub const LANE_WIDTH: f64 = 3.5;
/// Half extent of the simulated world (square) in metres. Larger than
/// the camera view (55 m) so freshly spawned vehicles are still far
/// enough from the conflict point to constitute acceptable gaps.
pub const WORLD_HALF: f64 = 80.0;
/// Stop-line distance from the intersection centre.
pub const STOP_LINE: f64 = 9.0;

/// Static geometry of the intersection and derived safety quantities.
#[derive(Debug, Clone)]
pub struct Intersection {
    oncoming: Route,
    eastbound: Route,
    turner: Route,
    occluder_approach: Route,
    conflict_s: f64,
    turner_eye: Vec2,
    turn_start_s: f64,
}

impl Default for Intersection {
    fn default() -> Self {
        Self::new()
    }
}

impl Intersection {
    /// Builds the canonical scene.
    pub fn new() -> Self {
        let inner = LANE_WIDTH / 2.0; // 1.75: left-turn lane centre offset
        let outer = LANE_WIDTH * 1.5; // 5.25: through lane centre offset

        // Westbound through lane: east edge to west edge.
        let oncoming = Route::straight(
            Vec2::new(WORLD_HALF, outer),
            Vec2::new(-WORLD_HALF, outer),
        );
        // Eastbound through lane (clutter).
        let eastbound = Route::straight(
            Vec2::new(-WORLD_HALF, -outer),
            Vec2::new(WORLD_HALF, -outer),
        );
        // Turner: eastbound left-turn lane, arc onto the northbound lane
        // (x = +1.75), then exit north.
        let radius = STOP_LINE + inner; // lands exactly on x = +inner
        let turner = Route::with_turn(
            Vec2::new(-WORLD_HALF, -inner),
            Vec2::new(-STOP_LINE, -inner),
            0.0,
            FRAC_PI_2,
            radius,
            WORLD_HALF - STOP_LINE,
        );
        let turn_start_s = WORLD_HALF - STOP_LINE;
        // Occluder approach: westbound left-turn lane up to its stop line.
        let occluder_approach = Route::straight(
            Vec2::new(WORLD_HALF, inner),
            Vec2::new(STOP_LINE, inner),
        );
        // Conflict point: where the turner's exit (x = +inner) crosses the
        // oncoming lane (y = +outer).
        let conflict_s = oncoming.project(Vec2::new(inner, outer));
        let turner_eye = Vec2::new(-STOP_LINE, -inner);
        Intersection {
            oncoming,
            eastbound,
            turner,
            occluder_approach,
            conflict_s,
            turner_eye,
            turn_start_s,
        }
    }

    /// The westbound through (oncoming) lane.
    pub fn oncoming_route(&self) -> &Route {
        &self.oncoming
    }

    /// The eastbound through lane (visual clutter).
    pub fn eastbound_route(&self) -> &Route {
        &self.eastbound
    }

    /// The turner's full path (approach, arc, exit).
    pub fn turner_route(&self) -> &Route {
        &self.turner
    }

    /// The occluder's approach lane (ends at its stop line).
    pub fn occluder_approach(&self) -> &Route {
        &self.occluder_approach
    }

    /// Arc length on the oncoming route of the turner-path conflict point.
    pub fn conflict_s(&self) -> f64 {
        self.conflict_s
    }

    /// Arc length on the turner route where the stop line sits.
    pub fn turn_start_s(&self) -> f64 {
        self.turn_start_s
    }

    /// The turning driver's eye position while waiting at the stop line.
    pub fn turner_eye(&self) -> Vec2 {
        self.turner_eye
    }

    /// Footprint of an occluder of the given kind parked at its stop
    /// line, facing west.
    pub fn occluder_pose(&self, kind: VehicleKind) -> OrientedRect {
        let center = self
            .occluder_approach
            .point_at(self.occluder_approach.length())
            + Vec2::new(kind.length() / 2.0, 0.0);
        OrientedRect::new(
            center,
            kind.length() / 2.0,
            kind.width() / 2.0,
            std::f64::consts::PI,
        )
    }

    /// The blind interval (arc lengths on the oncoming route) cast by an
    /// occluder of `kind`, or `None` for non-occluding bodies.
    pub fn blind_interval(&self, kind: VehicleKind) -> Option<(f64, f64)> {
        shadow_interval(self.turner_eye, &self.occluder_pose(kind), &self.oncoming, 0.5)
    }

    /// Assesses the oncoming traffic from the turner's point of view.
    ///
    /// `oncoming` holds `(arc_length, speed)` pairs on the oncoming
    /// route; `occluder` is the parked occluder kind, if present;
    /// `safe_gap` is the weather's accepted time gap in seconds.
    pub fn assess(
        &self,
        oncoming: &[(f64, f64)],
        occluder: Option<VehicleKind>,
        safe_gap: f64,
    ) -> DangerAssessment {
        let blind = occluder.and_then(|k| self.blind_interval(k));
        let mut min_ttc = f64::INFINITY;
        let mut hidden_vehicles = 0usize;
        let mut visible_threat = false;
        let mut hidden_threat = false;
        for &(s, v) in oncoming {
            let dist = self.conflict_s - s;
            if dist < -2.0 {
                continue; // already through the conflict area
            }
            let ttc = if dist <= 0.0 {
                0.0
            } else if v < 0.1 {
                f64::INFINITY
            } else {
                dist / v
            };
            min_ttc = min_ttc.min(ttc);
            let hidden = blind.map(|(lo, hi)| s >= lo && s <= hi).unwrap_or(false);
            if hidden {
                hidden_vehicles += 1;
            }
            if ttc <= safe_gap {
                if hidden {
                    hidden_threat = true;
                } else {
                    visible_threat = true;
                }
            }
        }
        DangerAssessment {
            min_ttc,
            hidden_vehicles,
            visible_threat,
            hidden_threat,
            blind_interval: blind,
        }
    }
}

/// The turner-perspective safety picture at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct DangerAssessment {
    /// Smallest time-to-conflict among oncoming vehicles (s).
    pub min_ttc: f64,
    /// Number of oncoming vehicles currently inside the blind interval.
    pub hidden_vehicles: usize,
    /// A threatening vehicle the driver can see (ordinary waiting case).
    pub visible_threat: bool,
    /// A threatening vehicle the driver **cannot** see — the collision
    /// case SafeCross exists to prevent.
    pub hidden_threat: bool,
    /// The blind interval on the oncoming route, if an occluder exists.
    pub blind_interval: Option<(f64, f64)>,
}

impl DangerAssessment {
    /// Whether the ground truth says turning now is dangerous.
    pub fn dangerous(&self) -> bool {
        self.visible_threat || self.hidden_threat
    }

    /// Whether the scene has a blind area at all.
    pub fn has_blind_area(&self) -> bool {
        self.blind_interval.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_point_is_past_the_centre() {
        let ix = Intersection::new();
        // The conflict sits near x = +1.75 on the oncoming lane, i.e.
        // slightly more than WORLD_HALF metres of travel from the east.
        let p = ix.oncoming_route().point_at(ix.conflict_s());
        assert!((p.x - LANE_WIDTH / 2.0).abs() < 0.5, "{p:?}");
        assert!((p.y - LANE_WIDTH * 1.5).abs() < 0.5, "{p:?}");
    }

    #[test]
    fn van_casts_blind_interval_upstream_of_conflict() {
        let ix = Intersection::new();
        let (lo, hi) = ix.blind_interval(VehicleKind::Van).expect("van must occlude");
        // Convert to x positions: the blind stretch must lie east of the
        // conflict point (vehicles approach from the east).
        let x_lo = ix.oncoming_route().point_at(lo).x;
        let x_hi = ix.oncoming_route().point_at(hi).x;
        assert!(x_lo > x_hi, "oncoming route runs east->west");
        assert!(x_hi > LANE_WIDTH / 2.0, "shadow ends before the conflict: {x_hi}");
        assert!(x_lo > 10.0, "shadow starts well upstream: {x_lo}");
        // The blind stretch is tens of metres long (projective widening).
        assert!(hi - lo > 10.0, "blind length {}", hi - lo);
    }

    #[test]
    fn truck_shadow_wider_than_van() {
        let ix = Intersection::new();
        let (v0, v1) = ix.blind_interval(VehicleKind::Van).unwrap();
        let (t0, t1) = ix.blind_interval(VehicleKind::Truck).unwrap();
        assert!(t1 - t0 > v1 - v0);
    }

    #[test]
    fn assessment_flags_hidden_threat() {
        let ix = Intersection::new();
        let (lo, hi) = ix.blind_interval(VehicleKind::Van).unwrap();
        let mid = (lo + hi) / 2.0;
        // A fast vehicle inside the blind interval.
        let a = ix.assess(&[(mid, 13.9)], Some(VehicleKind::Van), 4.0);
        assert!(a.hidden_threat, "{a:?}");
        assert!(!a.visible_threat);
        assert_eq!(a.hidden_vehicles, 1);
        assert!(a.dangerous());
        assert!(a.has_blind_area());
    }

    #[test]
    fn assessment_flags_visible_threat_without_occluder() {
        let ix = Intersection::new();
        let s = ix.conflict_s() - 20.0; // 20 m before conflict at 10 m/s -> 2 s
        let a = ix.assess(&[(s, 10.0)], None, 4.0);
        assert!(a.visible_threat);
        assert!(!a.hidden_threat);
        assert!(!a.has_blind_area());
    }

    #[test]
    fn distant_vehicle_is_safe() {
        let ix = Intersection::new();
        let a = ix.assess(&[(5.0, 13.9)], Some(VehicleKind::Van), 4.0);
        assert!(!a.dangerous(), "{a:?}");
        assert!(a.min_ttc > 4.0);
    }

    #[test]
    fn vehicle_past_conflict_ignored() {
        let ix = Intersection::new();
        let a = ix.assess(&[(ix.conflict_s() + 10.0, 13.9)], None, 4.0);
        assert!(!a.dangerous());
        assert_eq!(a.min_ttc, f64::INFINITY);
    }

    #[test]
    fn turner_route_passes_through_conflict_point() {
        let ix = Intersection::new();
        let conflict = ix.oncoming_route().point_at(ix.conflict_s());
        // Some point on the turner route comes close to the conflict.
        let s = ix.turner_route().project(conflict);
        let p = ix.turner_route().point_at(s);
        assert!(p.distance(conflict) < 1.5, "distance {}", p.distance(conflict));
    }

    #[test]
    fn stop_line_matches_turn_start() {
        let ix = Intersection::new();
        let p = ix.turner_route().point_at(ix.turn_start_s());
        assert!(p.distance(ix.turner_eye()) < 1e-6);
    }
}
