//! The discrete-time intersection simulator.

use crate::driver::{GapAcceptance, IdmParams};
use crate::geometry::OrientedRect;
use crate::intersection::Intersection;
use crate::occlusion::is_visible;
use crate::vehicle::{Vehicle, VehicleId, VehicleKind};
use crate::weather::Weather;
use safecross_tensor::TensorRng;

/// Simulation step matching the paper's 30 Hz camera.
pub const DT: f64 = 1.0 / 30.0;

/// Standard deviation of the per-step driver acceleration wander, m/s².
/// Real drivers do not hold a perfectly constant speed; this noise is
/// what makes time-to-conflict genuinely uncertain from early frames and
/// rewards models that track recent motion (the SlowFast fast pathway).
pub const SPEED_WANDER_SIGMA: f64 = 2.8;

/// How the waiting turner decides to go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TurnPolicy {
    /// Gap acceptance over *visible* vehicles only — a human driver whose
    /// view may be blocked. Risky when a blind area exists.
    HumanVisible,
    /// Gap acceptance over all vehicles — a driver assisted by SafeCross
    /// warnings (the roadside unit sees everything).
    Omniscient,
    /// Refuses to turn while a blind area exists and otherwise behaves
    /// like [`TurnPolicy::HumanVisible`] — the maximally cautious
    /// baseline whose wasted waiting time motivates the paper.
    AlwaysWait,
}

/// A complete experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Weather scene (drives physics and rendering).
    pub weather: Weather,
    /// Parked occluder in the opposing left-turn lane, if any.
    pub occluder: Option<VehicleKind>,
    /// Oncoming (westbound through) Poisson arrival rate, vehicles/s.
    pub arrival_rate: f64,
    /// Eastbound clutter arrival rate, vehicles/s.
    pub eastbound_rate: f64,
    /// Turner decision policy.
    pub policy: TurnPolicy,
}

impl Scenario {
    /// Convenience constructor: a Van occluder when `occluded`, light
    /// eastbound clutter, human visibility policy.
    pub fn new(weather: Weather, occluded: bool, arrival_rate: f64) -> Self {
        Scenario {
            weather,
            occluder: occluded.then_some(VehicleKind::Van),
            arrival_rate,
            eastbound_rate: 0.10,
            policy: TurnPolicy::HumanVisible,
        }
    }

    /// Returns the scenario with a different turn policy.
    pub fn with_policy(mut self, policy: TurnPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Notable simulation occurrences, timestamped in seconds.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// The turner committed to the turn after `wait` seconds at the line.
    TurnStarted {
        /// Simulation time of the event.
        time: f64,
        /// Seconds spent waiting at the stop line.
        wait: f64,
    },
    /// The turner cleared the intersection.
    TurnCompleted {
        /// Simulation time of the event.
        time: f64,
    },
    /// During a turn an oncoming vehicle got dangerously close — the
    /// collision precursor SafeCross is designed to prevent.
    NearMiss {
        /// Simulation time of the event.
        time: f64,
        /// Offending vehicle's time-to-conflict when detected, seconds.
        ttc: f64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TurnerState {
    Approaching,
    Waiting { since: f64 },
    Turning,
    Done,
}

/// The simulator: vehicles, the turner state machine, and an event log.
#[derive(Debug, Clone)]
pub struct Simulator {
    scenario: Scenario,
    intersection: Intersection,
    idm: IdmParams,
    gap: GapAcceptance,
    time: f64,
    rng: TensorRng,
    next_id: u64,
    oncoming: Vec<Vehicle>,
    eastbound: Vec<Vehicle>,
    occluder: Option<Vehicle>,
    turner: Vehicle,
    turner_state: TurnerState,
    near_miss_flagged: bool,
    events: Vec<SimEvent>,
    turns_completed: usize,
    total_wait: f64,
}

impl Simulator {
    /// Creates a simulator with a deterministic seed.
    pub fn new(scenario: Scenario, seed: u64) -> Self {
        let intersection = Intersection::new();
        let params = scenario.weather.params();
        let idm = IdmParams::for_weather(&params);
        let gap = GapAcceptance::for_weather(&params);
        let mut next_id = 0u64;
        let occluder = scenario.occluder.map(|kind| {
            let route = intersection.occluder_approach().clone();
            let len = route.length();
            let mut v = Vehicle::new(VehicleId(next_id), kind, route, 0.0);
            next_id += 1;
            v.s = len; // parked at its stop line
            v
        });
        let turner = Self::fresh_turner(&intersection, &mut next_id, idm.desired_speed);
        Simulator {
            scenario,
            intersection,
            idm,
            gap,
            time: 0.0,
            rng: TensorRng::seed_from(seed),
            next_id,
            oncoming: Vec::new(),
            eastbound: Vec::new(),
            occluder,
            turner,
            turner_state: TurnerState::Approaching,
            near_miss_flagged: false,
            events: Vec::new(),
            turns_completed: 0,
            total_wait: 0.0,
        }
    }

    fn fresh_turner(ix: &Intersection, next_id: &mut u64, speed: f64) -> Vehicle {
        let mut v = Vehicle::new(
            VehicleId(*next_id),
            VehicleKind::Car,
            ix.turner_route().clone(),
            speed * 0.8,
        );
        *next_id += 1;
        v.s = (ix.turn_start_s() - 30.0).max(0.0);
        v
    }

    fn random_kind(rng: &mut TensorRng) -> VehicleKind {
        let u = rng.unit();
        if u < 0.78 {
            VehicleKind::Car
        } else if u < 0.93 {
            VehicleKind::Van
        } else {
            VehicleKind::Truck
        }
    }

    fn spawn_lane(&mut self, lane: Lane, dt: f64) {
        let rate = match lane {
            Lane::Oncoming => self.scenario.arrival_rate,
            Lane::Eastbound => self.scenario.eastbound_rate,
        };
        if (self.rng.unit() as f64) >= rate * dt {
            return;
        }
        let route = match lane {
            Lane::Oncoming => self.intersection.oncoming_route().clone(),
            Lane::Eastbound => self.intersection.eastbound_route().clone(),
        };
        let queue = match lane {
            Lane::Oncoming => &self.oncoming,
            Lane::Eastbound => &self.eastbound,
        };
        // Do not spawn on top of a vehicle still near the entrance.
        if queue.iter().any(|v| v.s < 12.0) {
            return;
        }
        let jitter = 0.85 + 0.3 * self.rng.unit() as f64;
        let speed = self.idm.desired_speed * jitter;
        let kind = Self::random_kind(&mut self.rng);
        let v = Vehicle::new(VehicleId(self.next_id), kind, route, speed);
        self.next_id += 1;
        match lane {
            Lane::Oncoming => self.oncoming.push(v),
            Lane::Eastbound => self.eastbound.push(v),
        }
    }

    fn advance_lane(vehicles: &mut Vec<Vehicle>, idm: &IdmParams, dt: f64) {
        // Sort by arc length descending: index 0 is the lane leader.
        vehicles.sort_by(|a, b| b.s.partial_cmp(&a.s).expect("finite"));
        for i in 0..vehicles.len() {
            let leader = if i == 0 {
                None
            } else {
                let ahead = &vehicles[i - 1];
                let gap = ahead.s
                    - vehicles[i].s
                    - (ahead.kind.length() + vehicles[i].kind.length()) / 2.0;
                Some((gap, ahead.speed))
            };
            // Each driver pursues their personal cruise speed.
            let personal = IdmParams {
                desired_speed: vehicles[i].desired_speed,
                ..*idm
            };
            let a = personal.acceleration(vehicles[i].speed, leader);
            vehicles[i].advance(a, dt);
        }
        vehicles.retain(|v| !v.finished());
    }

    /// Applies the drivers' speed wander: a bounded random walk on each
    /// moving vehicle's speed (see [`SPEED_WANDER_SIGMA`]).
    fn wander(&mut self, dt: f64) {
        for v in self.oncoming.iter_mut().chain(self.eastbound.iter_mut()) {
            if v.speed < 0.5 {
                continue; // queued vehicles do not jitter
            }
            let eps = (self.rng.unit() as f64 - 0.5) * 2.0 * SPEED_WANDER_SIGMA * dt;
            // Bound the wander to ±10% of the personal cruise speed.
            let lo = v.desired_speed * 0.87;
            let hi = v.desired_speed * 1.13;
            v.speed = (v.speed + eps).clamp(lo.min(v.speed), hi.max(v.speed));
        }
    }

    /// `(distance_to_conflict, speed, visible)` for every oncoming
    /// vehicle, in spawn order.
    pub fn oncoming_observations(&self) -> Vec<(f64, f64, bool)> {
        let eye = self.intersection.turner_eye();
        let occluders: Vec<OrientedRect> = self
            .occluder
            .iter()
            .map(|o| o.footprint())
            .collect();
        self.oncoming
            .iter()
            .map(|v| {
                let dist = self.intersection.conflict_s() - v.s;
                let visible = is_visible(eye, v.position(), &occluders);
                (dist, v.speed, visible)
            })
            .collect()
    }

    fn turner_decides_to_go(&self) -> bool {
        let obs = self.oncoming_observations();
        match self.scenario.policy {
            TurnPolicy::HumanVisible => {
                let visible: Vec<(f64, f64)> = obs
                    .iter()
                    .filter(|&&(_, _, vis)| vis)
                    .map(|&(d, v, _)| (d, v))
                    .collect();
                self.gap.accepts(visible.iter())
            }
            TurnPolicy::Omniscient => {
                let all: Vec<(f64, f64)> = obs.iter().map(|&(d, v, _)| (d, v)).collect();
                self.gap.accepts(all.iter())
            }
            TurnPolicy::AlwaysWait => {
                if self.occluder.is_some() {
                    false
                } else {
                    let all: Vec<(f64, f64)> = obs.iter().map(|&(d, v, _)| (d, v)).collect();
                    self.gap.accepts(all.iter())
                }
            }
        }
    }

    /// Advances the simulation by one step of `dt` seconds.
    pub fn step(&mut self, dt: f64) {
        self.time += dt;
        self.spawn_lane(Lane::Oncoming, dt);
        self.spawn_lane(Lane::Eastbound, dt);
        self.wander(dt);
        Self::advance_lane(&mut self.oncoming, &self.idm, dt);
        Self::advance_lane(&mut self.eastbound, &self.idm, dt);

        match self.turner_state {
            TurnerState::Approaching => {
                let stop_gap = self.intersection.turn_start_s() - self.turner.s;
                let a = self.idm.acceleration(self.turner.speed, Some((stop_gap.max(0.0), 0.0)));
                self.turner.advance(a, dt);
                // IDM holds ~min_gap back from the virtual obstacle, so
                // "arrived" means within min_gap + 1.5 m and nearly stopped.
                if stop_gap < self.idm.min_gap + 1.5 && self.turner.speed < 0.3 {
                    self.turner_state = TurnerState::Waiting { since: self.time };
                }
            }
            TurnerState::Waiting { since } => {
                if self.turner_decides_to_go() {
                    let wait = self.time - since;
                    self.total_wait += wait;
                    self.events.push(SimEvent::TurnStarted { time: self.time, wait });
                    self.near_miss_flagged = false;
                    self.turner_state = TurnerState::Turning;
                }
            }
            TurnerState::Turning => {
                let a = self.idm.acceleration(self.turner.speed, None);
                self.turner.advance(a, dt);
                // Near-miss detection while crossing the oncoming lane.
                let conflict = self
                    .intersection
                    .oncoming_route()
                    .point_at(self.intersection.conflict_s());
                if !self.near_miss_flagged && self.turner.position().distance(conflict) < 4.0 {
                    for &(dist, speed, _) in &self.oncoming_observations() {
                        let ttc = GapAcceptance::time_to_conflict(dist, speed);
                        // One event per turn: the first moment a vehicle
                        // gets critically close while we occupy its lane.
                        if ttc < 1.2 {
                            self.events.push(SimEvent::NearMiss { time: self.time, ttc });
                            self.near_miss_flagged = true;
                            break;
                        }
                    }
                }
                if self.turner.finished() {
                    self.turns_completed += 1;
                    self.events.push(SimEvent::TurnCompleted { time: self.time });
                    self.turner_state = TurnerState::Done;
                }
            }
            TurnerState::Done => {
                // Respawn a new turner approaching the line.
                self.turner =
                    Self::fresh_turner(&self.intersection, &mut self.next_id, self.idm.desired_speed);
                self.turner_state = TurnerState::Approaching;
            }
        }
    }

    /// Runs the simulation for `seconds` at the camera rate [`DT`].
    pub fn run(&mut self, seconds: f64) {
        let steps = (seconds / DT).ceil() as usize;
        for _ in 0..steps {
            self.step(DT);
        }
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The scenario this simulator runs.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The static scene geometry.
    pub fn intersection(&self) -> &Intersection {
        &self.intersection
    }

    /// The event log so far.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Completed left turns.
    pub fn turns_completed(&self) -> usize {
        self.turns_completed
    }

    /// Mean waiting time per started turn, seconds.
    pub fn mean_wait(&self) -> f64 {
        let starts = self
            .events
            .iter()
            .filter(|e| matches!(e, SimEvent::TurnStarted { .. }))
            .count();
        if starts == 0 {
            0.0
        } else {
            self.total_wait / starts as f64
        }
    }

    /// Whether the turner is currently waiting at the stop line.
    pub fn turner_is_waiting(&self) -> bool {
        matches!(self.turner_state, TurnerState::Waiting { .. })
    }

    /// The ground-truth safety assessment at this instant.
    pub fn assessment(&self) -> crate::intersection::DangerAssessment {
        let obs: Vec<(f64, f64)> = self.oncoming.iter().map(|v| (v.s, v.speed)).collect();
        self.intersection.assess(
            &obs,
            self.occluder.as_ref().map(|o| o.kind),
            self.gap.safe_gap_seconds,
        )
    }

    /// Whether any oncoming vehicle currently sits inside the blind area.
    pub fn blind_area_occupied(&self) -> bool {
        self.assessment().hidden_vehicles > 0
    }

    /// Every body to draw, with its render intensity: oncoming,
    /// eastbound, occluder and turner.
    pub fn render_footprints(&self) -> Vec<(OrientedRect, u8)> {
        let mut out: Vec<(OrientedRect, u8)> = Vec::new();
        for v in self.oncoming.iter().chain(&self.eastbound) {
            out.push((v.footprint(), v.kind.intensity()));
        }
        if let Some(o) = &self.occluder {
            out.push((o.footprint(), o.kind.intensity()));
        }
        out.push((self.turner.footprint(), self.turner.kind.intensity()));
        out
    }

    /// Direct access to the oncoming vehicles (for tests and tooling).
    pub fn oncoming_vehicles(&self) -> &[Vehicle] {
        &self.oncoming
    }

    /// Injects an oncoming vehicle at arc length `s` with `speed`
    /// (m/s) — used by the dataset generator to script exact scenes.
    pub fn inject_oncoming(&mut self, kind: VehicleKind, s: f64, speed: f64) {
        let mut v = Vehicle::new(
            VehicleId(self.next_id),
            kind,
            self.intersection.oncoming_route().clone(),
            speed,
        );
        self.next_id += 1;
        v.s = s;
        self.oncoming.push(v);
    }
}

#[derive(Debug, Clone, Copy)]
enum Lane {
    Oncoming,
    Eastbound,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let sc = Scenario::new(Weather::Daytime, true, 0.3);
        let mut a = Simulator::new(sc, 7);
        let mut b = Simulator::new(sc, 7);
        a.run(10.0);
        b.run(10.0);
        assert_eq!(a.oncoming_vehicles().len(), b.oncoming_vehicles().len());
        assert_eq!(a.events().len(), b.events().len());
        assert_eq!(a.turns_completed(), b.turns_completed());
    }

    #[test]
    fn traffic_flows_and_exits() {
        let mut sim = Simulator::new(Scenario::new(Weather::Daytime, false, 0.5), 1);
        sim.run(60.0);
        // Vehicles have spawned and the lane is not unboundedly full.
        assert!(sim.oncoming_vehicles().len() < 20);
        assert!(sim.time() >= 59.9); // run() accumulates DT with float error
    }

    #[test]
    fn turner_eventually_turns_without_traffic() {
        let mut sim = Simulator::new(Scenario::new(Weather::Daytime, false, 0.0), 2);
        sim.run(40.0);
        assert!(sim.turns_completed() >= 1, "events: {:?}", sim.events());
    }

    #[test]
    fn always_wait_policy_never_turns_with_occluder() {
        let sc = Scenario::new(Weather::Daytime, true, 0.0).with_policy(TurnPolicy::AlwaysWait);
        let mut sim = Simulator::new(sc, 3);
        sim.run(40.0);
        assert_eq!(sim.turns_completed(), 0);
    }

    #[test]
    fn omniscient_turns_even_with_occluder_when_lane_empty() {
        let sc = Scenario::new(Weather::Daytime, true, 0.0).with_policy(TurnPolicy::Omniscient);
        let mut sim = Simulator::new(sc, 4);
        sim.run(40.0);
        assert!(sim.turns_completed() >= 1);
    }

    #[test]
    fn hidden_vehicle_invisible_to_human_policy() {
        let mut sim = Simulator::new(Scenario::new(Weather::Daytime, true, 0.0), 5);
        // Park a car in the middle of the blind interval.
        let (lo, hi) = sim
            .intersection()
            .blind_interval(VehicleKind::Van)
            .unwrap();
        sim.inject_oncoming(VehicleKind::Car, (lo + hi) / 2.0, 13.0);
        let obs = sim.oncoming_observations();
        assert_eq!(obs.len(), 1);
        assert!(!obs[0].2, "vehicle should be hidden: {obs:?}");
        assert!(sim.blind_area_occupied());
        // The assessment marks this as exactly the dangerous hidden case.
        assert!(sim.assessment().hidden_threat);
    }

    #[test]
    fn near_miss_recorded_for_risky_turn() {
        // Occluded scene, hidden fast traffic, human policy: the turner
        // cannot see the threats, accepts the gap, and a near miss occurs.
        let mut sim = Simulator::new(Scenario::new(Weather::Daytime, true, 0.0), 6);
        // Let the empty-lane turn begin.
        let mut guard = 0;
        while !sim
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::TurnStarted { .. }))
        {
            sim.run(0.5);
            guard += 1;
            assert!(guard < 120, "turn never started");
        }
        // A platoon of fast cars timed to cross the conflict point while
        // the turner is in it; all start hidden or beyond the blind zone.
        let conflict = sim.intersection().conflict_s();
        for k in 1..=4 {
            sim.inject_oncoming(VehicleKind::Car, conflict - 13.5 * 2.0 * k as f64, 13.5);
        }
        sim.run(10.0);
        assert!(
            sim.events().iter().any(|e| matches!(e, SimEvent::NearMiss { .. })),
            "expected a near miss; events: {:?}",
            sim.events()
        );
    }

    #[test]
    fn mean_wait_tracks_turn_starts() {
        let mut sim = Simulator::new(Scenario::new(Weather::Daytime, false, 0.0), 8);
        sim.run(60.0);
        assert!(sim.turns_completed() >= 1);
        assert!(sim.mean_wait() >= 0.0);
    }

    #[test]
    fn render_footprints_include_all_actors() {
        let mut sim = Simulator::new(Scenario::new(Weather::Daytime, true, 0.0), 9);
        sim.inject_oncoming(VehicleKind::Car, 10.0, 10.0);
        let fps = sim.render_footprints();
        // oncoming + occluder + turner.
        assert_eq!(fps.len(), 3);
    }
}
