//! Line-of-sight and shadow-interval computation.
//!
//! The blind area of the paper's Fig. 1/2 is the stretch of the oncoming
//! through lane hidden from the turning driver's eye point by the body of
//! the opposing vehicle. This module computes that stretch exactly the
//! way the geometry defines it: a lane point is blind iff the segment
//! from the eye to the point crosses the occluder footprint.

use crate::geometry::{OrientedRect, Vec2};
use crate::route::Route;

/// Whether `point` is visible from `eye` given a set of occluders.
pub fn is_visible(eye: Vec2, point: Vec2, occluders: &[OrientedRect]) -> bool {
    occluders.iter().all(|o| !o.intersects_segment(eye, point))
}

/// The arc-length interval `[s0, s1]` of `lane` that is hidden from
/// `eye` by `occluder`, or `None` if nothing is hidden.
///
/// Computed by sampling the lane every `step` metres, so the interval is
/// conservative to within one step.
///
/// ```
/// use safecross_trafficsim::{shadow_interval, OrientedRect, Route, Vec2};
///
/// let lane = Route::straight(Vec2::new(-50.0, 10.0), Vec2::new(50.0, 10.0));
/// let wall = OrientedRect::new(Vec2::new(0.0, 5.0), 4.0, 1.0, 0.0);
/// let blind = shadow_interval(Vec2::new(0.0, 0.0), &wall, &lane, 0.5).unwrap();
/// assert!(blind.1 > blind.0);
/// ```
///
/// # Panics
///
/// Panics if `step` is not positive.
pub fn shadow_interval(
    eye: Vec2,
    occluder: &OrientedRect,
    lane: &Route,
    step: f64,
) -> Option<(f64, f64)> {
    assert!(step > 0.0, "sampling step must be positive");
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut s = 0.0;
    let len = lane.length();
    while s <= len {
        let p = lane.point_at(s);
        if occluder.intersects_segment(eye, p) {
            lo = lo.min(s);
            hi = hi.max(s);
        }
        s += step;
    }
    if lo.is_finite() {
        Some((lo, hi))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane() -> Route {
        Route::straight(Vec2::new(-50.0, 10.0), Vec2::new(50.0, 10.0))
    }

    #[test]
    fn unobstructed_lane_fully_visible() {
        let l = lane();
        assert!(shadow_interval(Vec2::zero(),
            &OrientedRect::new(Vec2::new(0.0, -5.0), 3.0, 1.0, 0.0), &l, 0.5).is_none());
    }

    #[test]
    fn occluder_between_eye_and_lane_casts_shadow() {
        let l = lane();
        let occ = OrientedRect::new(Vec2::new(0.0, 5.0), 3.0, 1.0, 0.0);
        let (s0, s1) = shadow_interval(Vec2::zero(), &occ, &l, 0.25).unwrap();
        // The shadow is roughly centred on the lane point above the
        // occluder (s = 50 at x = 0) and wider than the occluder itself
        // (projective magnification from a 5 m-away blocker onto a 10 m-
        // away lane is 2x).
        let mid = (s0 + s1) / 2.0;
        assert!((mid - 50.0).abs() < 1.0, "mid {mid}");
        assert!(s1 - s0 > 6.0, "width {}", s1 - s0);
        assert!(s1 - s0 < 16.0, "width {}", s1 - s0);
    }

    #[test]
    fn closer_occluder_casts_wider_shadow() {
        let l = lane();
        let near = OrientedRect::new(Vec2::new(0.0, 2.0), 3.0, 1.0, 0.0);
        let far = OrientedRect::new(Vec2::new(0.0, 8.0), 3.0, 1.0, 0.0);
        let (n0, n1) = shadow_interval(Vec2::zero(), &near, &l, 0.25).unwrap();
        let (f0, f1) = shadow_interval(Vec2::zero(), &far, &l, 0.25).unwrap();
        assert!(n1 - n0 > f1 - f0);
    }

    #[test]
    fn visibility_helper_agrees_with_interval() {
        let l = lane();
        let occ = OrientedRect::new(Vec2::new(0.0, 5.0), 3.0, 1.0, 0.0);
        let (s0, s1) = shadow_interval(Vec2::zero(), &occ, &l, 0.25).unwrap();
        let blind_point = l.point_at((s0 + s1) / 2.0);
        let clear_point = l.point_at(s0 - 10.0);
        assert!(!is_visible(Vec2::zero(), blind_point, &[occ]));
        assert!(is_visible(Vec2::zero(), clear_point, &[occ]));
    }

    #[test]
    fn eye_inside_shadow_of_nothing() {
        // No occluders: everything visible.
        assert!(is_visible(Vec2::zero(), Vec2::new(100.0, 100.0), &[]));
    }
}
