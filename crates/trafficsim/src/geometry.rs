//! Planar geometry primitives.

use std::ops::{Add, Mul, Neg, Sub};

/// A 2-D vector / point in world metres.
///
/// ```
/// use safecross_trafficsim::Vec2;
///
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.length(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component (east positive).
    pub x: f64,
    /// Y component (north positive).
    pub y: f64,
}

impl Vec2 {
    /// Creates a vector from components.
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// The zero vector.
    pub fn zero() -> Self {
        Vec2 { x: 0.0, y: 0.0 }
    }

    /// Euclidean length.
    pub fn length(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Squared length (avoids the square root).
    pub fn length_squared(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(&self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component of the 3-D cross).
    pub fn cross(&self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    ///
    /// Panics on the zero vector.
    pub fn normalized(&self) -> Vec2 {
        let l = self.length();
        assert!(l > 0.0, "cannot normalise the zero vector");
        Vec2::new(self.x / l, self.y / l)
    }

    /// Perpendicular vector (rotated 90° counter-clockwise).
    pub fn perp(&self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Distance to another point.
    pub fn distance(&self, other: Vec2) -> f64 {
        (*self - other).length()
    }

    /// Linear interpolation: `self + t * (other - self)`.
    pub fn lerp(&self, other: Vec2, t: f64) -> Vec2 {
        *self + (other - *self) * t
    }

    /// Heading angle in radians (atan2 convention).
    pub fn angle(&self) -> f64 {
        self.y.atan2(self.x)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// A rectangle with arbitrary orientation, described by centre, half
/// extents, and heading. Used for vehicle footprints and occluders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrientedRect {
    /// Centre in world metres.
    pub center: Vec2,
    /// Half length along the heading axis.
    pub half_length: f64,
    /// Half width across the heading axis.
    pub half_width: f64,
    /// Heading in radians (0 = east).
    pub heading: f64,
}

impl OrientedRect {
    /// Creates a rectangle.
    ///
    /// # Panics
    ///
    /// Panics if either half extent is non-positive.
    pub fn new(center: Vec2, half_length: f64, half_width: f64, heading: f64) -> Self {
        assert!(half_length > 0.0 && half_width > 0.0, "extents must be positive");
        OrientedRect {
            center,
            half_length,
            half_width,
            heading,
        }
    }

    /// The four corners in counter-clockwise order.
    pub fn corners(&self) -> [Vec2; 4] {
        let dir = Vec2::new(self.heading.cos(), self.heading.sin());
        let side = dir.perp();
        let l = dir * self.half_length;
        let w = side * self.half_width;
        [
            self.center + l + w,
            self.center - l + w,
            self.center - l - w,
            self.center + l - w,
        ]
    }

    /// Whether a point is inside (or on) the rectangle.
    pub fn contains(&self, p: Vec2) -> bool {
        let dir = Vec2::new(self.heading.cos(), self.heading.sin());
        let rel = p - self.center;
        let along = rel.dot(dir).abs();
        let across = rel.dot(dir.perp()).abs();
        along <= self.half_length + 1e-9 && across <= self.half_width + 1e-9
    }

    /// Whether the segment `a -> b` intersects the rectangle (including
    /// endpoints inside).
    pub fn intersects_segment(&self, a: Vec2, b: Vec2) -> bool {
        if self.contains(a) || self.contains(b) {
            return true;
        }
        let cs = self.corners();
        for i in 0..4 {
            if segments_intersect(a, b, cs[i], cs[(i + 1) % 4]) {
                return true;
            }
        }
        false
    }
}

/// Whether segments `a1->a2` and `b1->b2` intersect (proper or touching).
pub fn segments_intersect(a1: Vec2, a2: Vec2, b1: Vec2, b2: Vec2) -> bool {
    let d1 = direction(b1, b2, a1);
    let d2 = direction(b1, b2, a2);
    let d3 = direction(a1, a2, b1);
    let d4 = direction(a1, a2, b2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1 == 0.0 && on_segment(b1, b2, a1))
        || (d2 == 0.0 && on_segment(b1, b2, a2))
        || (d3 == 0.0 && on_segment(a1, a2, b1))
        || (d4 == 0.0 && on_segment(a1, a2, b2))
}

fn direction(a: Vec2, b: Vec2, c: Vec2) -> f64 {
    (b - a).cross(c - a)
}

fn on_segment(a: Vec2, b: Vec2, p: Vec2) -> bool {
    p.x >= a.x.min(b.x) - 1e-9
        && p.x <= a.x.max(b.x) + 1e-9
        && p.y >= a.y.min(b.y) - 1e-9
        && p.y <= a.y.max(b.y) + 1e-9
}

/// Intersection parameter of ray `origin + t*dir` with segment `a->b`,
/// returning `t >= 0` if they meet (smallest such `t`).
pub fn ray_segment_intersection(origin: Vec2, dir: Vec2, a: Vec2, b: Vec2) -> Option<f64> {
    let v1 = origin - a;
    let v2 = b - a;
    let v3 = dir.perp();
    let denom = v2.dot(v3);
    if denom.abs() < 1e-12 {
        return None; // parallel
    }
    let t = v2.cross(v1) / denom;
    let s = v1.dot(v3) / denom;
    if t >= 0.0 && (0.0..=1.0).contains(&s) {
        Some(t)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_algebra() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
        assert_eq!(a.perp(), Vec2::new(-2.0, 1.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, 10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, 5.0));
    }

    #[test]
    fn rect_corners_and_contains() {
        let r = OrientedRect::new(Vec2::zero(), 2.0, 1.0, 0.0);
        assert!(r.contains(Vec2::new(1.9, 0.9)));
        assert!(!r.contains(Vec2::new(2.1, 0.0)));
        let cs = r.corners();
        assert!((cs[0].x - 2.0).abs() < 1e-9 && (cs[0].y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rotated_rect_contains() {
        // 45° rotated square of half extents 1: the point (1.2, 0) is
        // inside (diagonal reaches sqrt(2)).
        let r = OrientedRect::new(Vec2::zero(), 1.0, 1.0, std::f64::consts::FRAC_PI_4);
        assert!(r.contains(Vec2::new(1.2, 0.0)));
        assert!(!r.contains(Vec2::new(1.2, 1.2)));
    }

    #[test]
    fn segment_rect_intersection() {
        let r = OrientedRect::new(Vec2::new(5.0, 0.0), 1.0, 1.0, 0.0);
        assert!(r.intersects_segment(Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0)));
        assert!(!r.intersects_segment(Vec2::new(0.0, 5.0), Vec2::new(10.0, 5.0)));
        // Segment ending inside.
        assert!(r.intersects_segment(Vec2::new(0.0, 0.0), Vec2::new(5.0, 0.0)));
    }

    #[test]
    fn segments_crossing() {
        assert!(segments_intersect(
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 2.0),
            Vec2::new(0.0, 2.0),
            Vec2::new(2.0, 0.0)
        ));
        assert!(!segments_intersect(
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(1.0, 1.0)
        ));
    }

    #[test]
    fn ray_hits_segment() {
        let t = ray_segment_intersection(
            Vec2::zero(),
            Vec2::new(1.0, 0.0),
            Vec2::new(5.0, -1.0),
            Vec2::new(5.0, 1.0),
        );
        assert!((t.unwrap() - 5.0).abs() < 1e-9);
        // Ray pointing away misses.
        assert!(ray_segment_intersection(
            Vec2::zero(),
            Vec2::new(-1.0, 0.0),
            Vec2::new(5.0, -1.0),
            Vec2::new(5.0, 1.0)
        )
        .is_none());
    }
}
