//! The synthetic surveillance camera.
//!
//! An orthographic top-down camera (the paper's footage is near-aerial)
//! that rasterises the simulator state into 8-bit grayscale frames, then
//! applies the weather's photometric degradations: global contrast loss,
//! Gaussian sensor noise, rain streaks, and snow speckles. The camera is
//! deliberately low-fidelity — the paper's whole point is that decades-old
//! cameras defeat appearance-based detectors but not motion-based ones.

use crate::geometry::Vec2;
use crate::intersection::LANE_WIDTH;
use crate::sim::Simulator;
use crate::weather::Weather;
use safecross_tensor::TensorRng;
use safecross_vision::GrayFrame;

/// Camera resolution and world coverage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Half extent of the square world window, metres.
    pub world_half: f64,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            width: 320,
            height: 240,
            world_half: 55.0,
        }
    }
}

/// World <-> pixel mapping.
#[derive(Debug, Clone, Copy)]
pub struct Camera {
    config: RenderConfig,
    scale: f64, // pixels per metre
}

impl Camera {
    /// Creates a camera from a config.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or non-positive world extent.
    pub fn new(config: RenderConfig) -> Self {
        assert!(config.width > 0 && config.height > 0, "resolution must be positive");
        assert!(config.world_half > 0.0, "world extent must be positive");
        let scale = config.height.min(config.width) as f64 / (2.0 * config.world_half);
        Camera { config, scale }
    }

    /// The configuration this camera was built with.
    pub fn config(&self) -> &RenderConfig {
        &self.config
    }

    /// Pixels per metre.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Maps a world point to pixel coordinates, if on screen.
    /// World +y (north) maps to smaller pixel y (up on screen).
    pub fn world_to_pixel(&self, p: Vec2) -> Option<(usize, usize)> {
        let px = self.config.width as f64 / 2.0 + p.x * self.scale;
        let py = self.config.height as f64 / 2.0 - p.y * self.scale;
        if px < 0.0 || py < 0.0 || px >= self.config.width as f64 || py >= self.config.height as f64
        {
            None
        } else {
            Some((px as usize, py as usize))
        }
    }

    /// Maps the centre of pixel `(x, y)` back to world coordinates.
    pub fn pixel_to_world(&self, x: usize, y: usize) -> Vec2 {
        Vec2::new(
            (x as f64 + 0.5 - self.config.width as f64 / 2.0) / self.scale,
            (self.config.height as f64 / 2.0 - y as f64 - 0.5) / self.scale,
        )
    }
}

/// The renderer: camera plus weather-artefact state.
#[derive(Debug, Clone)]
pub struct Renderer {
    camera: Camera,
    weather: Weather,
    rng: TensorRng,
}

impl Renderer {
    /// Creates a renderer for a weather scene with a deterministic seed.
    pub fn new(config: RenderConfig, weather: Weather, seed: u64) -> Self {
        Renderer {
            camera: Camera::new(config),
            weather,
            rng: TensorRng::seed_from(seed),
        }
    }

    /// The camera used by this renderer.
    pub fn camera(&self) -> &Camera {
        &self.camera
    }

    /// Rasterises the current simulator state into a frame.
    pub fn render(&mut self, sim: &Simulator) -> GrayFrame {
        let p = self.weather.params();
        let (w, h) = (self.camera.config.width, self.camera.config.height);
        let mut frame = GrayFrame::filled(w, h, p.ambient);

        // Roads: two crossing bands of asphalt.
        let road_half = LANE_WIDTH * 2.0;
        for y in 0..h {
            for x in 0..w {
                let wp = self.camera.pixel_to_world(x, y);
                if wp.y.abs() <= road_half || wp.x.abs() <= road_half {
                    frame.set(x, y, 55);
                }
            }
        }
        // Dashed centre lines.
        self.draw_centerlines(&mut frame, road_half);

        // Vehicles.
        for (rect, intensity) in sim.render_footprints() {
            let corners = rect.corners();
            let xs: Vec<f64> = corners.iter().map(|c| c.x).collect();
            let ys: Vec<f64> = corners.iter().map(|c| c.y).collect();
            let min = Vec2::new(
                xs.iter().cloned().fold(f64::INFINITY, f64::min),
                ys.iter().cloned().fold(f64::INFINITY, f64::min),
            );
            let max = Vec2::new(
                xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            );
            // Pixel bounding box, clamped to the frame; skip bodies
            // entirely outside the camera window. Note the y inversion.
            let scale = self.camera.scale;
            let fx0 = w as f64 / 2.0 + min.x * scale;
            let fx1 = w as f64 / 2.0 + max.x * scale;
            let fy0 = h as f64 / 2.0 - max.y * scale;
            let fy1 = h as f64 / 2.0 - min.y * scale;
            if fx1 < 0.0 || fy1 < 0.0 || fx0 >= w as f64 || fy0 >= h as f64 {
                continue;
            }
            let x0 = fx0.max(0.0) as usize;
            let y0 = fy0.max(0.0) as usize;
            let x1 = fx1.min(w as f64 - 1.0) as usize;
            let y1 = fy1.min(h as f64 - 1.0) as usize;
            for y in y0..=y1 {
                for x in x0..=x1 {
                    if rect.contains(self.camera.pixel_to_world(x, y)) {
                        frame.set(x, y, intensity);
                    }
                }
            }
        }

        self.apply_weather(&mut frame, &p);
        frame
    }

    fn draw_centerlines(&self, frame: &mut GrayFrame, road_half: f64) {
        let (w, h) = (frame.width(), frame.height());
        for y in 0..h {
            for x in 0..w {
                let wp = self.camera.pixel_to_world(x, y);
                let dash = ((wp.x.abs() + wp.y.abs()) / 2.0) as i64 % 2 == 0;
                if !dash {
                    continue;
                }
                let on_h_line = wp.y.abs() < 0.3 && wp.x.abs() > road_half;
                let on_v_line = wp.x.abs() < 0.3 && wp.y.abs() > road_half;
                if on_h_line || on_v_line {
                    frame.set(x, y, 170);
                }
            }
        }
    }

    fn apply_weather(&mut self, frame: &mut GrayFrame, p: &crate::weather::WeatherParams) {
        let (w, h) = (frame.width(), frame.height());
        // Contrast compression around the mean.
        if p.contrast < 1.0 {
            let mean = frame.mean();
            for px in frame.pixels_mut() {
                let v = mean + (*px as f32 - mean) * p.contrast as f32;
                *px = v.clamp(0.0, 255.0) as u8;
            }
        }
        // Rain streaks: short bright strokes, two pixels wide so they
        // survive the VP's morphological opening (heavy rain is exactly
        // the degradation the paper says defeats naive cleaning).
        let n_streaks = (p.streak_density * (w * h) as f64) as usize;
        for _ in 0..n_streaks {
            let x = self.rng.index(w.saturating_sub(1).max(1));
            let y = self.rng.index(h.saturating_sub(6).max(1));
            let len = 3 + self.rng.index(3);
            for dy in 0..len {
                if y + dy < h {
                    frame.set(x, y + dy, 205);
                    frame.set(x + 1, y + dy, 195);
                }
            }
        }
        // Snow: mostly isolated flakes, occasionally a 2x2 clump that
        // the opening cannot erase.
        let n_speckles = (p.speckle_density * (w * h) as f64) as usize;
        for _ in 0..n_speckles {
            let x = self.rng.index(w.saturating_sub(1).max(1));
            let y = self.rng.index(h.saturating_sub(1).max(1));
            frame.set(x, y, 235);
            if self.rng.unit() < 0.35 {
                frame.set(x + 1, y, 228);
                frame.set(x, y + 1, 228);
                frame.set(x + 1, y + 1, 222);
            }
        }
        // Gaussian sensor noise.
        if p.noise_sigma > 0.0 {
            let noise = self.rng.normal(&[w * h], p.noise_sigma as f32);
            for (px, &n) in frame.pixels_mut().iter_mut().zip(noise.data()) {
                *px = (*px as f32 + n).clamp(0.0, 255.0) as u8;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Scenario;
    use crate::vehicle::VehicleKind;

    #[test]
    fn camera_roundtrip_center() {
        let cam = Camera::new(RenderConfig::default());
        let (px, py) = cam.world_to_pixel(Vec2::zero()).unwrap();
        assert_eq!((px, py), (160, 120));
        let back = cam.pixel_to_world(px, py);
        assert!(back.length() < 1.0, "{back:?}");
    }

    #[test]
    fn north_is_up() {
        let cam = Camera::new(RenderConfig::default());
        let (_, y_north) = cam.world_to_pixel(Vec2::new(0.0, 20.0)).unwrap();
        let (_, y_south) = cam.world_to_pixel(Vec2::new(0.0, -20.0)).unwrap();
        assert!(y_north < y_south);
    }

    #[test]
    fn offscreen_points_rejected() {
        let cam = Camera::new(RenderConfig::default());
        assert!(cam.world_to_pixel(Vec2::new(1000.0, 0.0)).is_none());
    }

    #[test]
    fn daytime_frame_shows_vehicle() {
        let mut sim = Simulator::new(Scenario::new(Weather::Daytime, false, 0.0), 1);
        sim.inject_oncoming(
            VehicleKind::Truck,
            crate::intersection::WORLD_HALF,
            0.0,
        ); // mid scene
        let mut r = Renderer::new(RenderConfig::default(), Weather::Daytime, 1);
        let frame = r.render(&sim);
        // The truck is at world (0, 5.25): a bright blob near mid-frame.
        let cam = r.camera();
        let (cx, cy) = cam.world_to_pixel(Vec2::new(0.0, LANE_WIDTH * 1.5)).unwrap();
        let mut bright = 0;
        for y in cy.saturating_sub(3)..cy + 3 {
            for x in cx.saturating_sub(6)..cx + 6 {
                if frame.at(x, y) > 200 {
                    bright += 1;
                }
            }
        }
        assert!(bright >= 4, "expected a bright truck blob, got {bright}");
    }

    #[test]
    fn weather_degrades_frames() {
        let sim = Simulator::new(Scenario::new(Weather::Snow, false, 0.0), 2);
        let mut day = Renderer::new(RenderConfig::default(), Weather::Daytime, 3);
        let mut snow = Renderer::new(RenderConfig::default(), Weather::Snow, 3);
        let f_day = day.render(&sim);
        let f_snow = snow.render(&sim);
        // Snow frames are brighter overall (ambient + flakes) and noisier
        // relative to their structure.
        assert!(f_snow.mean() > f_day.mean());
    }

    #[test]
    fn rain_adds_streaks() {
        let sim = Simulator::new(Scenario::new(Weather::Rain, false, 0.0), 4);
        let mut a = Renderer::new(RenderConfig::default(), Weather::Rain, 5);
        let mut b = Renderer::new(RenderConfig::default(), Weather::Rain, 6);
        // Different seeds put streaks in different places.
        assert_ne!(a.render(&sim).pixels(), b.render(&sim).pixels());
    }

    #[test]
    fn rendering_is_deterministic_per_seed() {
        let sim = Simulator::new(Scenario::new(Weather::Rain, true, 0.0), 7);
        let mut a = Renderer::new(RenderConfig::default(), Weather::Rain, 9);
        let mut b = Renderer::new(RenderConfig::default(), Weather::Rain, 9);
        assert_eq!(a.render(&sim).pixels(), b.render(&sim).pixels());
    }
}
