//! Weather scenes and their physical / photometric parameters.
//!
//! The paper's core argument for scene adaptation is that rain and snow
//! change the road friction coefficient and therefore stopping distances
//! and the safe-gap threshold, while also degrading the camera image.
//! This module is the single source of truth for both effects.

use std::fmt;

/// The three scene types of the paper's dataset (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Weather {
    /// Clear daytime conditions — the abundant-data base scene.
    Daytime,
    /// Rain: wet road, moderate visual degradation, few samples.
    Rain,
    /// Snow: icy road, strong visual degradation, few samples.
    Snow,
}

impl Weather {
    /// All scenes, in the paper's order.
    pub const ALL: [Weather; 3] = [Weather::Daytime, Weather::Rain, Weather::Snow];

    /// Physical and photometric parameters for this scene.
    pub fn params(&self) -> WeatherParams {
        match self {
            Weather::Daytime => WeatherParams {
                friction: 0.80,
                desired_speed: 13.9, // ~50 km/h
                safe_gap_seconds: 4.0,
                noise_sigma: 4.0,
                streak_density: 0.0,
                speckle_density: 0.0,
                contrast: 1.0,
                ambient: 90,
            },
            Weather::Rain => WeatherParams {
                friction: 0.50,
                desired_speed: 11.1, // ~40 km/h
                safe_gap_seconds: 5.5,
                noise_sigma: 10.0,
                streak_density: 0.0035,
                speckle_density: 0.0,
                contrast: 0.62,
                ambient: 70,
            },
            Weather::Snow => WeatherParams {
                friction: 0.30,
                desired_speed: 8.3, // ~30 km/h
                safe_gap_seconds: 7.0,
                noise_sigma: 9.0,
                streak_density: 0.0,
                speckle_density: 0.016,
                contrast: 0.55,
                ambient: 140,
            },
        }
    }

    /// Stable label used in dataset files and model registries.
    pub fn label(&self) -> &'static str {
        match self {
            Weather::Daytime => "daytime",
            Weather::Rain => "rain",
            Weather::Snow => "snow",
        }
    }
}

impl fmt::Display for Weather {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Numeric parameters derived from a [`Weather`] scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherParams {
    /// Road/tyre friction coefficient µ (dry ≈ 0.8, ice ≈ 0.3).
    pub friction: f64,
    /// Typical free-flow speed drivers adopt, m/s.
    pub desired_speed: f64,
    /// Minimum oncoming time gap a turner accepts, seconds.
    pub safe_gap_seconds: f64,
    /// Gaussian sensor-noise standard deviation, intensity units.
    pub noise_sigma: f64,
    /// Rain-streak artefacts per pixel per frame.
    pub streak_density: f64,
    /// Snow-flake artefacts per pixel per frame.
    pub speckle_density: f64,
    /// Global contrast multiplier applied at render time.
    pub contrast: f64,
    /// Background (road surround) intensity.
    pub ambient: u8,
}

impl WeatherParams {
    /// Comfortable braking deceleration on this surface, m/s²
    /// (`µ g`, derated for comfort).
    pub fn braking_decel(&self) -> f64 {
        0.6 * self.friction * 9.81
    }

    /// Distance needed to stop from `speed` m/s (kinematic, plus a 1 s
    /// reaction allowance).
    pub fn stopping_distance(&self, speed: f64) -> f64 {
        speed + speed * speed / (2.0 * self.braking_decel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn friction_orders_scenes() {
        let d = Weather::Daytime.params();
        let r = Weather::Rain.params();
        let s = Weather::Snow.params();
        assert!(d.friction > r.friction && r.friction > s.friction);
        assert!(d.desired_speed > r.desired_speed && r.desired_speed > s.desired_speed);
        assert!(d.safe_gap_seconds < r.safe_gap_seconds);
        assert!(r.safe_gap_seconds < s.safe_gap_seconds);
    }

    #[test]
    fn stopping_distance_grows_on_slippery_roads() {
        let v = 13.9;
        let dry = Weather::Daytime.params().stopping_distance(v);
        let wet = Weather::Rain.params().stopping_distance(v);
        let icy = Weather::Snow.params().stopping_distance(v);
        assert!(dry < wet && wet < icy);
        // Order-of-magnitude check: ~35 m dry from 50 km/h.
        assert!(dry > 25.0 && dry < 50.0, "dry stop {dry}");
    }

    #[test]
    fn stopping_distance_is_monotone_in_speed() {
        let p = Weather::Rain.params();
        assert!(p.stopping_distance(5.0) < p.stopping_distance(10.0));
        assert_eq!(p.stopping_distance(0.0), 0.0);
    }

    #[test]
    fn visual_degradation_only_in_bad_weather() {
        assert_eq!(Weather::Daytime.params().streak_density, 0.0);
        assert!(Weather::Rain.params().streak_density > 0.0);
        assert!(Weather::Snow.params().speckle_density > 0.0);
        assert!(Weather::Snow.params().contrast < Weather::Daytime.params().contrast);
    }

    #[test]
    fn labels_roundtrip_display() {
        for w in Weather::ALL {
            assert_eq!(format!("{w}"), w.label());
        }
    }
}
