//! # safecross-trafficsim
//!
//! A kinematic intersection traffic simulator plus a synthetic
//! surveillance-camera renderer. Together they substitute for the closed
//! Belarus live-stream dataset the SafeCross paper was built on (see
//! `DESIGN.md`): the simulator reproduces the paper's left-turn scenario
//! — a turner whose view of the oncoming through lane is occluded by an
//! opposing vehicle waiting to turn — with weather-dependent vehicle
//! dynamics, and the renderer produces the noisy grayscale frames the
//! vision pipeline consumes.
//!
//! The module split mirrors the physical decomposition:
//!
//! - [`geometry`]: vectors, oriented rectangles, ray casting.
//! - [`weather`]: friction / visibility / noise per scene type.
//! - [`route`]: arc-length-parameterised vehicle paths.
//! - [`vehicle`]: vehicle kinds and state.
//! - [`driver`]: IDM car-following and gap-acceptance turning.
//! - [`intersection`]: the paper's Fig. 2 scene and its danger zone.
//! - [`occlusion`]: shadow-interval computation behind the occluder.
//! - [`sim`]: the discrete-time simulator and its event log.
//! - [`render`]: the orthographic camera with weather artefacts.
//!
//! ## Example
//!
//! ```
//! use safecross_trafficsim::{Scenario, Simulator, Weather};
//!
//! let scenario = Scenario::new(Weather::Daytime, true, 0.25);
//! let mut sim = Simulator::new(scenario, 42);
//! sim.run(5.0); // five simulated seconds
//! assert!(sim.time() >= 4.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
#[cfg(test)]
mod proptests;
pub mod geometry;
pub mod intersection;
pub mod mirror;
pub mod occlusion;
pub mod render;
pub mod route;
pub mod sim;
pub mod vehicle;
pub mod weather;

pub use driver::{GapAcceptance, IdmParams};
pub use geometry::{OrientedRect, Vec2};
pub use intersection::{DangerAssessment, Intersection};
pub use mirror::MirroredScene;
pub use occlusion::shadow_interval;
pub use render::{Camera, RenderConfig, Renderer};
pub use route::Route;
pub use sim::{Scenario, SimEvent, Simulator, TurnPolicy};
pub use vehicle::{Vehicle, VehicleId, VehicleKind};
pub use weather::{Weather, WeatherParams};
