//! The continual-learning seam of the serving layer.
//!
//! A [`LearnHook`] installed on a [`FleetServer`](crate::FleetServer)
//! rides the verdict path: every clip a shard classifies is offered to
//! the hook ([`LearnHook::observe`]) right after its stacked forward,
//! so a learner can harvest hard clips without adding a single forward
//! pass to the hot path. In the other direction the hook queues
//! [`Promotion`]s — adapted challenger checkpoints that won their
//! canary — and each shard applies the promotions addressed to its own
//! streams at the top of its serve loop, through
//! [`SafeCross::bind_scene_model`](safecross::SafeCross::bind_scene_model)
//! (which rides the switcher's existing OOM-rollback machinery, so a
//! failed activation leaves the incumbent resident).
//!
//! Division of labor: this module is only the *seam* — the concrete
//! harvester/trainer/canary subsystem lives in `safecross-learn`, which
//! depends on this crate. Fleets without a hook pay one `Option` check
//! per executed batch.
//!
//! Determinism: the hook is only consulted by the sharded
//! [`run`](crate::FleetServer::run); the single-threaded
//! [`run_reference`](crate::FleetServer::run_reference) mode never
//! harvests or promotes, so it stays the fixed comparator. Promotions
//! queued *between* runs apply before the next run's first frame
//! (deterministic); promotions queued mid-run land between two batches
//! of a live stream, which is inherent to online adaptation.

use safecross::Verdict;
use safecross_tensor::Tensor;
use safecross_trafficsim::Weather;

/// One classified clip offered to the learner, borrowed straight from
/// the executed batch — harvesting copies only the clips it keeps.
#[derive(Debug)]
pub struct HarvestSample<'a> {
    /// The owning stream's fleet-wide index.
    pub stream: usize,
    /// The scene model family that classified the clip.
    pub weather: Weather,
    /// The clip's per-stream completion sequence number.
    pub seq: u64,
    /// The raw (ungated) verdict the shared model produced.
    pub verdict: Verdict,
    /// The `[1, T, H, W]` clip itself.
    pub clip: &'a Tensor,
}

/// A challenger checkpoint that won its canary and awaits activation on
/// its stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Promotion {
    /// The stream the challenger was adapted for.
    pub stream: usize,
    /// The scene the challenger should replace the incumbent of.
    pub weather: Weather,
    /// The challenger's name in the shared
    /// [`ModelRegistry`](safecross_modelswitch::ModelRegistry).
    pub challenger: String,
}

/// How a queued [`Promotion`] fared when its shard applied it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromotionOutcome {
    /// The challenger's weights are resident and every later switch
    /// onto its scene activates it.
    Activated,
    /// Activation failed (the switcher reported OOM) and the rollback
    /// machinery restored the incumbent completely.
    RolledBack,
    /// The stream is not currently classifying in the promotion's
    /// scene, so nothing was bound — activating a model the stream is
    /// not running would perturb an unaffected scene's switch log.
    Deferred,
}

/// The continual-learning seam. Implementations must be cheap on the
/// observe path (it runs once per classified clip) and thread-safe:
/// every shard thread calls into the same hook concurrently.
pub trait LearnHook: Send + Sync {
    /// Called once when a sharded run starts, before any shard thread
    /// exists — the place to start a background trainer.
    fn on_run_start(&self) {}

    /// Called once when a sharded run has fully settled and every shard
    /// thread has exited — the place to stop (and join) the trainer.
    /// Promotions queued by a final training pass here apply at the
    /// start of the next run, before its first frame.
    fn on_run_end(&self) {}

    /// Offered every classified clip, with its raw verdict. Runs on the
    /// executing shard's thread; implementations decide cheaply whether
    /// to copy the clip into a replay buffer.
    fn observe(&self, sample: HarvestSample<'_>);

    /// Drains the promotions addressed to shard `shard` of
    /// `shard_count` (streams with `stream % shard_count == shard`).
    /// Called once per shard loop iteration; the common empty case must
    /// be near-free.
    fn take_promotions(&self, shard: usize, shard_count: usize) -> Vec<Promotion>;

    /// Reports how a promotion fared so the learner can journal the
    /// outcome, retire the challenger on rollback, or re-queue a
    /// deferred promotion.
    fn promotion_result(&self, promotion: &Promotion, outcome: PromotionOutcome);
}
