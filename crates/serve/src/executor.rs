//! Shard-local batched inference.
//!
//! Each shard owns a [`ShardCompute`]: lazily-cloned scene models plus
//! a kernel scratch arena — the warm state a dedicated inference worker
//! used to carry, now embedded in the shard loop. Micro-batches of
//! same-weather clips run as **one** stacked forward pass through the
//! shard's clone of the shared scene model.
//!
//! The numeric contract: every layer the classifiers use (eval-mode
//! batch norm, convolution, pooling, the linear head, row softmax)
//! processes batch rows independently, so a clip's verdict is
//! bit-identical whether it rides in a batch of 1 or 16, regardless of
//! which clips share its batch, and regardless of which shard executed
//! it (clones share the stored weights bit-for-bit).
//! `batched_forward_is_bit_identical` below pins that down, and the
//! serve equivalence tests lean on it.

use safecross::{classify_with_model, top_class_from_logits, Verdict};
use safecross_dataset::Class;
use safecross_tensor::{KernelScratch, Tensor};
use safecross_trafficsim::Weather;
use safecross_videoclass::SlowFastLite;
use std::collections::HashMap;

/// One clip awaiting classification.
pub(crate) struct ClipJob {
    pub stream: usize,
    pub seq: u64,
    pub weather: Weather,
    pub clip: Tensor,
}

/// A micro-batch of same-weather clips, all owned by one shard.
pub(crate) struct Batch {
    pub weather: Weather,
    pub jobs: Vec<ClipJob>,
}

/// The raw (ungated) result for one dispatched clip, routed back to
/// the owning shard.
pub(crate) struct Completion {
    pub stream: usize,
    pub seq: u64,
    pub raw: Option<Verdict>,
}

/// What one shard counted over a run (merged fleet-wide for the
/// report).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ExecStats {
    /// Micro-batches dispatched to a shard queue.
    pub batches: u64,
    /// Clips across those batches.
    pub clips: u64,
    /// Largest dispatched batch, in clips.
    pub max_batch: usize,
    /// Batches this shard executed out of another shard's queue.
    pub steals: u64,
}

impl ExecStats {
    /// Folds another shard's counters into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.batches += other.batches;
        self.clips += other.clips;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.steals += other.steals;
    }
}

/// A shard's warm compute state: local clones of the shared scene
/// models (cloned on first use) and the kernel scratch arena the
/// stacked forwards cycle through. This is exactly what a crashed
/// inference process would lose, so the chaos seam's `Die` action
/// drops it wholesale and the shard rebuilds on demand.
pub(crate) struct ShardCompute<'a> {
    shared: &'a HashMap<Weather, SlowFastLite>,
    local: HashMap<Weather, SlowFastLite>,
    scratch: KernelScratch,
}

impl<'a> ShardCompute<'a> {
    pub(crate) fn new(shared: &'a HashMap<Weather, SlowFastLite>) -> Self {
        ShardCompute {
            shared,
            local: HashMap::new(),
            scratch: KernelScratch::new(),
        }
    }

    /// Classifies a micro-batch with one stacked forward, returning one
    /// raw verdict per job in job order.
    pub(crate) fn classify(&mut self, batch: &Batch) -> Vec<Verdict> {
        let model = self
            .local
            .entry(batch.weather)
            .or_insert_with(|| self.shared[&batch.weather].clone());
        classify_batch(model, batch, &mut self.scratch)
    }

    /// Simulates a worker crash: every piece of warm state dies and the
    /// respawned slot rebuilds it on demand.
    pub(crate) fn drop_warm_state(&mut self) {
        self.local = HashMap::new();
        self.scratch = KernelScratch::new();
    }
}

/// Classifies a micro-batch with one stacked `[K, 1, T, H, W]` forward
/// pass, returning one raw verdict per job in job order. The stacked
/// batch, every layer intermediate, and the per-row probability buffer
/// all cycle through the shard-owned `scratch` arena, so a warm shard
/// only allocates the verdict vector it returns.
pub(crate) fn classify_batch(
    model: &mut SlowFastLite,
    batch: &Batch,
    scratch: &mut KernelScratch,
) -> Vec<Verdict> {
    use safecross_nn::Mode;
    use safecross_videoclass::VideoClassifier;

    let k = batch.jobs.len();
    debug_assert!(k > 0, "empty batch dispatched");
    let clip_dims = batch.jobs[0].clip.dims();
    debug_assert_eq!(clip_dims.len(), 4, "expected [C, T, H, W] clips");
    let stride = batch.jobs[0].clip.len();
    let mut stacked = scratch.take_tensor(&[
        k,
        clip_dims[0],
        clip_dims[1],
        clip_dims[2],
        clip_dims[3],
    ]);
    for (i, job) in batch.jobs.iter().enumerate() {
        debug_assert_eq!(job.clip.dims(), clip_dims, "incompatible clip in batch");
        stacked.data_mut()[i * stride..(i + 1) * stride].copy_from_slice(job.clip.data());
    }
    let logits = model.forward_scratch(&stacked, Mode::Eval, scratch);
    scratch.recycle_tensor(stacked);
    let classes = logits.shape().dim(1);
    let mut probs = scratch.take(classes);
    let verdicts = (0..k)
        .map(|i| {
            let row = &logits.data()[i * classes..(i + 1) * classes];
            let (class_idx, confidence) = top_class_from_logits(row, &mut probs);
            Verdict {
                class: Class::from_index(class_idx),
                confidence,
                weather: batch.weather,
            }
        })
        .collect();
    scratch.recycle(probs);
    scratch.recycle_tensor(logits);
    verdicts
}

/// The deterministic in-line classification the reference mode and the
/// shard's no-model path share: classify one clip against the shared
/// model for `weather`, or `None` when no such model exists.
pub(crate) fn classify_one(
    models: &mut HashMap<Weather, SlowFastLite>,
    weather: Weather,
    clip: &Tensor,
    scratch: &mut KernelScratch,
) -> Option<Verdict> {
    let model = models.get_mut(&weather)?;
    Some(classify_with_model(model, clip, weather, scratch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use safecross_tensor::TensorRng;

    #[test]
    fn batched_forward_is_bit_identical() {
        let mut rng = TensorRng::seed_from(11);
        let mut model = SlowFastLite::new(2, &mut rng);
        let clips: Vec<Tensor> = (0..5)
            .map(|_| rng.uniform(&[1, 32, 20, 20], 0.0, 1.0))
            .collect();
        let mut scratch = KernelScratch::new();
        let singles: Vec<Verdict> = clips
            .iter()
            .map(|c| classify_with_model(&mut model, c, Weather::Rain, &mut scratch))
            .collect();
        let batch = Batch {
            weather: Weather::Rain,
            jobs: clips
                .into_iter()
                .enumerate()
                .map(|(i, clip)| ClipJob {
                    stream: i,
                    seq: i as u64,
                    weather: Weather::Rain,
                    clip,
                })
                .collect(),
        };
        let batched = classify_batch(&mut model, &batch, &mut scratch);
        assert_eq!(batched, singles);
    }

    #[test]
    fn shard_compute_survives_warm_state_loss() {
        let mut rng = TensorRng::seed_from(12);
        let mut shared = HashMap::new();
        shared.insert(Weather::Snow, SlowFastLite::new(2, &mut rng));
        let clip = rng.uniform(&[1, 32, 20, 20], 0.0, 1.0);
        let batch = Batch {
            weather: Weather::Snow,
            jobs: vec![ClipJob {
                stream: 0,
                seq: 0,
                weather: Weather::Snow,
                clip,
            }],
        };
        let mut compute = ShardCompute::new(&shared);
        let warm = compute.classify(&batch);
        compute.drop_warm_state();
        let cold = compute.classify(&batch);
        assert_eq!(warm, cold, "a cold respawn must not change a verdict bit");
    }
}
