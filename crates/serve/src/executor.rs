//! Shared batched inference.
//!
//! Classification clips from every stream funnel into one executor: a
//! *batcher* groups compatible clips (same weather model) into
//! micro-batches bounded by [`ServeConfig::batch_max`] and a linger
//! deadline, and a pool of workers runs each micro-batch as **one**
//! stacked forward pass through a clone of the shared scene model.
//!
//! The numeric contract: every layer the classifiers use (eval-mode
//! batch norm, convolution, pooling, the linear head, row softmax)
//! processes batch rows independently, so a clip's verdict is
//! bit-identical whether it rides in a batch of 1 or 16 and regardless
//! of which clips share its batch. `batched_forward_is_bit_identical`
//! below pins that down, and the serve equivalence tests lean on it.

use crate::config::ServeConfig;
use crate::fault::{FaultHook, WorkerAction};
use crate::metrics::FleetMetrics;
use safecross::{classify_with_model, top_class_from_logits, Verdict};
use safecross_dataset::Class;
use safecross_tensor::{KernelScratch, Tensor};
use safecross_trafficsim::Weather;
use safecross_videoclass::SlowFastLite;
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::Instant;

/// One clip awaiting classification.
pub(crate) struct ClipJob {
    pub stream: usize,
    pub seq: u64,
    pub weather: Weather,
    pub clip: Tensor,
}

/// A micro-batch of same-weather clips.
pub(crate) struct Batch {
    pub weather: Weather,
    pub jobs: Vec<ClipJob>,
}

/// The raw (ungated) result for one dispatched clip.
pub(crate) struct Completion {
    pub stream: usize,
    pub seq: u64,
    pub raw: Option<Verdict>,
}

/// What the batcher counted over one run.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BatcherStats {
    pub batches: u64,
    pub clips: u64,
    pub max_batch: usize,
}

/// Classifies a micro-batch with one stacked `[K, 1, T, H, W]` forward
/// pass, returning one raw verdict per job in job order. The stacked
/// batch, every layer intermediate, and the per-row probability buffer
/// all cycle through the worker-owned `scratch` arena, so a warm worker
/// only allocates the verdict vector it returns.
pub(crate) fn classify_batch(
    model: &mut SlowFastLite,
    batch: &Batch,
    scratch: &mut KernelScratch,
) -> Vec<Verdict> {
    use safecross_nn::Mode;
    use safecross_videoclass::VideoClassifier;

    let k = batch.jobs.len();
    debug_assert!(k > 0, "empty batch dispatched");
    let clip_dims = batch.jobs[0].clip.dims();
    debug_assert_eq!(clip_dims.len(), 4, "expected [C, T, H, W] clips");
    let stride = batch.jobs[0].clip.len();
    let mut stacked = scratch.take_tensor(&[
        k,
        clip_dims[0],
        clip_dims[1],
        clip_dims[2],
        clip_dims[3],
    ]);
    for (i, job) in batch.jobs.iter().enumerate() {
        debug_assert_eq!(job.clip.dims(), clip_dims, "incompatible clip in batch");
        stacked.data_mut()[i * stride..(i + 1) * stride].copy_from_slice(job.clip.data());
    }
    let logits = model.forward_scratch(&stacked, Mode::Eval, scratch);
    scratch.recycle_tensor(stacked);
    let classes = logits.shape().dim(1);
    let mut probs = scratch.take(classes);
    let verdicts = (0..k)
        .map(|i| {
            let row = &logits.data()[i * classes..(i + 1) * classes];
            let (class_idx, confidence) = top_class_from_logits(row, &mut probs);
            Verdict {
                class: Class::from_index(class_idx),
                confidence,
                weather: batch.weather,
            }
        })
        .collect();
    scratch.recycle(probs);
    scratch.recycle_tensor(logits);
    verdicts
}

/// The batcher loop: greedily groups incoming clips by weather and
/// dispatches a group when it reaches `batch_max` clips or its oldest
/// clip has lingered past the deadline. On feed disconnect every
/// remaining group is flushed, so lossless runs classify every clip.
pub(crate) fn run_batcher(
    clip_rx: Receiver<ClipJob>,
    batch_tx: Sender<Batch>,
    config: &ServeConfig,
    fleet: &FleetMetrics,
) -> BatcherStats {
    let mut pending: HashMap<Weather, (Vec<ClipJob>, Instant)> = HashMap::new();
    let mut stats = BatcherStats::default();

    let flush = |jobs: Vec<ClipJob>,
                 weather: Weather,
                 stats: &mut BatcherStats,
                 batch_tx: &Sender<Batch>| {
        stats.batches += 1;
        stats.clips += jobs.len() as u64;
        stats.max_batch = stats.max_batch.max(jobs.len());
        fleet.batches.inc();
        fleet.batch_size.observe_ms(jobs.len() as f64);
        batch_tx.send(Batch { weather, jobs }).is_ok()
    };

    'outer: loop {
        // Wait for the next clip — bounded by the oldest group's linger
        // deadline so an under-full batch never waits forever.
        let received = if pending.is_empty() {
            clip_rx.recv().map_err(|_| RecvTimeoutError::Disconnected)
        } else {
            let oldest = pending
                .values()
                .map(|(_, since)| *since)
                .min()
                .expect("pending is non-empty");
            let wait = config
                .batch_linger
                .saturating_sub(oldest.elapsed());
            clip_rx.recv_timeout(wait)
        };
        match received {
            Ok(job) => {
                let entry = pending
                    .entry(job.weather)
                    .or_insert_with(|| (Vec::with_capacity(config.batch_max), Instant::now()));
                entry.0.push(job);
                if entry.0.len() >= config.batch_max {
                    let weather = *pending
                        .iter()
                        .find(|(_, (jobs, _))| jobs.len() >= config.batch_max)
                        .map(|(w, _)| w)
                        .expect("a full group exists");
                    let (jobs, _) = pending.remove(&weather).expect("group exists");
                    if !flush(jobs, weather, &mut stats, &batch_tx) {
                        break 'outer;
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                let expired: Vec<Weather> = pending
                    .iter()
                    .filter(|(_, (_, since))| since.elapsed() >= config.batch_linger)
                    .map(|(w, _)| *w)
                    .collect();
                for weather in expired {
                    let (jobs, _) = pending.remove(&weather).expect("group exists");
                    if !flush(jobs, weather, &mut stats, &batch_tx) {
                        break 'outer;
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                let remaining: Vec<Weather> = pending.keys().copied().collect();
                for weather in remaining {
                    let (jobs, _) = pending.remove(&weather).expect("group exists");
                    if !flush(jobs, weather, &mut stats, &batch_tx) {
                        break;
                    }
                }
                break;
            }
        }
    }
    stats
}

/// One inference worker: pulls micro-batches off the shared queue,
/// lazily clones the scene models it needs, and reports one completion
/// per clip.
///
/// `fault` is the chaos seam: consulted once per dequeued batch, it can
/// stall the worker or kill it. A killed worker loses every piece of
/// warm state (model clones, scratch arena) and retries the batch cold
/// as its own respawned replacement — faults cost latency, never
/// completions, so lossless runs stay lossless.
pub(crate) fn run_worker(
    models: &HashMap<Weather, SlowFastLite>,
    batch_rx: &Mutex<Receiver<Batch>>,
    done_tx: Sender<Completion>,
    fault: Option<&dyn FaultHook>,
    worker: usize,
    fleet: &FleetMetrics,
) {
    let mut local: HashMap<Weather, SlowFastLite> = HashMap::new();
    let mut scratch = KernelScratch::new();
    let mut batches_done = 0u64;
    loop {
        // Hold the lock only for the dequeue, not the forward pass.
        let batch = {
            let rx = batch_rx.lock().expect("batch queue mutex poisoned");
            rx.recv()
        };
        let Ok(batch) = batch else { break };
        if let Some(hook) = fault {
            match hook.before_batch(worker, batches_done) {
                WorkerAction::Continue => {}
                WorkerAction::Stall(pause) => std::thread::sleep(pause),
                WorkerAction::Die => {
                    // Everything a crashed process would lose dies here;
                    // the respawned slot rebuilds it on demand below.
                    local = HashMap::new();
                    scratch = KernelScratch::new();
                    fleet.worker_deaths.inc();
                }
            }
        }
        batches_done += 1;
        let model = local
            .entry(batch.weather)
            .or_insert_with(|| models[&batch.weather].clone());
        let verdicts = classify_batch(model, &batch, &mut scratch);
        for (job, verdict) in batch.jobs.iter().zip(verdicts) {
            let sent = done_tx.send(Completion {
                stream: job.stream,
                seq: job.seq,
                raw: Some(verdict),
            });
            if sent.is_err() {
                return;
            }
        }
    }
}

/// The deterministic in-line classification the reference mode and the
/// scheduler's no-model path share: classify one clip against the
/// shared model for `weather`, or `None` when no such model exists.
pub(crate) fn classify_one(
    models: &mut HashMap<Weather, SlowFastLite>,
    weather: Weather,
    clip: &Tensor,
    scratch: &mut KernelScratch,
) -> Option<Verdict> {
    let model = models.get_mut(&weather)?;
    Some(classify_with_model(model, clip, weather, scratch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use safecross_tensor::TensorRng;

    #[test]
    fn batched_forward_is_bit_identical() {
        let mut rng = TensorRng::seed_from(11);
        let mut model = SlowFastLite::new(2, &mut rng);
        let clips: Vec<Tensor> = (0..5)
            .map(|_| rng.uniform(&[1, 32, 20, 20], 0.0, 1.0))
            .collect();
        let mut scratch = KernelScratch::new();
        let singles: Vec<Verdict> = clips
            .iter()
            .map(|c| classify_with_model(&mut model, c, Weather::Rain, &mut scratch))
            .collect();
        let batch = Batch {
            weather: Weather::Rain,
            jobs: clips
                .into_iter()
                .enumerate()
                .map(|(i, clip)| ClipJob {
                    stream: i,
                    seq: i as u64,
                    weather: Weather::Rain,
                    clip,
                })
                .collect(),
        };
        let batched = classify_batch(&mut model, &batch, &mut scratch);
        assert_eq!(batched, singles);
    }
}
