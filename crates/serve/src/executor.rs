//! Shard-local batched inference.
//!
//! Each shard owns a [`ShardCompute`]: lazily-materialized model
//! replicas plus a kernel scratch arena — the warm state a dedicated
//! inference worker used to carry, now embedded in the shard loop.
//! Micro-batches of clips bound for the *same checkpoint* run as
//! **one** stacked forward pass through the shard's replica of that
//! checkpoint.
//!
//! Replicas are keyed by checkpoint name, not weather: a stream whose
//! scene was rebound to a promoted challenger
//! (see [`crate::LearnHook`]) batches under the challenger's name,
//! whose weights are resolved out of the fleet's shared
//! [`ModelRegistry`]. Streams still on the base scene checkpoints key
//! by the weather label, so without promotions the grouping — and
//! therefore every output bit — is identical to weather-keyed
//! batching.
//!
//! The numeric contract: every layer the classifiers use (eval-mode
//! batch norm, convolution, pooling, the linear head, row softmax)
//! processes batch rows independently, so a clip's verdict is
//! bit-identical whether it rides in a batch of 1 or 16, regardless of
//! which clips share its batch, and regardless of which shard executed
//! it (replicas share the stored weights bit-for-bit).
//! `batched_forward_is_bit_identical` below pins that down, and the
//! serve equivalence tests lean on it.

use safecross::{classify_with_model, top_class_from_logits, Verdict};
use safecross_dataset::Class;
use safecross_modelswitch::ModelRegistry;
use safecross_tensor::{KernelScratch, Precision, Tensor};
use safecross_trafficsim::Weather;
use safecross_videoclass::{SlowFastLite, VideoClassifier};
use std::collections::HashMap;
use std::sync::Arc;

/// One clip awaiting classification.
pub(crate) struct ClipJob {
    pub stream: usize,
    pub seq: u64,
    pub weather: Weather,
    /// Checkpoint the owning session has bound for `weather` — the
    /// weather label unless a challenger was promoted on that stream.
    pub model: Arc<str>,
    /// The precision the owning stream was opened at. Part of the
    /// batch key: an int8 stream and an f32 stream never co-batch even
    /// when bound to the same checkpoint, so each stream's verdicts
    /// are a pure function of its own precision contract.
    pub precision: Precision,
    pub clip: Tensor,
}

/// A micro-batch of clips bound for one (checkpoint, precision) pair,
/// all owned by one shard.
pub(crate) struct Batch {
    pub weather: Weather,
    pub model: Arc<str>,
    pub precision: Precision,
    pub jobs: Vec<ClipJob>,
}

/// The raw (ungated) result for one dispatched clip, routed back to
/// the owning shard.
pub(crate) struct Completion {
    pub stream: usize,
    pub seq: u64,
    pub raw: Option<Verdict>,
}

/// What one shard counted over a run (merged fleet-wide for the
/// report).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ExecStats {
    /// Micro-batches dispatched to a shard queue.
    pub batches: u64,
    /// Clips across those batches.
    pub clips: u64,
    /// Largest dispatched batch, in clips.
    pub max_batch: usize,
    /// Batches this shard executed out of another shard's queue.
    pub steals: u64,
}

impl ExecStats {
    /// Folds another shard's counters into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.batches += other.batches;
        self.clips += other.clips;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.steals += other.steals;
    }
}

/// A shard's warm compute state: local model replicas (materialized on
/// first use, keyed by checkpoint name) and the kernel scratch arena
/// the stacked forwards cycle through. This is exactly what a crashed
/// inference process would lose, so the chaos seam's `Die` action
/// drops it wholesale and the shard rebuilds on demand — base replicas
/// by re-cloning the shared scene models, promoted replicas by
/// re-resolving their checkpoints out of the store.
pub(crate) struct ShardCompute<'a> {
    shared: &'a HashMap<Weather, SlowFastLite>,
    store: ModelRegistry,
    local: HashMap<(Arc<str>, Precision), SlowFastLite>,
    scratch: KernelScratch,
}

impl<'a> ShardCompute<'a> {
    pub(crate) fn new(shared: &'a HashMap<Weather, SlowFastLite>, store: ModelRegistry) -> Self {
        ShardCompute {
            shared,
            store,
            local: HashMap::new(),
            scratch: KernelScratch::new(),
        }
    }

    /// Materializes the replica for `(name, precision)`, cloning the
    /// shared `weather` model as the architecture template, — for
    /// promoted checkpoints — loading the stored weights over it, and
    /// finally applying the precision contract: an int8 replica
    /// quantizes its weights *after* they are final, so its calibration
    /// matches the checkpoint it actually serves. Quantization is
    /// deterministic in the weight bits, so every shard's int8 replica
    /// of one checkpoint is bit-identical to the store's sidecar. A
    /// promoted checkpoint missing from the store (evicted after its
    /// last user unpinned it) deterministically falls back to the base
    /// scene weights. `None` only when `weather` has no shared model.
    fn ensure_replica(
        &mut self,
        name: &Arc<str>,
        weather: Weather,
        precision: Precision,
    ) -> Option<()> {
        let key = (Arc::clone(name), precision);
        if !self.local.contains_key(&key) {
            let mut model = self.shared.get(&weather)?.clone();
            if name.as_ref() != weather.label() {
                if let Some(state) = self.store.state_dict(name) {
                    model.load_state_dict(&state);
                }
            }
            model.set_precision(precision);
            self.local.insert(key, model);
        }
        Some(())
    }

    /// Classifies a micro-batch with one stacked forward, returning one
    /// raw verdict per job in job order.
    pub(crate) fn classify(&mut self, batch: &Batch) -> Vec<Verdict> {
        self.ensure_replica(&batch.model, batch.weather, batch.precision)
            .expect("dispatched batch has a shared scene model");
        let key = (Arc::clone(&batch.model), batch.precision);
        let model = self.local.get_mut(&key).expect("just materialized");
        classify_batch(model, batch, &mut self.scratch)
    }

    /// Classifies one clip against the replica for `name` — the
    /// reference mode's in-line path. `None` when `weather` has no
    /// shared model.
    pub(crate) fn classify_single(
        &mut self,
        name: &Arc<str>,
        weather: Weather,
        precision: Precision,
        clip: &Tensor,
    ) -> Option<Verdict> {
        self.ensure_replica(name, weather, precision)?;
        let key = (Arc::clone(name), precision);
        let model = self.local.get_mut(&key).expect("just materialized");
        Some(classify_with_model(model, clip, weather, &mut self.scratch))
    }

    /// Simulates a worker crash: every piece of warm state dies and the
    /// respawned slot rebuilds it on demand.
    pub(crate) fn drop_warm_state(&mut self) {
        self.local = HashMap::new();
        self.scratch = KernelScratch::new();
    }
}

/// Classifies a micro-batch with one stacked `[K, 1, T, H, W]` forward
/// pass, returning one raw verdict per job in job order. The stacked
/// batch, every layer intermediate, and the per-row probability buffer
/// all cycle through the shard-owned `scratch` arena, so a warm shard
/// only allocates the verdict vector it returns.
pub(crate) fn classify_batch(
    model: &mut SlowFastLite,
    batch: &Batch,
    scratch: &mut KernelScratch,
) -> Vec<Verdict> {
    use safecross_nn::Mode;

    let k = batch.jobs.len();
    debug_assert!(k > 0, "empty batch dispatched");
    let clip_dims = batch.jobs[0].clip.dims();
    debug_assert_eq!(clip_dims.len(), 4, "expected [C, T, H, W] clips");
    let stride = batch.jobs[0].clip.len();
    let mut stacked = scratch.take_tensor(&[
        k,
        clip_dims[0],
        clip_dims[1],
        clip_dims[2],
        clip_dims[3],
    ]);
    for (i, job) in batch.jobs.iter().enumerate() {
        debug_assert_eq!(job.clip.dims(), clip_dims, "incompatible clip in batch");
        stacked.data_mut()[i * stride..(i + 1) * stride].copy_from_slice(job.clip.data());
    }
    let logits = model.forward_scratch(&stacked, Mode::Eval, scratch);
    scratch.recycle_tensor(stacked);
    let classes = logits.shape().dim(1);
    let mut probs = scratch.take(classes);
    let verdicts = (0..k)
        .map(|i| {
            let row = &logits.data()[i * classes..(i + 1) * classes];
            let (class_idx, confidence) = top_class_from_logits(row, &mut probs);
            Verdict {
                class: Class::from_index(class_idx),
                confidence,
                weather: batch.weather,
            }
        })
        .collect();
    scratch.recycle(probs);
    scratch.recycle_tensor(logits);
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use safecross_tensor::TensorRng;

    fn label(weather: Weather) -> Arc<str> {
        Arc::from(weather.label())
    }

    #[test]
    fn batched_forward_is_bit_identical() {
        let mut rng = TensorRng::seed_from(11);
        let mut model = SlowFastLite::new(2, &mut rng);
        let clips: Vec<Tensor> = (0..5)
            .map(|_| rng.uniform(&[1, 32, 20, 20], 0.0, 1.0))
            .collect();
        let mut scratch = KernelScratch::new();
        let singles: Vec<Verdict> = clips
            .iter()
            .map(|c| classify_with_model(&mut model, c, Weather::Rain, &mut scratch))
            .collect();
        let batch = Batch {
            weather: Weather::Rain,
            model: label(Weather::Rain),
            precision: Precision::F32,
            jobs: clips
                .into_iter()
                .enumerate()
                .map(|(i, clip)| ClipJob {
                    stream: i,
                    seq: i as u64,
                    weather: Weather::Rain,
                    model: label(Weather::Rain),
                    precision: Precision::F32,
                    clip,
                })
                .collect(),
        };
        let batched = classify_batch(&mut model, &batch, &mut scratch);
        assert_eq!(batched, singles);
    }

    #[test]
    fn shard_compute_survives_warm_state_loss() {
        let mut rng = TensorRng::seed_from(12);
        let mut shared = HashMap::new();
        shared.insert(Weather::Snow, SlowFastLite::new(2, &mut rng));
        let clip = rng.uniform(&[1, 32, 20, 20], 0.0, 1.0);
        let batch = Batch {
            weather: Weather::Snow,
            model: label(Weather::Snow),
            precision: Precision::F32,
            jobs: vec![ClipJob {
                stream: 0,
                seq: 0,
                weather: Weather::Snow,
                model: label(Weather::Snow),
                precision: Precision::F32,
                clip,
            }],
        };
        let mut compute = ShardCompute::new(&shared, ModelRegistry::new());
        let warm = compute.classify(&batch);
        compute.drop_warm_state();
        let cold = compute.classify(&batch);
        assert_eq!(warm, cold, "a cold respawn must not change a verdict bit");
    }

    #[test]
    fn promoted_replicas_resolve_store_weights() {
        let mut rng = TensorRng::seed_from(13);
        let base = SlowFastLite::new(2, &mut rng);
        let mut adapted = base.clone();
        // Perturb one parameter so the adapted checkpoint really
        // differs, then park it in the store under a challenger name.
        if let Some(p) = adapted.params_mut().into_iter().next() {
            let bump = Tensor::full(p.value.dims(), 0.125);
            p.value.add_scaled(&bump, 1.0);
        }
        let store = ModelRegistry::new();
        store.register_model("rain#s0g1", &adapted.state_groups());

        let mut shared = HashMap::new();
        shared.insert(Weather::Rain, base);
        let clip = rng.uniform(&[1, 32, 20, 20], 0.0, 1.0);
        let job = |model: Arc<str>| Batch {
            weather: Weather::Rain,
            model: Arc::clone(&model),
            precision: Precision::F32,
            jobs: vec![ClipJob {
                stream: 0,
                seq: 0,
                weather: Weather::Rain,
                model,
                precision: Precision::F32,
                clip: clip.clone(),
            }],
        };
        let mut compute = ShardCompute::new(&shared, store);
        let base_v = compute.classify(&job(label(Weather::Rain)));
        let promoted_v = compute.classify(&job(Arc::from("rain#s0g1")));

        // The challenger replica ran the stored (perturbed) weights.
        let mut direct_scratch = KernelScratch::new();
        let direct = classify_with_model(&mut adapted, &clip, Weather::Rain, &mut direct_scratch);
        assert_eq!(promoted_v[0], direct);
        assert_ne!(
            base_v[0].confidence.to_bits(),
            promoted_v[0].confidence.to_bits(),
            "perturbed checkpoint produced the base confidence — store weights not loaded"
        );

        // An evicted challenger falls back to the base scene weights.
        let missing = compute.classify(&job(Arc::from("rain#s0g9")));
        assert_eq!(missing[0], base_v[0]);
    }

    #[test]
    fn int8_replica_is_keyed_separately_and_tracks_f32() {
        let mut rng = TensorRng::seed_from(14);
        let mut shared = HashMap::new();
        shared.insert(Weather::Daytime, SlowFastLite::new(2, &mut rng));
        let clip = rng.uniform(&[1, 32, 20, 20], 0.0, 1.0);
        let batch = |precision: Precision| Batch {
            weather: Weather::Daytime,
            model: label(Weather::Daytime),
            precision,
            jobs: vec![ClipJob {
                stream: 0,
                seq: 0,
                weather: Weather::Daytime,
                model: label(Weather::Daytime),
                precision,
                clip: clip.clone(),
            }],
        };
        let mut compute = ShardCompute::new(&shared, ModelRegistry::new());
        let f32_v = compute.classify(&batch(Precision::F32));
        let int8_v = compute.classify(&batch(Precision::Int8));
        // Two replicas now exist — the precisions never share one.
        assert_eq!(compute.local.len(), 2);
        // Quantization perturbs the logits, not the contract: both
        // verdicts carry the same weather and a sane confidence.
        assert_eq!(int8_v[0].weather, f32_v[0].weather);
        assert!(int8_v[0].confidence > 0.0 && int8_v[0].confidence <= 1.0);
        // The int8 replica is itself deterministic: re-running the
        // batch (warm) and after a crash (cold) produces the same bits.
        let warm = compute.classify(&batch(Precision::Int8));
        compute.drop_warm_state();
        let cold = compute.classify(&batch(Precision::Int8));
        assert_eq!(warm, int8_v);
        assert_eq!(cold, int8_v);
    }
}
