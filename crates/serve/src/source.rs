//! Frame ingestion: one trait over every feed shape.
//!
//! Earlier revisions special-cased three kinds of input — pre-rendered
//! `Vec<GrayFrame>` clips, paced live-camera stand-ins, and
//! replay-driven feeds — behind `Vec<FrameFeed>` boxes whose `next`
//! could block. The shard loop cannot afford blocking: one stalled
//! camera must cost its own stream, never its shard. [`FrameSource`]
//! splits the contract in two:
//!
//! - [`FrameSource::poll`] is the non-blocking serving path. Sources
//!   that can answer without waiting ([`VecSource`], [`PacedSource`],
//!   [`TimedSource`]) are polled inline by the owning shard.
//! - [`FrameSource::is_blocking`] marks sources whose `poll` may wait
//!   (arbitrary iterators wrapped in [`IterSource`], e.g. chaos feeds
//!   that sleep mid-stream). The fleet runs each of those on a
//!   dedicated feeder thread so the block lands on nobody's shard.
//! - [`FrameSource::drain`] is the clock-free total input the
//!   deterministic reference mode consumes.
//!
//! [`IntoFrameSource`] lets `run`/`run_reference` accept every shape
//! through one signature: a `Vec<GrayFrame>`, a legacy [`FrameFeed`],
//! or any source type, including [`BoxedSource`] for heterogeneous
//! fleets.

use safecross_vision::GrayFrame;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// A stream's legacy frame feed: any sendable iterator. Its `next` may
/// block to pace (or stall) its feed, so the fleet runs it through
/// [`IterSource`] on a dedicated feeder thread.
pub type FrameFeed = Box<dyn Iterator<Item = GrayFrame> + Send>;

/// A boxed [`FrameSource`] — the element type to use when one fleet
/// mixes source kinds (say, a stalled iterator next to flood feeds).
pub type BoxedSource = Box<dyn FrameSource>;

/// One non-blocking poll's outcome.
#[derive(Debug)]
pub enum SourcePoll {
    /// A frame is available now.
    Ready(GrayFrame),
    /// No frame yet, but the source is still live — poll again.
    Pending,
    /// The source is exhausted; it will never yield another frame.
    Done,
}

/// One stream's frame supply.
///
/// Implementations must be `Send`: inline sources move to their owning
/// shard's thread, blocking ones to a feeder thread.
pub trait FrameSource: Send {
    /// Yields the next frame if one is due at `now`.
    ///
    /// For non-blocking sources ([`FrameSource::is_blocking`] is
    /// `false`) this must return without waiting. Blocking sources are
    /// only ever polled from a dedicated feeder thread and may sleep.
    fn poll(&mut self, now: Instant) -> SourcePoll;

    /// Whether [`FrameSource::poll`] may block. Defaults to `false`;
    /// the fleet gives each `true` source its own feeder thread.
    fn is_blocking(&self) -> bool {
        false
    }

    /// Consumes the source into its complete frame sequence — the
    /// clock-free total input
    /// [`FleetServer::run_reference`](crate::FleetServer::run_reference)
    /// replays. Pacing is ignored; a blocking source may take real time
    /// to drain.
    fn drain(&mut self) -> Vec<GrayFrame>;

    /// Boxes this source as a [`BoxedSource`] for heterogeneous fleets.
    fn boxed(self) -> BoxedSource
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl FrameSource for BoxedSource {
    fn poll(&mut self, now: Instant) -> SourcePoll {
        (**self).poll(now)
    }

    fn is_blocking(&self) -> bool {
        (**self).is_blocking()
    }

    fn drain(&mut self) -> Vec<GrayFrame> {
        (**self).drain()
    }

    fn boxed(self) -> BoxedSource {
        self
    }
}

/// Pre-rendered frames delivered as fast as the shard will take them —
/// the flood shape benches and lossless equivalence runs use.
#[derive(Debug)]
pub struct VecSource {
    frames: VecDeque<GrayFrame>,
}

impl VecSource {
    /// Wraps `frames` for immediate delivery in order.
    pub fn new(frames: Vec<GrayFrame>) -> Self {
        VecSource {
            frames: frames.into(),
        }
    }
}

impl FrameSource for VecSource {
    fn poll(&mut self, _now: Instant) -> SourcePoll {
        match self.frames.pop_front() {
            Some(frame) => SourcePoll::Ready(frame),
            None => SourcePoll::Done,
        }
    }

    fn drain(&mut self) -> Vec<GrayFrame> {
        std::mem::take(&mut self.frames).into()
    }
}

/// Pre-rendered frames delivered one per `interval` (the first
/// immediately) — a live camera stand-in that never blocks: between due
/// times it reports [`SourcePoll::Pending`] and lets the shard serve
/// other streams.
#[derive(Debug)]
pub struct PacedSource {
    frames: VecDeque<GrayFrame>,
    interval: Duration,
    due: Option<Instant>,
}

impl PacedSource {
    /// Paces `frames` at one per `interval`. `Duration::ZERO` floods
    /// every frame at the first poll.
    pub fn new(frames: Vec<GrayFrame>, interval: Duration) -> Self {
        PacedSource {
            frames: frames.into(),
            interval,
            due: None,
        }
    }
}

impl FrameSource for PacedSource {
    fn poll(&mut self, now: Instant) -> SourcePoll {
        if self.frames.is_empty() {
            return SourcePoll::Done;
        }
        match self.due {
            Some(due) if now < due => SourcePoll::Pending,
            _ => {
                self.due = Some(now + self.interval);
                SourcePoll::Ready(self.frames.pop_front().expect("checked non-empty"))
            }
        }
    }

    fn drain(&mut self) -> Vec<GrayFrame> {
        std::mem::take(&mut self.frames).into()
    }
}

/// Frames replayed at recorded arrival offsets from the first poll —
/// the shape a trace-driven run uses to reproduce a recorded feed's
/// timing without ever blocking a shard.
#[derive(Debug)]
pub struct TimedSource {
    /// `(arrival offset, frame)`, in non-decreasing offset order.
    frames: VecDeque<(Duration, GrayFrame)>,
    started: Option<Instant>,
}

impl TimedSource {
    /// Wraps `frames` as `(arrival offset, frame)` pairs, offsets
    /// measured from the first poll. Pairs must be in non-decreasing
    /// offset order.
    pub fn new(frames: Vec<(Duration, GrayFrame)>) -> Self {
        debug_assert!(
            frames.windows(2).all(|w| w[0].0 <= w[1].0),
            "arrival offsets must be non-decreasing"
        );
        TimedSource {
            frames: frames.into(),
            started: None,
        }
    }
}

impl FrameSource for TimedSource {
    fn poll(&mut self, now: Instant) -> SourcePoll {
        let Some(&(offset, _)) = self.frames.front() else {
            return SourcePoll::Done;
        };
        let started = *self.started.get_or_insert(now);
        if now.duration_since(started) >= offset {
            let (_, frame) = self.frames.pop_front().expect("checked non-empty");
            SourcePoll::Ready(frame)
        } else {
            SourcePoll::Pending
        }
    }

    fn drain(&mut self) -> Vec<GrayFrame> {
        std::mem::take(&mut self.frames)
            .into_iter()
            .map(|(_, frame)| frame)
            .collect()
    }
}

/// An arbitrary iterator as a source. The iterator's `next` may block
/// (pacing sleeps, chaos stalls), so this source reports
/// [`FrameSource::is_blocking`] and runs on a feeder thread.
pub struct IterSource {
    iter: FrameFeed,
}

impl IterSource {
    /// Wraps any sendable frame iterator.
    pub fn new(iter: impl Iterator<Item = GrayFrame> + Send + 'static) -> Self {
        IterSource {
            iter: Box::new(iter),
        }
    }
}

impl std::fmt::Debug for IterSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("IterSource(..)")
    }
}

impl FrameSource for IterSource {
    fn poll(&mut self, _now: Instant) -> SourcePoll {
        match self.iter.next() {
            Some(frame) => SourcePoll::Ready(frame),
            None => SourcePoll::Done,
        }
    }

    fn is_blocking(&self) -> bool {
        true
    }

    fn drain(&mut self) -> Vec<GrayFrame> {
        self.iter.by_ref().collect()
    }
}

/// Wraps pre-rendered frames as a paced source delivering one frame
/// every `interval` (the first immediately). `Duration::ZERO` floods
/// the fleet with the whole clip at once.
pub fn paced_feed(frames: Vec<GrayFrame>, interval: Duration) -> PacedSource {
    PacedSource::new(frames, interval)
}

/// Conversion into a [`FrameSource`] — the single ingestion signature
/// `run`/`run_reference` share. Implemented for raw frame vectors,
/// legacy [`FrameFeed`] iterators, and every source type (identity).
pub trait IntoFrameSource {
    /// The source this value converts into.
    type Source: FrameSource + 'static;

    /// Performs the conversion.
    fn into_source(self) -> Self::Source;
}

impl IntoFrameSource for Vec<GrayFrame> {
    type Source = VecSource;

    fn into_source(self) -> VecSource {
        VecSource::new(self)
    }
}

impl IntoFrameSource for FrameFeed {
    type Source = IterSource;

    fn into_source(self) -> IterSource {
        IterSource { iter: self }
    }
}

macro_rules! identity_into_source {
    ($($ty:ty),* $(,)?) => {$(
        impl IntoFrameSource for $ty {
            type Source = $ty;

            fn into_source(self) -> $ty {
                self
            }
        }
    )*};
}

identity_into_source!(VecSource, PacedSource, TimedSource, IterSource, BoxedSource);

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(v: u8) -> GrayFrame {
        GrayFrame::filled(4, 4, v)
    }

    #[test]
    fn vec_source_floods_in_order() {
        let mut src = VecSource::new(vec![frame(1), frame(2)]);
        let now = Instant::now();
        assert!(matches!(src.poll(now), SourcePoll::Ready(f) if f.at(0, 0) == 1));
        assert!(matches!(src.poll(now), SourcePoll::Ready(f) if f.at(0, 0) == 2));
        assert!(matches!(src.poll(now), SourcePoll::Done));
    }

    #[test]
    fn paced_source_pends_between_frames() {
        let mut src = PacedSource::new(vec![frame(1), frame(2)], Duration::from_secs(60));
        let now = Instant::now();
        assert!(matches!(src.poll(now), SourcePoll::Ready(_)));
        assert!(matches!(src.poll(now), SourcePoll::Pending));
        // A poll from far enough in the future releases the next frame.
        let later = now + Duration::from_secs(61);
        assert!(matches!(src.poll(later), SourcePoll::Ready(_)));
        assert!(matches!(src.poll(later), SourcePoll::Done));
    }

    #[test]
    fn timed_source_follows_recorded_offsets() {
        let mut src = TimedSource::new(vec![
            (Duration::ZERO, frame(1)),
            (Duration::from_secs(60), frame(2)),
        ]);
        let now = Instant::now();
        assert!(matches!(src.poll(now), SourcePoll::Ready(_)));
        assert!(matches!(src.poll(now), SourcePoll::Pending));
        assert!(matches!(
            src.poll(now + Duration::from_secs(60)),
            SourcePoll::Ready(_)
        ));
        assert!(matches!(src.poll(now), SourcePoll::Done));
    }

    #[test]
    fn drain_ignores_pacing() {
        let mut paced = PacedSource::new(vec![frame(1), frame(2)], Duration::from_secs(60));
        assert_eq!(paced.drain().len(), 2);
        let feed: FrameFeed = Box::new(vec![frame(3)].into_iter());
        let mut iter = feed.into_source();
        assert!(iter.is_blocking());
        assert_eq!(iter.drain().len(), 1);
    }
}
