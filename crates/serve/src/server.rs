//! The fleet front: admission, scheduling, and run orchestration.

use crate::config::{ServeConfig, ServeError};
use crate::executor::{
    classify_one, run_batcher, run_worker, BatcherStats, ClipJob, Completion,
};
use crate::fault::FaultHook;
use crate::metrics::{FleetMetrics, StreamMetrics};
use crate::session::{StreamId, StreamSession, StreamStats};
use safecross::{SafeCross, SafeCrossConfig, Verdict};
use safecross_modelswitch::{ModelRegistry, SwitchFaultHook};
use safecross_telemetry::Registry;
use safecross_tensor::KernelScratch;
use safecross_trafficsim::Weather;
use safecross_videoclass::{SlowFastLite, VideoClassifier};
use safecross_vision::GrayFrame;
use std::collections::HashMap;
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// A stream's frame source for [`FleetServer::run`]: any sendable
/// iterator. The iterator's `next` is called on a dedicated feeder
/// thread, so it may block to pace (or stall) its feed.
pub type FrameFeed = Box<dyn Iterator<Item = GrayFrame> + Send>;

/// Wraps pre-rendered frames as a feed that delivers one frame every
/// `interval` (the first immediately). `Duration::ZERO` floods the
/// fleet with the whole clip at once.
pub fn paced_feed(frames: Vec<GrayFrame>, interval: Duration) -> FrameFeed {
    let mut first = true;
    Box::new(frames.into_iter().inspect(move |_| {
        if first {
            first = false;
        } else if interval > Duration::ZERO {
            thread::sleep(interval);
        }
    }))
}

/// Admission-to-completion latency percentiles of one run, in ms.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AgeProfile {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
}

impl AgeProfile {
    fn from_ages(ages: &mut [f64]) -> Self {
        if ages.is_empty() {
            return AgeProfile::default();
        }
        ages.sort_by(|a, b| a.partial_cmp(b).expect("ages are finite"));
        let at = |q: f64| ages[((ages.len() - 1) as f64 * q).round() as usize];
        AgeProfile {
            p50_ms: at(0.50),
            p95_ms: at(0.95),
            p99_ms: at(0.99),
            mean_ms: ages.iter().sum::<f64>() / ages.len() as f64,
            max_ms: *ages.last().expect("non-empty"),
        }
    }
}

/// One stream's slice of a [`FleetReport`].
#[derive(Debug, Clone, Copy)]
pub struct StreamReport {
    /// Which stream.
    pub stream: StreamId,
    /// This run's serving counters (deltas against the run start).
    pub stats: StreamStats,
}

/// Everything one fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-stream counters, in stream order.
    pub streams: Vec<StreamReport>,
    /// End-to-end wall time of the run.
    pub wall: Duration,
    /// Outcomes delivered across all streams.
    pub completed: u64,
    /// Frames lost to shedding across all streams.
    pub shed: u64,
    /// Aggregate delivered throughput, frames per second.
    pub aggregate_fps: f64,
    /// Micro-batches the executor dispatched.
    pub batches: u64,
    /// Largest micro-batch, in clips.
    pub max_batch: usize,
    /// Mean micro-batch size, in clips.
    pub mean_batch: f64,
    /// Admission-to-completion latency profile.
    pub frame_age: AgeProfile,
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet: {} frames delivered in {:?} ({:.1} fps aggregate), {} shed",
            self.completed, self.wall, self.aggregate_fps, self.shed
        )?;
        writeln!(
            f,
            "  batches: {} dispatched, mean {:.2} max {} clips",
            self.batches, self.mean_batch, self.max_batch
        )?;
        writeln!(
            f,
            "  frame age ms: p50 {:.2}  p95 {:.2}  p99 {:.2}  max {:.2}",
            self.frame_age.p50_ms, self.frame_age.p95_ms, self.frame_age.p99_ms,
            self.frame_age.max_ms
        )?;
        for s in &self.streams {
            writeln!(
                f,
                "  {:<9} fed {:>6}  completed {:>6}  verdicts {:>5} ({} danger)  \
                 shed {:>5} ({} overflow, {} stale)  queue peak {:>3}",
                s.stream.to_string(),
                s.stats.fed,
                s.stats.completed,
                s.stats.verdicts,
                s.stats.danger_verdicts,
                s.stats.shed(),
                s.stats.shed_overflow,
                s.stats.shed_stale,
                s.stats.queue_peak,
            )?;
        }
        Ok(())
    }
}

/// A multi-intersection serving front.
///
/// One `FleetServer` multiplexes N independent intersection streams
/// over a shared inference worker pool:
///
/// - every stream owns a full per-session SafeCross state (scene
///   detector, VP background model, segment buffer, model switcher),
///   so its verdict and switch sequences are bit-identical to a
///   standalone sequential run of the same frames;
/// - classification clips from all sessions funnel into a shared
///   executor that micro-batches compatible clips (same weather model)
///   and fans them out over [`ServeConfig::workers`] threads;
/// - an admission layer bounds each stream's queue (drop-oldest),
///   sheds frames that outlive [`ServeConfig::frame_deadline`], and
///   schedules streams with a recent danger verdict or model switch
///   ahead of idle ones — so one stalled or flooded stream never
///   starves the rest.
///
/// [`FleetServer::run_reference`] is the deterministic single-threaded
/// mode the equivalence tests compare against;
/// [`FleetServer::run`] is the real threaded serving loop.
pub struct FleetServer {
    config: ServeConfig,
    registry: Registry,
    fleet_metrics: FleetMetrics,
    /// The fleet's single content-addressed checkpoint store. Every
    /// stream session shares this handle, so N streams registering the
    /// same per-weather checkpoints hold each unique layer group once
    /// (refcounted), not once per stream.
    model_store: ModelRegistry,
    models: HashMap<Weather, SlowFastLite>,
    /// Model registration order — sessions register scenes in this
    /// order so fallback/switch behavior is identical across streams
    /// (and to any standalone comparator registering the same way).
    model_order: Vec<Weather>,
    sessions: Vec<StreamSession>,
    /// Chaos seam consulted by every worker once per dequeued batch.
    /// `None` (the default) outside fault-injection runs.
    fault_hook: Option<Arc<dyn FaultHook>>,
}

impl FleetServer {
    /// Creates an empty fleet after validating `config`.
    ///
    /// # Errors
    ///
    /// The first violated configuration invariant.
    pub fn new(config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let registry = if config.telemetry {
            Registry::new()
        } else {
            Registry::disabled()
        };
        let fleet_metrics = FleetMetrics::new(&registry);
        let model_store = ModelRegistry::new();
        model_store.instrument(&registry);
        Ok(FleetServer {
            config,
            registry,
            fleet_metrics,
            model_store,
            models: HashMap::new(),
            model_order: Vec::new(),
            sessions: Vec::new(),
            fault_hook: None,
        })
    }

    /// Installs a chaos fault hook on the worker pool: every worker
    /// consults it once per dequeued micro-batch and can be stalled or
    /// killed/respawned (see [`FaultHook`]). Faults never lose a
    /// completion, so lossless runs stay lossless. Only
    /// [`FleetServer::run`] is affected; the single-threaded
    /// [`FleetServer::run_reference`] has no workers to fault.
    pub fn set_fault_hook(&mut self, hook: Arc<dyn FaultHook>) {
        self.fault_hook = Some(hook);
    }

    /// Removes any installed worker fault hook.
    pub fn clear_fault_hook(&mut self) {
        self.fault_hook = None;
    }

    /// Installs a switch fault hook on every *existing* stream session's
    /// model switcher: switch attempts can be forced to fail with a
    /// synthetic out-of-memory error after evicting the old model,
    /// driving the rollback path under load (see
    /// [`SwitchFaultHook`]). Sessions added later are unaffected —
    /// install hooks after the fleet's streams are set up.
    pub fn set_switch_fault_hook(&mut self, hook: Arc<dyn SwitchFaultHook>) {
        for session in &self.sessions {
            session.inner.set_switch_fault_hook(hook.clone());
        }
    }

    /// Registers the shared classifier for one weather scene. All
    /// models must be registered before the first stream is added.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelAfterStream`] once a stream exists.
    pub fn register_model(
        &mut self,
        weather: Weather,
        mut model: SlowFastLite,
    ) -> Result<(), ServeError> {
        if !self.sessions.is_empty() {
            return Err(ServeError::ModelAfterStream);
        }
        // The checkpoint lands in the fleet store first, and the shared
        // inference copy is resolved back out of it — so the weights the
        // workers run are bit-identical to the blobs every session's
        // switcher activates.
        self.model_store
            .register_model(weather.label(), &model.state_groups());
        let state = self
            .model_store
            .state_dict(weather.label())
            .expect("checkpoint was just stored");
        model.load_state_dict(&state);
        if !self.model_order.contains(&weather) {
            self.model_order.push(weather);
        }
        self.models.insert(weather, model);
        Ok(())
    }

    /// Adds a stream using the configured session template.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoModels`] before any model is registered.
    pub fn add_stream(&mut self) -> Result<StreamId, ServeError> {
        self.add_stream_with(self.config.stream)
    }

    /// Adds a stream with its own session configuration (frame
    /// geometry, segment length, confidence gate).
    ///
    /// # Errors
    ///
    /// [`ServeError::NoModels`] before any model is registered, or
    /// [`ServeError::Stream`] when `config` fails validation.
    pub fn add_stream_with(&mut self, config: SafeCrossConfig) -> Result<StreamId, ServeError> {
        if self.models.is_empty() {
            return Err(ServeError::NoModels);
        }
        let mut inner = SafeCross::try_new(config).map_err(ServeError::Stream)?;
        // Every stream shares the fleet's checkpoint store: scene
        // registration below re-registers the same named checkpoints
        // (idempotent), so per-weather weights are held once fleet-wide.
        inner.share_model_store(&self.model_store);
        for weather in &self.model_order {
            inner.register_scene(*weather, &self.models[weather]);
        }
        let id = StreamId(self.sessions.len());
        let metrics = StreamMetrics::new(&self.registry, id.0);
        self.sessions.push(StreamSession::new(inner, metrics));
        Ok(id)
    }

    /// How many streams the fleet serves.
    pub fn streams(&self) -> usize {
        self.sessions.len()
    }

    /// The configuration this fleet was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The fleet's telemetry registry (disabled unless the
    /// configuration enabled it).
    pub fn telemetry(&self) -> &Registry {
        &self.registry
    }

    /// The fleet's shared checkpoint store. All stream sessions hold
    /// this same handle; its refcounts prove per-weather weights are
    /// stored once for the whole fleet
    /// (`model_count` / `unique_groups` / `dedup_bytes`).
    pub fn model_store(&self) -> &ModelRegistry {
        &self.model_store
    }

    /// Borrow one stream's underlying SafeCross session — its verdict
    /// history, switch log, and scene state.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownStream`] for an id the fleet never issued.
    pub fn session(&self, id: StreamId) -> Result<&SafeCross, ServeError> {
        self.sessions
            .get(id.0)
            .map(|s| &s.inner)
            .ok_or(ServeError::UnknownStream {
                stream: id.0,
                streams: self.sessions.len(),
            })
    }

    /// One stream's cumulative serving counters.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownStream`] for an id the fleet never issued.
    pub fn stream_stats(&self, id: StreamId) -> Result<StreamStats, ServeError> {
        self.sessions
            .get(id.0)
            .map(|s| s.stats)
            .ok_or(ServeError::UnknownStream {
                stream: id.0,
                streams: self.sessions.len(),
            })
    }

    /// One stream's verdicts so far (convenience over
    /// [`FleetServer::session`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownStream`] for an id the fleet never issued.
    pub fn verdicts(&self, id: StreamId) -> Result<&[Verdict], ServeError> {
        self.session(id).map(|s| s.verdicts())
    }

    fn check_feeds(&self, feeds: usize) -> Result<(), ServeError> {
        if self.models.is_empty() {
            return Err(ServeError::NoModels);
        }
        if feeds != self.sessions.len() || feeds == 0 {
            return Err(ServeError::FeedMismatch {
                feeds,
                streams: self.sessions.len(),
            });
        }
        Ok(())
    }

    /// Deterministic single-threaded reference mode: rounds of
    /// round-robin over the streams, each frame fully processed in
    /// line (prepare, classify against the shared models, complete).
    /// No queues, no shedding, no clock-dependent behavior — each
    /// stream's verdict and switch sequences are bit-identical to a
    /// standalone [`SafeCross::process_frame`] loop over its frames,
    /// which is exactly what `tests/serve_equivalence.rs` asserts.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoModels`] or [`ServeError::FeedMismatch`].
    pub fn run_reference(
        &mut self,
        feeds: Vec<Vec<GrayFrame>>,
    ) -> Result<FleetReport, ServeError> {
        self.check_feeds(feeds.len())?;
        let start = Instant::now();
        let before: Vec<StreamStats> = self.sessions.iter().map(|s| s.stats).collect();
        let mut ages = Vec::new();
        let mut scratch = KernelScratch::new();
        let hold = self.config.priority_hold;
        let rounds = feeds.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..rounds {
            for (i, feed) in feeds.iter().enumerate() {
                let Some(frame) = feed.get(round) else { continue };
                let session = &mut self.sessions[i];
                let admitted = Instant::now();
                session.stats.fed += 1;
                session.stats.admitted += 1;
                self.fleet_metrics.admitted.inc();
                let (seq, mut prep) = session.prepare(frame, hold);
                let raw = match (prep.clip.take(), prep.effective) {
                    (Some(clip), Some(weather)) => {
                        classify_one(&mut self.models, weather, &clip, &mut scratch)
                    }
                    _ => None,
                };
                session.park(seq, prep, admitted);
                session.resolve(seq, raw);
                session.deliver_ready(hold, &self.fleet_metrics, &mut ages);
            }
        }
        Ok(self.build_report(start, before, ages, BatcherStats::default()))
    }

    /// The threaded serving loop: one feeder thread per stream, a
    /// scheduler (this thread) owning every session, a batcher
    /// grouping clips into micro-batches, and
    /// [`ServeConfig::workers`] inference workers. Returns when every
    /// feed is exhausted and every admitted-and-not-shed frame has
    /// completed.
    ///
    /// With shedding disabled this is lossless: backpressure pauses
    /// scheduling rather than dropping frames, and per-stream outputs
    /// stay bit-identical to a standalone run. With shedding enabled,
    /// overload turns into bounded queues, overflow/stale drops, and
    /// priority scheduling — per-stream isolation under load is pinned
    /// down by `tests/serve_isolation.rs`.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoModels`] or [`ServeError::FeedMismatch`].
    pub fn run(&mut self, feeds: Vec<FrameFeed>) -> Result<FleetReport, ServeError> {
        self.check_feeds(feeds.len())?;
        let start = Instant::now();
        let before: Vec<StreamStats> = self.sessions.iter().map(|s| s.stats).collect();

        let config = self.config;
        let fleet = self.fleet_metrics.clone();
        let fault_hook = self.fault_hook.clone();
        let models = &self.models;
        let sessions = &mut self.sessions;

        let (ingress_tx, ingress_rx) = mpsc::channel::<(usize, GrayFrame)>();
        let (clip_tx, clip_rx) = mpsc::channel::<ClipJob>();
        let (batch_tx, batch_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel::<Completion>();
        let batch_rx = Mutex::new(batch_rx);

        let (ages, batcher_stats) = thread::scope(|s| {
            for (i, feed) in feeds.into_iter().enumerate() {
                let tx = ingress_tx.clone();
                s.spawn(move || {
                    for frame in feed {
                        if tx.send((i, frame)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(ingress_tx);

            let batcher = {
                let fleet = &fleet;
                let config = &config;
                s.spawn(move || run_batcher(clip_rx, batch_tx, config, fleet))
            };
            for worker in 0..config.workers {
                let done_tx = done_tx.clone();
                let batch_rx = &batch_rx;
                let fault_hook = fault_hook.clone();
                let fleet = &fleet;
                s.spawn(move || {
                    run_worker(
                        models,
                        batch_rx,
                        done_tx,
                        fault_hook.as_deref(),
                        worker,
                        fleet,
                    )
                });
            }
            drop(done_tx);

            let mut scheduler = Scheduler {
                sessions,
                models,
                config,
                fleet: &fleet,
                clip_tx,
                done_rx,
                ingress_rx,
                ingress_open: true,
                inflight: 0,
                ages: Vec::new(),
                rr_hot: 0,
                rr_norm: 0,
            };
            scheduler.serve();
            let Scheduler { ages, clip_tx, .. } = scheduler;
            // Close the clip feed so the batcher flushes and exits,
            // releasing the workers in turn.
            drop(clip_tx);
            let batcher_stats = batcher.join().expect("batcher panicked");
            (ages, batcher_stats)
        });

        Ok(self.build_report(start, before, ages, batcher_stats))
    }

    fn build_report(
        &self,
        start: Instant,
        before: Vec<StreamStats>,
        mut ages: Vec<f64>,
        batcher: BatcherStats,
    ) -> FleetReport {
        let wall = start.elapsed();
        let streams: Vec<StreamReport> = self
            .sessions
            .iter()
            .enumerate()
            .map(|(i, s)| StreamReport {
                stream: StreamId(i),
                stats: s.stats.delta(&before[i]),
            })
            .collect();
        let completed: u64 = streams.iter().map(|s| s.stats.completed).sum();
        let shed: u64 = streams.iter().map(|s| s.stats.shed()).sum();
        let aggregate_fps = if wall.as_secs_f64() > 0.0 {
            completed as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        let frame_age = AgeProfile::from_ages(&mut ages);
        let report = FleetReport {
            streams,
            wall,
            completed,
            shed,
            aggregate_fps,
            batches: batcher.batches,
            max_batch: batcher.max_batch,
            mean_batch: if batcher.batches > 0 {
                batcher.clips as f64 / batcher.batches as f64
            } else {
                0.0
            },
            frame_age,
        };
        self.registry.event(
            "fleet_run",
            vec![
                ("streams".to_owned(), (report.streams.len() as u64).into()),
                ("completed".to_owned(), report.completed.into()),
                ("shed".to_owned(), report.shed.into()),
                ("aggregate_fps".to_owned(), report.aggregate_fps.into()),
                ("batches".to_owned(), report.batches.into()),
                ("p99_age_ms".to_owned(), report.frame_age.p99_ms.into()),
            ],
        );
        report
    }
}

/// The scheduler: the single thread that owns every session during a
/// threaded run. Owning all per-stream state here (rather than locking
/// it across workers) is what makes per-stream sequential semantics —
/// and therefore the bit-identity guarantee — structural.
struct Scheduler<'a> {
    sessions: &'a mut Vec<StreamSession>,
    models: &'a HashMap<Weather, SlowFastLite>,
    config: ServeConfig,
    fleet: &'a FleetMetrics,
    clip_tx: Sender<ClipJob>,
    done_rx: Receiver<Completion>,
    ingress_rx: Receiver<(usize, GrayFrame)>,
    ingress_open: bool,
    inflight: usize,
    ages: Vec<f64>,
    rr_hot: usize,
    rr_norm: usize,
}

impl Scheduler<'_> {
    fn serve(&mut self) {
        loop {
            while let Ok(done) = self.done_rx.try_recv() {
                self.on_completion(done);
            }
            self.drain_ingress();

            // Backpressure: pause preparation while the executor holds
            // enough work to keep every worker busy; queues absorb (or
            // shed) the excess.
            if self.inflight < self.config.inflight_limit() {
                if let Some(stream) = self.pick_stream() {
                    self.schedule_one(stream);
                    continue;
                }
            }

            let queued: usize = self.sessions.iter().map(StreamSession::queue_len).sum();
            if !self.ingress_open && queued == 0 && self.inflight == 0 {
                debug_assert!(self.sessions.iter().all(StreamSession::is_settled));
                break;
            }

            // Nothing runnable: block briefly on whichever side can
            // unblock us.
            if self.inflight > 0 {
                if let Ok(done) = self.done_rx.recv_timeout(Duration::from_millis(1)) {
                    self.on_completion(done);
                }
            } else if self.ingress_open {
                match self.ingress_rx.recv_timeout(Duration::from_millis(1)) {
                    Ok((stream, frame)) => self.admit(stream, frame),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => self.ingress_open = false,
                }
            }
        }
    }

    fn drain_ingress(&mut self) {
        while self.ingress_open {
            match self.ingress_rx.try_recv() {
                Ok((stream, frame)) => self.admit(stream, frame),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => self.ingress_open = false,
            }
        }
    }

    fn admit(&mut self, stream: usize, frame: GrayFrame) {
        self.sessions[stream].admit(
            frame,
            self.config.shedding,
            self.config.queue_capacity,
            self.fleet,
        );
    }

    fn on_completion(&mut self, done: Completion) {
        let session = &mut self.sessions[done.stream];
        session.inflight -= 1;
        self.inflight -= 1;
        session.resolve(done.seq, done.raw);
        session.deliver_ready(self.config.priority_hold, self.fleet, &mut self.ages);
    }

    /// Two-level priority pick: high-priority streams (recent danger
    /// verdict or model switch) round-robin ahead of the rest; plain
    /// round-robin within each level keeps every stream live.
    fn pick_stream(&mut self) -> Option<usize> {
        let n = self.sessions.len();
        if self.config.priority {
            for k in 0..n {
                let i = (self.rr_hot + k) % n;
                if self.sessions[i].queue_len() > 0 && self.sessions[i].is_hot() {
                    self.rr_hot = (i + 1) % n;
                    return Some(i);
                }
            }
        }
        for k in 0..n {
            let i = (self.rr_norm + k) % n;
            if self.sessions[i].queue_len() > 0 {
                self.rr_norm = (i + 1) % n;
                return Some(i);
            }
        }
        None
    }

    fn schedule_one(&mut self, stream: usize) {
        let hold = self.config.priority_hold;
        let session = &mut self.sessions[stream];
        let Some(pending) = session.pop_fresh(
            self.config.frame_deadline,
            self.config.shedding,
            self.fleet,
        ) else {
            return;
        };
        let (seq, mut prep) = session.prepare(&pending.frame, hold);
        let dispatch = match (prep.clip.take(), prep.effective) {
            (Some(clip), Some(weather)) if self.models.contains_key(&weather) => {
                Some((clip, weather))
            }
            _ => None,
        };
        session.park(seq, prep, pending.admitted);
        match dispatch {
            Some((clip, weather)) => {
                session.inflight += 1;
                self.inflight += 1;
                // A send can only fail after the worker pool died, and
                // workers only exit once this scheduler drops `clip_tx`.
                let sent = self.clip_tx.send(ClipJob {
                    stream,
                    seq,
                    weather,
                    clip,
                });
                debug_assert!(sent.is_ok(), "executor hung up mid-run");
            }
            None => {
                session.resolve(seq, None);
                session.deliver_ready(hold, self.fleet, &mut self.ages);
            }
        }
    }
}
