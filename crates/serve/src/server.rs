//! The fleet front: admission, scheduling, and shard orchestration.

use crate::adapt::{HarvestSample, LearnHook, PromotionOutcome};
use crate::config::{ServeConfig, ServeError};
use crate::executor::{Batch, ClipJob, Completion, ExecStats, ShardCompute};
use crate::fault::{FaultHook, WorkerAction};
use crate::metrics::{FleetMetrics, ShardMetrics, StreamMetrics};
use crate::session::{StreamId, StreamSession, StreamStats};
use crate::source::{FrameSource, IntoFrameSource, SourcePoll};
use safecross::{SafeCross, SafeCrossConfig, Verdict};
use safecross_modelswitch::{ModelRegistry, SwitchFaultHook};
use safecross_telemetry::Registry;
use safecross_tensor::Precision;
use safecross_trafficsim::Weather;
use safecross_videoclass::{SlowFastLite, VideoClassifier};
use safecross_vision::GrayFrame;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How long an idle shard naps before re-polling its sources, queues,
/// and the steal ring.
const IDLE_NAP: Duration = Duration::from_micros(100);

/// How long a feeder thread naps when its (nominally blocking) source
/// reports [`SourcePoll::Pending`] instead of blocking.
const FEEDER_NAP: Duration = Duration::from_micros(200);

/// Admission-to-completion latency percentiles of one run, in ms.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AgeProfile {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
}

impl AgeProfile {
    fn from_ages(ages: &mut [f64]) -> Self {
        if ages.is_empty() {
            return AgeProfile::default();
        }
        ages.sort_by(|a, b| a.partial_cmp(b).expect("ages are finite"));
        let at = |q: f64| ages[((ages.len() - 1) as f64 * q).round() as usize];
        AgeProfile {
            p50_ms: at(0.50),
            p95_ms: at(0.95),
            p99_ms: at(0.99),
            mean_ms: ages.iter().sum::<f64>() / ages.len() as f64,
            max_ms: *ages.last().expect("non-empty"),
        }
    }
}

/// One stream's slice of a [`FleetReport`].
#[derive(Debug, Clone, Copy)]
pub struct StreamReport {
    /// Which stream.
    pub stream: StreamId,
    /// This run's serving counters (deltas against the run start).
    pub stats: StreamStats,
}

/// Everything one fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-stream counters, in stream order.
    pub streams: Vec<StreamReport>,
    /// End-to-end wall time of the run.
    pub wall: Duration,
    /// Outcomes delivered across all streams.
    pub completed: u64,
    /// Frames lost to shedding across all streams.
    pub shed: u64,
    /// Aggregate delivered throughput, frames per second.
    pub aggregate_fps: f64,
    /// Micro-batches the shards dispatched.
    pub batches: u64,
    /// Largest micro-batch, in clips.
    pub max_batch: usize,
    /// Mean micro-batch size, in clips.
    pub mean_batch: f64,
    /// Batches a shard executed out of another shard's queue. High
    /// steal counts mean the stream→shard partition was skewed and
    /// work-stealing leveled it.
    pub steals: u64,
    /// Admission-to-completion latency profile.
    pub frame_age: AgeProfile,
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet: {} frames delivered in {:?} ({:.1} fps aggregate), {} shed",
            self.completed, self.wall, self.aggregate_fps, self.shed
        )?;
        writeln!(
            f,
            "  batches: {} dispatched, mean {:.2} max {} clips, {} stolen",
            self.batches, self.mean_batch, self.max_batch, self.steals
        )?;
        writeln!(
            f,
            "  frame age ms: p50 {:.2}  p95 {:.2}  p99 {:.2}  max {:.2}",
            self.frame_age.p50_ms, self.frame_age.p95_ms, self.frame_age.p99_ms,
            self.frame_age.max_ms
        )?;
        for s in &self.streams {
            writeln!(
                f,
                "  {:<9} fed {:>6}  completed {:>6}  verdicts {:>5} ({} danger)  \
                 shed {:>5} ({} overflow, {} stale)  queue peak {:>3}",
                s.stream.to_string(),
                s.stats.fed,
                s.stats.completed,
                s.stats.verdicts,
                s.stats.danger_verdicts,
                s.stats.shed(),
                s.stats.shed_overflow,
                s.stats.shed_stale,
                s.stats.queue_peak,
            )?;
        }
        Ok(())
    }
}

/// What a new stream should look like — the argument to
/// [`FleetServer::open_stream`].
///
/// The default spec inherits the fleet's session template
/// ([`ServeConfig::stream`]); [`StreamSpec::with_config`] overrides it
/// per stream (frame geometry, segment length, confidence gate), and
/// [`StreamSpec::with_precision`] selects the numeric precision the
/// stream's forwards run at (f32 by default).
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamSpec {
    config: Option<SafeCrossConfig>,
    precision: Precision,
}

impl StreamSpec {
    /// A stream using the fleet's session template.
    pub fn new() -> Self {
        StreamSpec::default()
    }

    /// A stream with its own session configuration.
    pub fn with_config(config: SafeCrossConfig) -> Self {
        StreamSpec {
            config: Some(config),
            precision: Precision::default(),
        }
    }

    /// Selects the precision this stream's clips classify at. Int8
    /// streams run quantized replicas and never share a micro-batch
    /// with f32 streams, even when bound to the same checkpoint — the
    /// executor keys batches by `(checkpoint, precision)`.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

/// A typed handle to one open stream — what
/// [`FleetServer::open_stream`] returns.
///
/// The handle is `Copy` and carries the stream's identity plus the
/// session configuration it was opened with; the per-stream accessors
/// borrow the fleet, so a handle can be stored anywhere and used
/// whenever the fleet is at hand. Handles are only meaningful against
/// the fleet that issued them: using one against a *different* fleet
/// panics when the id is out of range, and is otherwise a logic error
/// this type cannot detect.
#[derive(Debug, Clone, Copy)]
pub struct StreamHandle {
    id: StreamId,
    config: SafeCrossConfig,
    precision: Precision,
}

impl StreamHandle {
    /// The stream's fleet-wide identity.
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// The session configuration this stream was opened with.
    pub fn config(&self) -> &SafeCrossConfig {
        &self.config
    }

    /// The numeric precision this stream classifies at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    fn lane<'f>(&self, fleet: &'f FleetServer) -> &'f StreamSession {
        fleet.sessions.get(self.id.0).unwrap_or_else(|| {
            panic!(
                "{} handle used against a fleet with {} streams — \
                 handles only work with the fleet that issued them",
                self.id,
                fleet.streams()
            )
        })
    }

    /// This stream's cumulative serving counters.
    pub fn stats(&self, fleet: &FleetServer) -> StreamStats {
        self.lane(fleet).stats
    }

    /// This stream's verdicts so far.
    pub fn verdicts<'f>(&self, fleet: &'f FleetServer) -> &'f [Verdict] {
        self.lane(fleet).inner.verdicts()
    }

    /// This stream's underlying SafeCross session — its verdict
    /// history, switch log, and scene state.
    pub fn session<'f>(&self, fleet: &'f FleetServer) -> &'f SafeCross {
        &self.lane(fleet).inner
    }

    /// This stream's report slice, over its whole lifetime (a
    /// [`FleetReport`] row covers one run; this covers every run).
    pub fn report(&self, fleet: &FleetServer) -> StreamReport {
        StreamReport {
            stream: self.id,
            stats: self.stats(fleet),
        }
    }
}

/// A multi-intersection serving front.
///
/// One `FleetServer` multiplexes N independent intersection streams
/// over [`ServeConfig::shards`] shard threads — one per core, each
/// owning its partition's complete serving state:
///
/// - every stream owns a full per-session SafeCross state (scene
///   detector, VP background model, segment buffer, model switcher).
///   Sessions are inert state machines: no thread, no lock, no
///   blocking call. Stream `i` lives on shard `i % shards`, and only
///   that shard ever touches it, so per-stream sequential semantics —
///   and therefore verdict/switch bit-identity with a standalone run —
///   are structural;
/// - each shard admits, sheds, priority-schedules, and micro-batches
///   its own streams' clips (same-weather groups under a size cap and
///   linger deadline), then pushes batches onto its own stealable
///   queue. Shards execute their own queue first and steal from
///   neighbors when idle, so a skewed partition still saturates every
///   core while completions route back to the owning shard;
/// - an admission layer bounds each stream's queue (drop-oldest),
///   sheds frames that outlive [`ServeConfig::frame_deadline`], and
///   schedules streams with a recent danger verdict or model switch
///   ahead of idle ones — so one stalled or flooded stream never
///   starves the rest.
///
/// [`FleetServer::run_reference`] is the deterministic single-threaded
/// mode the equivalence tests compare against; [`FleetServer::run`] is
/// the real sharded serving loop.
pub struct FleetServer {
    config: ServeConfig,
    registry: Registry,
    fleet_metrics: FleetMetrics,
    /// The fleet's single content-addressed checkpoint store. Every
    /// stream session shares this handle, so N streams registering the
    /// same per-weather checkpoints hold each unique layer group once
    /// (refcounted), not once per stream.
    model_store: ModelRegistry,
    models: HashMap<Weather, SlowFastLite>,
    /// Model registration order — sessions register scenes in this
    /// order so fallback/switch behavior is identical across streams
    /// (and to any standalone comparator registering the same way).
    model_order: Vec<Weather>,
    sessions: Vec<StreamSession>,
    /// Chaos seam consulted by every shard once per executed batch.
    /// `None` (the default) outside fault-injection runs.
    fault_hook: Option<Arc<dyn FaultHook>>,
    /// Continual-learning seam: offered every classified clip, drained
    /// for promotions at the top of each shard loop iteration. `None`
    /// (the default) for fleets without a learner.
    learn_hook: Option<Arc<dyn LearnHook>>,
}

impl FleetServer {
    /// Creates an empty fleet after validating `config`.
    ///
    /// # Errors
    ///
    /// The first violated configuration invariant.
    pub fn new(config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let registry = if config.telemetry {
            Registry::new()
        } else {
            Registry::disabled()
        };
        let fleet_metrics = FleetMetrics::new(&registry);
        let model_store = ModelRegistry::new();
        model_store.instrument(&registry);
        Ok(FleetServer {
            config,
            registry,
            fleet_metrics,
            model_store,
            models: HashMap::new(),
            model_order: Vec::new(),
            sessions: Vec::new(),
            fault_hook: None,
            learn_hook: None,
        })
    }

    /// Installs a chaos fault hook on the shard set: every shard
    /// consults it once per executed micro-batch and can be stalled or
    /// killed/respawned (see [`FaultHook`]). Faults never lose a
    /// completion, so lossless runs stay lossless. Only
    /// [`FleetServer::run`] is affected; the single-threaded
    /// [`FleetServer::run_reference`] has no shards to fault.
    pub fn set_fault_hook(&mut self, hook: Arc<dyn FaultHook>) {
        self.fault_hook = Some(hook);
    }

    /// Removes any installed shard fault hook.
    pub fn clear_fault_hook(&mut self) {
        self.fault_hook = None;
    }

    /// Installs a continual-learning hook (see [`LearnHook`]): every
    /// clip a shard classifies during [`FleetServer::run`] is offered
    /// to it, and promotions it queues are applied by the owning shard
    /// through the session's model-binding path. The hook's
    /// `on_run_start`/`on_run_end` bracket every sharded run, so a
    /// learner can scope its background trainer thread to the run. The
    /// single-threaded [`FleetServer::run_reference`] never consults
    /// the hook — reference mode stays the fixed comparator.
    pub fn set_learn_hook(&mut self, hook: Arc<dyn LearnHook>) {
        self.learn_hook = Some(hook);
    }

    /// Removes any installed continual-learning hook.
    pub fn clear_learn_hook(&mut self) {
        self.learn_hook = None;
    }

    /// Installs a switch fault hook on every *existing* stream session's
    /// model switcher: switch attempts can be forced to fail with a
    /// synthetic out-of-memory error after evicting the old model,
    /// driving the rollback path under load (see
    /// [`SwitchFaultHook`]). Streams opened later are unaffected —
    /// install hooks after the fleet's streams are set up.
    pub fn set_switch_fault_hook(&mut self, hook: Arc<dyn SwitchFaultHook>) {
        for session in &self.sessions {
            session.inner.set_switch_fault_hook(hook.clone());
        }
    }

    /// Registers the shared classifier for one weather scene. All
    /// models must be registered before the first stream is opened.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelAfterStream`] once a stream exists.
    pub fn register_model(
        &mut self,
        weather: Weather,
        mut model: SlowFastLite,
    ) -> Result<(), ServeError> {
        if !self.sessions.is_empty() {
            return Err(ServeError::ModelAfterStream);
        }
        // The checkpoint lands in the fleet store first, and the shared
        // inference copy is resolved back out of it — so the weights the
        // shards run are bit-identical to the blobs every session's
        // switcher activates.
        self.model_store
            .register_model(weather.label(), &model.state_groups());
        // Base scene checkpoints are the fleet's bedrock: pin them so
        // continual-learning churn under a store memory ceiling can
        // never evict them.
        self.model_store.pin_model(weather.label());
        let state = self
            .model_store
            .state_dict(weather.label())
            .expect("checkpoint was just stored");
        model.load_state_dict(&state);
        if !self.model_order.contains(&weather) {
            self.model_order.push(weather);
        }
        self.models.insert(weather, model);
        Ok(())
    }

    /// Opens a stream and returns its [`StreamHandle`] — the typed
    /// entry point to everything per-stream (identity, configuration,
    /// stats, verdicts, the underlying session).
    ///
    /// ```no_run
    /// # use safecross_serve::{FleetServer, ServeConfig, StreamSpec};
    /// # let mut fleet = FleetServer::new(ServeConfig::default()).unwrap();
    /// let cam = fleet.open_stream(StreamSpec::new())?;
    /// // ... feed and run the fleet ...
    /// println!("{} verdicts", cam.verdicts(&fleet).len());
    /// # Ok::<(), safecross_serve::ServeError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`ServeError::NoModels`] before any model is registered, or
    /// [`ServeError::Stream`] when the spec's session configuration
    /// fails validation.
    pub fn open_stream(&mut self, spec: StreamSpec) -> Result<StreamHandle, ServeError> {
        let config = spec.config.unwrap_or(self.config.stream);
        let precision = spec.precision;
        let id = self.open_with(config, precision)?;
        Ok(StreamHandle {
            id,
            config,
            precision,
        })
    }

    /// The shared stream-opening path behind [`FleetServer::open_stream`].
    fn open_with(
        &mut self,
        config: SafeCrossConfig,
        precision: Precision,
    ) -> Result<StreamId, ServeError> {
        if self.models.is_empty() {
            return Err(ServeError::NoModels);
        }
        let mut inner = SafeCross::try_new(config).map_err(ServeError::Stream)?;
        // Every stream shares the fleet's checkpoint store: scene
        // registration below re-registers the same named checkpoints
        // (idempotent), so per-weather weights are held once fleet-wide.
        inner.share_model_store(&self.model_store);
        for weather in &self.model_order {
            inner.register_scene(*weather, &self.models[weather]);
        }
        let id = StreamId(self.sessions.len());
        let metrics = StreamMetrics::new(&self.registry, id.0);
        self.sessions
            .push(StreamSession::new(inner, metrics, precision));
        Ok(id)
    }

    /// How many streams the fleet serves.
    pub fn streams(&self) -> usize {
        self.sessions.len()
    }

    /// Handles for every open stream, in stream order — for callers
    /// that did not keep the handles [`FleetServer::open_stream`]
    /// returned (e.g. trace replay rebuilding a fleet wholesale).
    pub fn handles(&self) -> Vec<StreamHandle> {
        self.sessions
            .iter()
            .enumerate()
            .map(|(i, s)| StreamHandle {
                id: StreamId(i),
                config: *s.inner.config(),
                precision: s.precision,
            })
            .collect()
    }

    /// The configuration this fleet was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The fleet's telemetry registry (disabled unless the
    /// configuration enabled it).
    pub fn telemetry(&self) -> &Registry {
        &self.registry
    }

    /// The fleet's shared checkpoint store. All stream sessions hold
    /// this same handle; its refcounts prove per-weather weights are
    /// stored once for the whole fleet
    /// (`model_count` / `unique_groups` / `dedup_bytes`).
    pub fn model_store(&self) -> &ModelRegistry {
        &self.model_store
    }

    fn check_feeds(&self, feeds: usize) -> Result<(), ServeError> {
        if self.models.is_empty() {
            return Err(ServeError::NoModels);
        }
        if feeds != self.sessions.len() || feeds == 0 {
            return Err(ServeError::FeedMismatch {
                feeds,
                streams: self.sessions.len(),
            });
        }
        Ok(())
    }

    /// Deterministic single-threaded reference mode: every source is
    /// drained to its complete frame sequence up front
    /// ([`FrameSource::drain`]), then rounds of round-robin over the
    /// streams process each frame fully in line (prepare, classify
    /// against the shared models, complete). No queues, no shedding,
    /// no clock-dependent behavior — each stream's verdict and switch
    /// sequences are bit-identical to a standalone
    /// [`SafeCross::process_frame`] loop over its frames, which is
    /// exactly what `tests/serve_equivalence.rs` asserts (and the
    /// sharded loop, run losslessly, matches at *any* shard count).
    ///
    /// # Errors
    ///
    /// [`ServeError::NoModels`] or [`ServeError::FeedMismatch`].
    pub fn run_reference<S: IntoFrameSource>(
        &mut self,
        feeds: Vec<S>,
    ) -> Result<FleetReport, ServeError> {
        self.check_feeds(feeds.len())?;
        let feeds: Vec<Vec<GrayFrame>> = feeds
            .into_iter()
            .map(|feed| feed.into_source().drain())
            .collect();
        let start = Instant::now();
        let before: Vec<StreamStats> = self.sessions.iter().map(|s| s.stats).collect();
        let mut ages = Vec::new();
        let models = &self.models;
        let mut compute = ShardCompute::new(models, self.model_store.clone());
        let fleet_metrics = &self.fleet_metrics;
        let sessions = &mut self.sessions;
        let hold = self.config.priority_hold;
        let rounds = feeds.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..rounds {
            for (i, feed) in feeds.iter().enumerate() {
                let Some(frame) = feed.get(round) else { continue };
                let session = &mut sessions[i];
                let admitted = Instant::now();
                session.stats.fed += 1;
                session.stats.admitted += 1;
                fleet_metrics.admitted.inc();
                let (seq, mut prep) = session.prepare(frame, hold);
                let raw = match (prep.clip.take(), prep.effective) {
                    (Some(clip), Some(weather)) => {
                        let name = session.model_for(weather);
                        compute.classify_single(&name, weather, session.precision, &clip)
                    }
                    _ => None,
                };
                session.park(seq, prep, admitted);
                session.resolve(seq, raw);
                session.deliver_ready(hold, fleet_metrics, &mut ages);
            }
        }
        Ok(self.build_report(start, before, ages, ExecStats::default()))
    }

    /// The sharded serving loop: streams (with their sessions and
    /// sources) are partitioned across [`ServeConfig::shards`] shard
    /// threads — stream `i` on shard `i % shards` — and each shard
    /// admits, sheds, schedules, micro-batches, and classifies its own
    /// partition, stealing batches from other shards' queues when its
    /// own runs dry. Blocking sources get a feeder thread each; inline
    /// sources are polled by the owning shard. Returns when every
    /// source is exhausted and every admitted-and-not-shed frame has
    /// completed.
    ///
    /// With shedding disabled this is lossless: backpressure pauses
    /// scheduling rather than dropping frames, and per-stream outputs
    /// stay bit-identical to a standalone run — at any shard count,
    /// which `tests/serve_equivalence.rs` propcheck over shard counts
    /// pins down. With shedding enabled, overload turns into bounded
    /// queues, overflow/stale drops, and priority scheduling — per-
    /// stream isolation under load is pinned by
    /// `tests/serve_isolation.rs`.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoModels`] or [`ServeError::FeedMismatch`].
    pub fn run<S: IntoFrameSource>(&mut self, feeds: Vec<S>) -> Result<FleetReport, ServeError> {
        self.check_feeds(feeds.len())?;
        let start = Instant::now();
        let before: Vec<StreamStats> = self.sessions.iter().map(|s| s.stats).collect();

        let shard_count = self.config.shards.min(self.sessions.len()).max(1);
        let config = self.config;
        let fleet = self.fleet_metrics.clone();
        let registry = &self.registry;
        let fault_hook = self.fault_hook.clone();
        let learn_hook = self.learn_hook.clone();
        let store = self.model_store.clone();
        let models = &self.models;
        if let Some(hook) = &learn_hook {
            hook.on_run_start();
        }

        // Partition streams (session + source) across the shards.
        let sessions = std::mem::take(&mut self.sessions);
        let total = sessions.len();
        let mut lanes: Vec<Vec<ShardStream>> = (0..shard_count).map(|_| Vec::new()).collect();
        let mut feeders: Vec<(Box<dyn FrameSource>, Sender<GrayFrame>)> = Vec::new();
        for (global, (session, feed)) in sessions.into_iter().zip(feeds).enumerate() {
            let source = feed.into_source();
            let ingest = if source.is_blocking() {
                // A blocking source gets a feeder thread so its stalls
                // land on nobody's shard.
                let (tx, rx) = mpsc::channel();
                feeders.push((Box::new(source), tx));
                Ingest::Feeder(rx)
            } else {
                Ingest::Inline(Box::new(source))
            };
            lanes[global % shard_count].push(ShardStream {
                global,
                session,
                ingest,
            });
        }

        let shared = SharedRun {
            queues: (0..shard_count)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            settled: (0..shard_count).map(|_| AtomicBool::new(false)).collect(),
        };
        let mut done_txs = Vec::with_capacity(shard_count);
        let mut done_rxs = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let (tx, rx) = mpsc::channel::<Completion>();
            done_txs.push(tx);
            done_rxs.push(rx);
        }

        let outcomes: Vec<ShardOutcome> = thread::scope(|s| {
            for (mut source, tx) in feeders {
                s.spawn(move || loop {
                    match source.poll(Instant::now()) {
                        SourcePoll::Ready(frame) => {
                            if tx.send(frame).is_err() {
                                break;
                            }
                        }
                        SourcePoll::Pending => thread::sleep(FEEDER_NAP),
                        SourcePoll::Done => break,
                    }
                });
            }
            let handles: Vec<_> = lanes
                .into_iter()
                .zip(done_rxs)
                .enumerate()
                .map(|(index, (streams, done_rx))| {
                    let shared = &shared;
                    let fleet = &fleet;
                    let config = &config;
                    let done_txs = done_txs.clone();
                    let fault_hook = fault_hook.clone();
                    let learn_hook = learn_hook.clone();
                    let store = store.clone();
                    let metrics = ShardMetrics::new(registry, index);
                    s.spawn(move || {
                        Shard {
                            index,
                            shard_count,
                            config,
                            fleet,
                            metrics,
                            models,
                            streams,
                            shared,
                            done_rx,
                            done_txs,
                            fault_hook,
                            learn_hook,
                            compute: ShardCompute::new(models, store),
                            pending: HashMap::new(),
                            inflight: 0,
                            batches_done: 0,
                            ages: Vec::new(),
                            stats: ExecStats::default(),
                            rr_hot: 0,
                            rr_norm: 0,
                            settled_flagged: false,
                        }
                        .serve()
                    })
                })
                .collect();
            drop(done_txs);
            handles
                .into_iter()
                .map(|h| h.join().expect("shard panicked"))
                .collect()
        });

        // Reassemble the fleet: every shard hands its streams back.
        let mut slots: Vec<Option<StreamSession>> = (0..total).map(|_| None).collect();
        let mut ages = Vec::new();
        let mut exec = ExecStats::default();
        for outcome in outcomes {
            for (global, session) in outcome.streams {
                slots[global] = Some(session);
            }
            ages.extend(outcome.ages);
            exec.merge(&outcome.stats);
        }
        self.sessions = slots
            .into_iter()
            .map(|s| s.expect("every stream returns from its shard"))
            .collect();

        if let Some(hook) = &self.learn_hook {
            hook.on_run_end();
        }
        Ok(self.build_report(start, before, ages, exec))
    }

    fn build_report(
        &self,
        start: Instant,
        before: Vec<StreamStats>,
        mut ages: Vec<f64>,
        exec: ExecStats,
    ) -> FleetReport {
        let wall = start.elapsed();
        let streams: Vec<StreamReport> = self
            .sessions
            .iter()
            .enumerate()
            .map(|(i, s)| StreamReport {
                stream: StreamId(i),
                stats: s.stats.delta(&before[i]),
            })
            .collect();
        let completed: u64 = streams.iter().map(|s| s.stats.completed).sum();
        let shed: u64 = streams.iter().map(|s| s.stats.shed()).sum();
        let aggregate_fps = if wall.as_secs_f64() > 0.0 {
            completed as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        let frame_age = AgeProfile::from_ages(&mut ages);
        let report = FleetReport {
            streams,
            wall,
            completed,
            shed,
            aggregate_fps,
            batches: exec.batches,
            max_batch: exec.max_batch,
            mean_batch: if exec.batches > 0 {
                exec.clips as f64 / exec.batches as f64
            } else {
                0.0
            },
            steals: exec.steals,
            frame_age,
        };
        self.registry.event(
            "fleet_run",
            vec![
                ("streams".to_owned(), (report.streams.len() as u64).into()),
                ("completed".to_owned(), report.completed.into()),
                ("shed".to_owned(), report.shed.into()),
                ("aggregate_fps".to_owned(), report.aggregate_fps.into()),
                ("batches".to_owned(), report.batches.into()),
                ("steals".to_owned(), report.steals.into()),
                ("p99_age_ms".to_owned(), report.frame_age.p99_ms.into()),
            ],
        );
        report
    }
}

/// State shared by every shard of one run: the stealable batch queues
/// and the per-shard settled flags the termination protocol reads.
struct SharedRun {
    /// One batch queue per shard. A shard pushes to and pops from its
    /// own queue; an idle shard steals from the others', oldest first.
    queues: Vec<Mutex<VecDeque<Batch>>>,
    /// Monotone per-shard completion flags: shard `i` sets `settled[i]`
    /// once its sources are exhausted, its queues and reorder buffers
    /// are empty, and it has nothing in flight. Nothing can un-settle a
    /// shard (its streams can't receive new work), so every shard exits
    /// once all flags are up — and keeps stealing until then.
    settled: Vec<AtomicBool>,
}

impl SharedRun {
    fn all_settled(&self) -> bool {
        self.settled.iter().all(|s| s.load(Ordering::Acquire))
    }
}

/// Where one stream's frames come from during a sharded run.
enum Ingest {
    /// A non-blocking source, polled inline by the owning shard.
    Inline(Box<dyn FrameSource>),
    /// A blocking source, pumped by a feeder thread into this channel.
    Feeder(Receiver<GrayFrame>),
    /// Exhausted — this stream will never see another frame.
    Finished,
}

/// One stream as a shard sees it: the inert session plus its frame
/// supply and its fleet-wide index.
struct ShardStream {
    global: usize,
    session: StreamSession,
    ingest: Ingest,
}

/// A same-checkpoint, same-precision group of clips accumulating
/// toward a micro-batch. Keyed by `(checkpoint, precision)` in
/// [`Shard::pending`] — a mixed-precision fleet never co-batches — and
/// the weather rides along because the executor resolves replicas from
/// the shared scene model of that weather.
struct PendingGroup {
    weather: Weather,
    jobs: Vec<ClipJob>,
    opened: Instant,
}

/// What one shard hands back when the run settles.
struct ShardOutcome {
    streams: Vec<(usize, StreamSession)>,
    ages: Vec<f64>,
    stats: ExecStats,
}

/// One shard: the single thread that owns a partition of the fleet's
/// sessions during a sharded run. Owning all per-stream state here
/// (rather than locking it across threads) is what makes per-stream
/// sequential semantics — and therefore the bit-identity guarantee —
/// structural: frames of stream `i` are prepared, resolved, and
/// delivered only ever by shard `i % shards`, in sequence order,
/// regardless of which shard executed their batches.
struct Shard<'a> {
    index: usize,
    shard_count: usize,
    config: &'a ServeConfig,
    fleet: &'a FleetMetrics,
    metrics: ShardMetrics,
    models: &'a HashMap<Weather, SlowFastLite>,
    streams: Vec<ShardStream>,
    shared: &'a SharedRun,
    done_rx: Receiver<Completion>,
    done_txs: Vec<Sender<Completion>>,
    fault_hook: Option<Arc<dyn FaultHook>>,
    learn_hook: Option<Arc<dyn LearnHook>>,
    compute: ShardCompute<'a>,
    /// Same-(checkpoint, precision) groups accumulating toward dispatch.
    pending: HashMap<(Arc<str>, Precision), PendingGroup>,
    /// Clips staged or dispatched and not yet resolved. Bounded by
    /// [`ServeConfig::inflight_limit`] per shard.
    inflight: usize,
    /// Batches this shard has executed — the deterministic coordinate
    /// handed to the chaos seam.
    batches_done: u64,
    ages: Vec<f64>,
    stats: ExecStats,
    rr_hot: usize,
    rr_norm: usize,
    settled_flagged: bool,
}

impl Shard<'_> {
    fn serve(mut self) -> ShardOutcome {
        loop {
            self.apply_promotions();
            let mut progressed = self.drain_completions();
            progressed |= self.ingest();
            progressed |= self.schedule();
            // Tail flush: once this shard's sources are dry and its
            // queues empty, under-full groups will never fill — flush
            // them now rather than waiting out the linger.
            let tail = self.sources_finished()
                && self.streams.iter().all(|t| t.session.queue_len() == 0);
            progressed |= self.flush_pending(tail);
            progressed |= self.execute_one();
            self.update_settled();
            if self.shared.all_settled() {
                break;
            }
            if !progressed {
                if self.inflight > 0 {
                    // Another shard may be executing our batch; wake on
                    // its completion (or the timeout, to re-check the
                    // linger clock and the steal ring).
                    if let Ok(done) = self.done_rx.recv_timeout(Duration::from_millis(1)) {
                        self.on_completion(done);
                    }
                } else {
                    thread::sleep(IDLE_NAP);
                }
            }
        }
        ShardOutcome {
            streams: self
                .streams
                .into_iter()
                .map(|t| (t.global, t.session))
                .collect(),
            ages: self.ages,
            stats: self.stats,
        }
    }

    /// Applies the learner's queued promotions addressed to this
    /// shard's streams through the owning session's model-binding path.
    /// Runs at the top of every serve-loop iteration so an activation
    /// lands between two frames of the stream, never inside a batch.
    fn apply_promotions(&mut self) {
        let Some(hook) = &self.learn_hook else { return };
        let promotions = hook.take_promotions(self.index, self.shard_count);
        for promo in promotions {
            debug_assert_eq!(
                promo.stream % self.shard_count,
                self.index,
                "promotion routed to wrong shard"
            );
            let local = promo.stream / self.shard_count;
            let Some(lane) = self.streams.get_mut(local) else {
                hook.promotion_result(&promo, PromotionOutcome::RolledBack);
                continue;
            };
            debug_assert_eq!(lane.global, promo.stream, "promotion stream mismatch");
            let outcome = match lane
                .session
                .inner
                .bind_scene_model(promo.weather, &promo.challenger)
            {
                Ok(true) => {
                    self.fleet.promotions.inc();
                    PromotionOutcome::Activated
                }
                Ok(false) => PromotionOutcome::Deferred,
                Err(_) => {
                    self.fleet.promotion_rollbacks.inc();
                    PromotionOutcome::RolledBack
                }
            };
            hook.promotion_result(&promo, outcome);
        }
    }

    fn drain_completions(&mut self) -> bool {
        let mut any = false;
        while let Ok(done) = self.done_rx.try_recv() {
            self.on_completion(done);
            any = true;
        }
        any
    }

    fn on_completion(&mut self, done: Completion) {
        let hold = self.config.priority_hold;
        let local = done.stream / self.shard_count;
        let lane = &mut self.streams[local];
        debug_assert_eq!(lane.global, done.stream, "completion routed to wrong shard");
        lane.session.inflight -= 1;
        self.inflight -= 1;
        lane.session.resolve(done.seq, done.raw);
        lane.session.deliver_ready(hold, self.fleet, &mut self.ages);
    }

    /// Pulls every frame currently available from this shard's sources
    /// into the admission queues.
    fn ingest(&mut self) -> bool {
        let mut any = false;
        let now = Instant::now();
        for lane in &mut self.streams {
            loop {
                let mut finished = false;
                let frame = match &mut lane.ingest {
                    Ingest::Inline(source) => match source.poll(now) {
                        SourcePoll::Ready(frame) => Some(frame),
                        SourcePoll::Pending => None,
                        SourcePoll::Done => {
                            finished = true;
                            None
                        }
                    },
                    Ingest::Feeder(rx) => match rx.try_recv() {
                        Ok(frame) => Some(frame),
                        Err(TryRecvError::Empty) => None,
                        Err(TryRecvError::Disconnected) => {
                            finished = true;
                            None
                        }
                    },
                    Ingest::Finished => None,
                };
                if finished {
                    lane.ingest = Ingest::Finished;
                }
                let Some(frame) = frame else { break };
                lane.session.admit(
                    frame,
                    self.config.shedding,
                    self.config.queue_capacity,
                    self.fleet,
                );
                any = true;
            }
        }
        any
    }

    fn sources_finished(&self) -> bool {
        self.streams
            .iter()
            .all(|t| matches!(t.ingest, Ingest::Finished))
    }

    /// Prepares queued frames up to the per-shard in-flight cap.
    fn schedule(&mut self) -> bool {
        let limit = self.config.inflight_limit();
        let mut any = false;
        while self.inflight < limit {
            let Some(local) = self.pick_stream() else { break };
            self.schedule_one(local);
            any = true;
        }
        any
    }

    /// Two-level priority pick within this shard: high-priority streams
    /// (recent danger verdict or model switch) round-robin ahead of the
    /// rest; plain round-robin within each level keeps every stream
    /// live.
    fn pick_stream(&mut self) -> Option<usize> {
        let n = self.streams.len();
        if n == 0 {
            return None;
        }
        if self.config.priority {
            for k in 0..n {
                let i = (self.rr_hot + k) % n;
                let session = &self.streams[i].session;
                if session.queue_len() > 0 && session.is_hot() {
                    self.rr_hot = (i + 1) % n;
                    return Some(i);
                }
            }
        }
        for k in 0..n {
            let i = (self.rr_norm + k) % n;
            if self.streams[i].session.queue_len() > 0 {
                self.rr_norm = (i + 1) % n;
                return Some(i);
            }
        }
        None
    }

    fn schedule_one(&mut self, local: usize) {
        let hold = self.config.priority_hold;
        let lane = &mut self.streams[local];
        let Some(pending) = lane.session.pop_fresh(
            self.config.frame_deadline,
            self.config.shedding,
            self.fleet,
        ) else {
            return;
        };
        let (seq, mut prep) = lane.session.prepare(&pending.frame, hold);
        let dispatch = match (prep.clip.take(), prep.effective) {
            (Some(clip), Some(weather)) if self.models.contains_key(&weather) => {
                Some((clip, weather, lane.session.model_for(weather)))
            }
            _ => None,
        };
        lane.session.park(seq, prep, pending.admitted);
        match dispatch {
            Some((clip, weather, model)) => {
                lane.session.inflight += 1;
                let stream = lane.global;
                let precision = lane.session.precision;
                self.inflight += 1;
                self.stage(ClipJob {
                    stream,
                    seq,
                    weather,
                    model,
                    precision,
                    clip,
                });
            }
            None => {
                lane.session.resolve(seq, None);
                lane.session.deliver_ready(hold, self.fleet, &mut self.ages);
            }
        }
    }

    /// Adds a clip to its (checkpoint, precision) group, dispatching
    /// the group the moment it fills. Streams still on the base scene
    /// checkpoints at f32 group by the weather label, so without
    /// promotions or int8 streams the grouping is exactly the old
    /// same-weather batching.
    fn stage(&mut self, job: ClipJob) {
        let key = (Arc::clone(&job.model), job.precision);
        let group = self
            .pending
            .entry((Arc::clone(&key.0), key.1))
            .or_insert_with(|| PendingGroup {
                weather: job.weather,
                jobs: Vec::with_capacity(self.config.batch_max),
                opened: Instant::now(),
            });
        group.jobs.push(job);
        if group.jobs.len() >= self.config.batch_max {
            let group = self.pending.remove(&key).expect("just inserted");
            self.dispatch(key, group.weather, group.jobs);
        }
    }

    /// Dispatches groups whose oldest clip has lingered past the
    /// deadline (all of them when `force` is set).
    fn flush_pending(&mut self, force: bool) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let now = Instant::now();
        let due: Vec<(Arc<str>, Precision)> = self
            .pending
            .iter()
            .filter(|(_, g)| force || now.duration_since(g.opened) >= self.config.batch_linger)
            .map(|(k, _)| (Arc::clone(&k.0), k.1))
            .collect();
        let mut any = false;
        for key in due {
            let group = self.pending.remove(&key).expect("listed as due");
            self.dispatch(key, group.weather, group.jobs);
            any = true;
        }
        any
    }

    fn dispatch(&mut self, key: (Arc<str>, Precision), weather: Weather, jobs: Vec<ClipJob>) {
        self.stats.batches += 1;
        self.stats.clips += jobs.len() as u64;
        self.stats.max_batch = self.stats.max_batch.max(jobs.len());
        self.fleet.batches.inc();
        self.fleet.batch_size.observe_ms(jobs.len() as f64);
        self.shared.queues[self.index]
            .lock()
            .expect("shard queue poisoned")
            .push_back(Batch {
                weather,
                model: key.0,
                precision: key.1,
                jobs,
            });
    }

    /// Executes one batch — own queue first, then the steal ring —
    /// routing each completion back to the clip's owning shard.
    fn execute_one(&mut self) -> bool {
        let mut stolen = false;
        let mut batch = self.shared.queues[self.index]
            .lock()
            .expect("shard queue poisoned")
            .pop_front();
        if batch.is_none() {
            for k in 1..self.shard_count {
                let victim = (self.index + k) % self.shard_count;
                batch = self.shared.queues[victim]
                    .lock()
                    .expect("shard queue poisoned")
                    .pop_front();
                if batch.is_some() {
                    stolen = true;
                    break;
                }
            }
        }
        let Some(batch) = batch else { return false };
        // Chaos seam: consulted once per executed batch. A `Die` drops
        // this shard's warm compute state (model clones, scratch) —
        // never a session — and the "respawned" shard retries the same
        // batch cold, so no completion is ever lost.
        if let Some(hook) = &self.fault_hook {
            match hook.before_batch(self.index, self.batches_done) {
                WorkerAction::Continue => {}
                WorkerAction::Stall(pause) => thread::sleep(pause),
                WorkerAction::Die => {
                    self.compute.drop_warm_state();
                    self.fleet.worker_deaths.inc();
                }
            }
        }
        self.batches_done += 1;
        let verdicts = self.compute.classify(&batch);
        self.metrics.batches.inc();
        if stolen {
            self.stats.steals += 1;
            self.metrics.steals.inc();
            self.fleet.steals.inc();
        }
        // Continual-learning harvest: offer every classified clip to the
        // learner before the jobs are consumed by completion routing.
        if let Some(hook) = &self.learn_hook {
            for (job, verdict) in batch.jobs.iter().zip(&verdicts) {
                hook.observe(HarvestSample {
                    stream: job.stream,
                    weather: job.weather,
                    seq: job.seq,
                    verdict: *verdict,
                    clip: &job.clip,
                });
            }
        }
        for (job, verdict) in batch.jobs.iter().zip(verdicts) {
            let owner = job.stream % self.shard_count;
            let sent = self.done_txs[owner].send(Completion {
                stream: job.stream,
                seq: job.seq,
                raw: Some(verdict),
            });
            debug_assert!(sent.is_ok(), "owner shard hung up mid-run");
        }
        true
    }

    /// Raises this shard's monotone settled flag once nothing local can
    /// ever produce work again. A settled shard keeps looping (and
    /// stealing) until every shard settles.
    fn update_settled(&mut self) {
        if self.settled_flagged {
            return;
        }
        let idle = self.inflight == 0
            && self.pending.is_empty()
            && self.sources_finished()
            && self
                .streams
                .iter()
                .all(|t| t.session.queue_len() == 0 && t.session.is_settled());
        if idle {
            self.settled_flagged = true;
            self.shared.settled[self.index].store(true, Ordering::Release);
        }
    }
}
