//! Fault-injection seams for chaos testing the serving layer.
//!
//! A [`FaultHook`] installed on a [`FleetServer`](crate::FleetServer)
//! is consulted by every inference worker once per dequeued micro-batch
//! and can kill the worker (drop all warm state, respawn cold), stall
//! it, or let it run. Faults are *semantically invisible*: a killed
//! worker's batch is retried by its respawned replacement, so lossless
//! runs stay lossless and per-stream outputs stay bit-identical to a
//! fault-free run — which is exactly what `tests/chaos_regression.rs`
//! asserts. Production fleets carry no hook and pay one `Option` check
//! per batch.
//!
//! The hook receives only deterministic coordinates (worker slot index,
//! batches dequeued by that slot), so a seed-scheduled plan like
//! `safecross-replay`'s `FaultPlan` can decide every fault as a pure
//! function — two runs with the same seed inject the same faults.

use std::time::Duration;

/// What a worker should do with the batch it just dequeued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerAction {
    /// Process the batch normally.
    Continue,
    /// Sleep this long first, then process the batch — simulates a
    /// descheduled or thermally-throttled worker.
    Stall(Duration),
    /// Simulated crash: the worker drops every piece of warm state it
    /// owns (local model clones, kernel scratch arena), counts a death
    /// in `serve.worker_deaths`, and is immediately "respawned" cold to
    /// retry the same batch. No completion is lost.
    Die,
}

/// The worker-level chaos seam. Implementations must be cheap and
/// deterministic in their inputs; they run on the worker hot path.
pub trait FaultHook: Send + Sync {
    /// Decides the fate of one dequeued batch. `worker` is the worker's
    /// slot index (`0..workers`), `batches_done` how many batches that
    /// slot has dequeued before this one.
    fn before_batch(&self, worker: usize, batches_done: u64) -> WorkerAction {
        let _ = (worker, batches_done);
        WorkerAction::Continue
    }
}
