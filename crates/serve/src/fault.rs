//! Fault-injection seams for chaos testing the serving layer.
//!
//! A [`FaultHook`] installed on a [`FleetServer`](crate::FleetServer)
//! is consulted by every shard once per executed micro-batch and can
//! kill the shard's compute slot (drop all warm state, respawn cold),
//! stall it, or let it run. Faults are *semantically invisible*: a
//! killed slot's batch is retried by its respawned replacement — and a
//! death only ever costs warm compute state (model clones, scratch),
//! never a session — so lossless runs stay lossless and per-stream
//! outputs stay bit-identical to a fault-free run, which is exactly
//! what `tests/chaos_regression.rs` asserts. Production fleets carry
//! no hook and pay one `Option` check per batch.
//!
//! The hook receives only deterministic coordinates (shard index,
//! batches executed by that shard), so a seed-scheduled plan like
//! `safecross-replay`'s `FaultPlan` can decide every fault as a pure
//! function — two runs with the same seed inject the same faults.

use std::time::Duration;

/// What a shard should do with the batch it just dequeued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerAction {
    /// Process the batch normally.
    Continue,
    /// Sleep this long first, then process the batch — simulates a
    /// descheduled or thermally-throttled core.
    Stall(Duration),
    /// Simulated crash: the shard drops every piece of warm compute
    /// state it owns (local model clones, kernel scratch arena), counts
    /// a death in `serve.worker_deaths`, and is immediately "respawned"
    /// cold to retry the same batch. Sessions live outside the compute
    /// slot, so no completion — and no stream — is ever lost.
    Die,
}

/// The shard-level chaos seam. Implementations must be cheap and
/// deterministic in their inputs; they run on the shard hot path.
pub trait FaultHook: Send + Sync {
    /// Decides the fate of one dequeued batch. `worker` is the shard's
    /// index (`0..shards`), `batches_done` how many batches that shard
    /// has executed before this one.
    fn before_batch(&self, worker: usize, batches_done: u64) -> WorkerAction {
        let _ = (worker, batches_done);
        WorkerAction::Continue
    }
}
