//! Serving-layer configuration.

use safecross::{ConfigError, SafeCrossConfig};
use std::fmt;
use std::time::Duration;

/// Upper bound on the shard count — far above any real core count, it
/// exists to catch a transposed argument (`shards(10_000)` when the
/// caller meant streams) before 10 000 threads are spawned.
pub const MAX_SHARDS: usize = 1024;

/// Upper bound on the per-stream admission queue. Each queued entry
/// holds a full frame, so a larger bound is almost certainly a
/// misconfiguration (use shedding, not buffering, to absorb overload).
pub const MAX_QUEUE_CAPACITY: usize = 1 << 20;

/// Configuration of a [`FleetServer`](crate::FleetServer).
///
/// Construct via [`ServeConfig::builder`] for build-time validation, or
/// fill the fields directly and let
/// [`FleetServer::new`](crate::FleetServer::new) validate.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Shard threads the fleet is partitioned across. Stream `i` lives
    /// on shard `i % shards`; each shard owns its sessions' admission,
    /// shedding, micro-batching, and classification, and steals batches
    /// from other shards when its own queue runs dry.
    pub shards: usize,
    /// Maximum clips per micro-batch; a batch is dispatched as soon as
    /// it reaches this size.
    pub batch_max: usize,
    /// How long an under-full batch may wait for compatible clips
    /// before it is dispatched anyway.
    pub batch_linger: Duration,
    /// Bound of each stream's admission queue. With shedding enabled,
    /// admitting a frame to a full queue drops that queue's *oldest*
    /// frame (freshest-data-wins for a real-time feed).
    pub queue_capacity: usize,
    /// Maximum age a queued frame may reach before the scheduler sheds
    /// it instead of processing it. `None` disables age shedding.
    pub frame_deadline: Option<Duration>,
    /// Master switch for load shedding. When `false` the admission
    /// queues grow without bound and no frame is ever dropped — the
    /// lossless mode the equivalence tests run in.
    pub shedding: bool,
    /// Two-level priority scheduling: streams with a recent danger
    /// verdict or model switch are serviced ahead of idle ones. When
    /// `false` every stream is scheduled round-robin.
    pub priority: bool,
    /// How many further frames a stream stays high-priority after the
    /// danger verdict or switch that promoted it.
    pub priority_hold: u64,
    /// Per-stream session template (frame geometry, VP settings,
    /// segment length, confidence gate).
    pub stream: SafeCrossConfig,
    /// Whether the fleet's telemetry registry records anything.
    pub telemetry: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            batch_max: 4,
            batch_linger: Duration::from_millis(2),
            queue_capacity: 32,
            frame_deadline: None,
            shedding: true,
            priority: true,
            priority_hold: 32,
            stream: SafeCrossConfig::default(),
            telemetry: false,
        }
    }
}

impl ServeConfig {
    /// Starts a builder seeded with the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }

    /// Checks every invariant the serving layer relies on.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`ServeError`].
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.shards == 0 {
            return Err(ServeError::NoShards);
        }
        if self.shards > MAX_SHARDS {
            return Err(ServeError::TooManyShards {
                shards: self.shards,
                max: MAX_SHARDS,
            });
        }
        if self.batch_max == 0 {
            return Err(ServeError::EmptyBatch);
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::EmptyQueue);
        }
        if self.queue_capacity > MAX_QUEUE_CAPACITY {
            return Err(ServeError::QueueTooLarge {
                capacity: self.queue_capacity,
                max: MAX_QUEUE_CAPACITY,
            });
        }
        if let Some(deadline) = self.frame_deadline {
            if self.batch_linger >= deadline {
                return Err(ServeError::LingerExceedsDeadline {
                    linger: self.batch_linger,
                    deadline,
                });
            }
        }
        self.stream.validate().map_err(ServeError::Stream)?;
        Ok(())
    }

    /// How many clips one shard may have in flight (staged or queued or
    /// stolen-but-unresolved) before it pauses frame preparation — the
    /// backpressure bound that turns a slow consumer into queue growth
    /// (and, with shedding on, into drops) instead of unbounded
    /// buffering between scheduling and classification.
    pub(crate) fn inflight_limit(&self) -> usize {
        4 * self.batch_max
    }
}

/// Fluent, validating constructor for [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Shard threads the fleet is partitioned across.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Maximum clips per micro-batch.
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.config.batch_max = batch_max;
        self
    }

    /// How long an under-full batch waits for compatible clips.
    pub fn batch_linger(mut self, linger: Duration) -> Self {
        self.config.batch_linger = linger;
        self
    }

    /// Bound of each stream's admission queue.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Maximum queued age before a frame is shed.
    pub fn frame_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.config.frame_deadline = deadline;
        self
    }

    /// Enables or disables load shedding.
    pub fn shedding(mut self, shedding: bool) -> Self {
        self.config.shedding = shedding;
        self
    }

    /// Enables or disables two-level priority scheduling.
    pub fn priority(mut self, priority: bool) -> Self {
        self.config.priority = priority;
        self
    }

    /// How many frames a stream stays high-priority after promotion.
    pub fn priority_hold(mut self, frames: u64) -> Self {
        self.config.priority_hold = frames;
        self
    }

    /// Per-stream session template.
    pub fn stream(mut self, stream: SafeCrossConfig) -> Self {
        self.config.stream = stream;
        self
    }

    /// Enables or disables the fleet telemetry registry.
    pub fn telemetry(mut self, telemetry: bool) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`ServeError`].
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Everything that can go wrong constructing or driving a fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The fleet would have no shards to run on.
    NoShards,
    /// The shard count exceeds [`MAX_SHARDS`].
    TooManyShards {
        /// The requested shard count.
        shards: usize,
        /// The enforced bound.
        max: usize,
    },
    /// Micro-batches must hold at least one clip.
    EmptyBatch,
    /// Admission queues must hold at least one frame.
    EmptyQueue,
    /// The admission queue bound exceeds [`MAX_QUEUE_CAPACITY`].
    QueueTooLarge {
        /// The requested capacity.
        capacity: usize,
        /// The enforced bound.
        max: usize,
    },
    /// `batch_linger` is at least as long as `frame_deadline`: every
    /// under-full batch would out-wait the frames it holds, so the
    /// scheduler would shed everything it lingers on.
    LingerExceedsDeadline {
        /// The configured linger.
        linger: Duration,
        /// The configured deadline it must stay under.
        deadline: Duration,
    },
    /// The per-stream session template failed validation.
    Stream(ConfigError),
    /// A stream id that no
    /// [`open_stream`](crate::FleetServer::open_stream) call returned.
    UnknownStream {
        /// The offending id.
        stream: usize,
        /// How many streams exist.
        streams: usize,
    },
    /// Models must all be registered before the first stream is opened,
    /// so every session sees the same scene set in the same order.
    ModelAfterStream,
    /// A run was started with no registered models.
    NoModels,
    /// A run was started with no streams, or with a feed count that
    /// does not match the stream count.
    FeedMismatch {
        /// Feeds handed to the run call.
        feeds: usize,
        /// Streams the fleet owns.
        streams: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NoShards => write!(f, "shard count must be at least 1"),
            ServeError::TooManyShards { shards, max } => {
                write!(f, "shard count {shards} exceeds the bound of {max} shard threads")
            }
            ServeError::EmptyBatch => write!(f, "batch_max must be at least 1"),
            ServeError::EmptyQueue => write!(f, "queue_capacity must be at least 1"),
            ServeError::QueueTooLarge { capacity, max } => {
                write!(f, "queue_capacity {capacity} exceeds the bound of {max} frames")
            }
            ServeError::LingerExceedsDeadline { linger, deadline } => write!(
                f,
                "batch_linger ({linger:?}) must be shorter than frame_deadline \
                 ({deadline:?}), or every lingered frame would age out"
            ),
            ServeError::Stream(e) => write!(f, "invalid per-stream configuration: {e}"),
            ServeError::UnknownStream { stream, streams } => {
                write!(f, "unknown stream id {stream} (fleet has {streams} streams)")
            }
            ServeError::ModelAfterStream => write!(
                f,
                "register every shared model before opening streams, so all sessions \
                 see the same scene set"
            ),
            ServeError::NoModels => write!(f, "register at least one model before running"),
            ServeError::FeedMismatch { feeds, streams } => {
                write!(f, "got {feeds} feeds for {streams} streams")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates() {
        assert!(ServeConfig::builder().build().is_ok());
        assert_eq!(
            ServeConfig::builder().shards(0).build().unwrap_err(),
            ServeError::NoShards
        );
        assert_eq!(
            ServeConfig::builder().shards(MAX_SHARDS + 1).build().unwrap_err(),
            ServeError::TooManyShards {
                shards: MAX_SHARDS + 1,
                max: MAX_SHARDS
            }
        );
        assert_eq!(
            ServeConfig::builder().batch_max(0).build().unwrap_err(),
            ServeError::EmptyBatch
        );
        assert_eq!(
            ServeConfig::builder().queue_capacity(0).build().unwrap_err(),
            ServeError::EmptyQueue
        );
        assert_eq!(
            ServeConfig::builder()
                .queue_capacity(MAX_QUEUE_CAPACITY + 1)
                .build()
                .unwrap_err(),
            ServeError::QueueTooLarge {
                capacity: MAX_QUEUE_CAPACITY + 1,
                max: MAX_QUEUE_CAPACITY
            }
        );
        assert_eq!(
            ServeConfig::builder()
                .batch_linger(Duration::from_millis(10))
                .frame_deadline(Some(Duration::from_millis(10)))
                .build()
                .unwrap_err(),
            ServeError::LingerExceedsDeadline {
                linger: Duration::from_millis(10),
                deadline: Duration::from_millis(10),
            }
        );
        assert!(ServeConfig::builder()
            .batch_linger(Duration::from_millis(2))
            .frame_deadline(Some(Duration::from_millis(40)))
            .build()
            .is_ok());
        let bad_stream = SafeCrossConfig {
            segment_frames: 0,
            ..SafeCrossConfig::default()
        };
        assert!(matches!(
            ServeConfig::builder().stream(bad_stream).build(),
            Err(ServeError::Stream(_))
        ));
    }

    #[test]
    fn errors_render() {
        let errors = [
            ServeError::NoShards,
            ServeError::TooManyShards { shards: 4096, max: MAX_SHARDS },
            ServeError::EmptyBatch,
            ServeError::EmptyQueue,
            ServeError::QueueTooLarge { capacity: 1 << 30, max: MAX_QUEUE_CAPACITY },
            ServeError::LingerExceedsDeadline {
                linger: Duration::from_millis(5),
                deadline: Duration::from_millis(5),
            },
            ServeError::UnknownStream { stream: 9, streams: 2 },
            ServeError::ModelAfterStream,
            ServeError::NoModels,
            ServeError::FeedMismatch { feeds: 1, streams: 2 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
