//! Telemetry wiring for the serving layer.
//!
//! Everything funnels into one `safecross-telemetry` [`Registry`] so a
//! fleet exports through the same snapshot machinery as a standalone
//! system. Handles are fetched once at setup time and updated lock-free
//! on the serving hot path.

use safecross_telemetry::{Counter, Gauge, Histogram, Registry};

/// Fleet-wide instrument handles.
#[derive(Debug, Clone)]
pub(crate) struct FleetMetrics {
    /// Frames accepted into an admission queue (`serve.admitted`).
    pub admitted: Counter,
    /// Frames whose outcome was delivered (`serve.completed`).
    pub completed: Counter,
    /// Frames dropped on admission to a full queue (`serve.shed_overflow`).
    pub shed_overflow: Counter,
    /// Frames shed for exceeding the age deadline (`serve.shed_stale`).
    pub shed_stale: Counter,
    /// End-to-end admission-to-completion latency
    /// (`serve.frame_age_ms`).
    pub frame_age_ms: Histogram,
    /// Dispatched micro-batch sizes, in clips (`serve.batch_size`).
    pub batch_size: Histogram,
    /// Micro-batches dispatched across all shards (`serve.batches`).
    pub batches: Counter,
    /// Batches a shard executed out of *another* shard's queue
    /// (`serve.steals`). High steal counts mean the stream→shard
    /// partition is skewed and work-stealing is doing its job.
    pub steals: Counter,
    /// Injected shard-worker deaths — simulated crashes a chaos
    /// [`FaultHook`](crate::FaultHook) forced on a shard's compute
    /// state (`serve.worker_deaths`). Zero outside chaos runs.
    pub worker_deaths: Counter,
    /// Continual-learning challenger activations a shard applied
    /// through a session's model-binding path (`serve.promotions`).
    pub promotions: Counter,
    /// Challenger activations the switcher rejected (synthetic OOM or
    /// other switch failure) and rolled back to the incumbent
    /// (`serve.promotion_rollbacks`).
    pub promotion_rollbacks: Counter,
}

impl FleetMetrics {
    pub(crate) fn new(registry: &Registry) -> Self {
        FleetMetrics {
            admitted: registry.counter("serve.admitted"),
            completed: registry.counter("serve.completed"),
            shed_overflow: registry.counter("serve.shed_overflow"),
            shed_stale: registry.counter("serve.shed_stale"),
            frame_age_ms: registry.histogram("serve.frame_age_ms"),
            batch_size: registry.histogram("serve.batch_size"),
            batches: registry.counter("serve.batches"),
            steals: registry.counter("serve.steals"),
            worker_deaths: registry.counter("serve.worker_deaths"),
            promotions: registry.counter("serve.promotions"),
            promotion_rollbacks: registry.counter("serve.promotion_rollbacks"),
        }
    }
}

/// Per-shard instrument handles (`serve.shard<N>.*`), created at run
/// start by each shard thread.
#[derive(Debug, Clone)]
pub(crate) struct ShardMetrics {
    /// Micro-batches this shard executed (own plus stolen).
    pub batches: Counter,
    /// Of those, batches stolen from another shard's queue.
    pub steals: Counter,
}

impl ShardMetrics {
    pub(crate) fn new(registry: &Registry, shard: usize) -> Self {
        if !registry.is_enabled() {
            return ShardMetrics {
                batches: registry.counter("serve.shard.disabled"),
                steals: registry.counter("serve.shard.disabled"),
            };
        }
        ShardMetrics {
            batches: registry.counter(&format!("serve.shard{shard}.batches")),
            steals: registry.counter(&format!("serve.shard{shard}.steals")),
        }
    }
}

/// Per-stream instrument handles (`serve.stream<N>.*`).
///
/// When the registry is disabled every stream shares one inert handle
/// set under a single name: a disabled registry still interns every
/// distinct instrument name it is asked for, and at 10k streams five
/// named instruments per stream would be measurable dead weight.
#[derive(Debug, Clone)]
pub(crate) struct StreamMetrics {
    /// Current admission-queue depth.
    pub queue_depth: Gauge,
    /// High-water mark of the admission queue.
    pub queue_high_water: Gauge,
    /// Frames this stream lost to queue overflow.
    pub shed_overflow: Counter,
    /// Frames this stream lost to the age deadline.
    pub shed_stale: Counter,
    /// Outcomes delivered for this stream.
    pub completed: Counter,
}

impl StreamMetrics {
    pub(crate) fn new(registry: &Registry, stream: usize) -> Self {
        if !registry.is_enabled() {
            return StreamMetrics {
                queue_depth: registry.gauge("serve.stream.disabled"),
                queue_high_water: registry.gauge("serve.stream.disabled"),
                shed_overflow: registry.counter("serve.stream.disabled"),
                shed_stale: registry.counter("serve.stream.disabled"),
                completed: registry.counter("serve.stream.disabled"),
            };
        }
        let name = |suffix: &str| format!("serve.stream{stream}.{suffix}");
        StreamMetrics {
            queue_depth: registry.gauge(&name("queue_depth")),
            queue_high_water: registry.gauge(&name("queue_high_water")),
            shed_overflow: registry.counter(&name("shed_overflow")),
            shed_stale: registry.counter(&name("shed_stale")),
            completed: registry.counter(&name("completed")),
        }
    }
}
