//! Per-stream serving state.
//!
//! A [`StreamSession`] owns one intersection's complete SafeCross state
//! — scene detector, VP background model, segment buffer, and model
//! switcher — plus the serving bookkeeping wrapped around it: the
//! bounded admission queue, the completion reorder buffer, and the
//! priority/shedding counters. A session is an inert state machine: it
//! owns no thread and never blocks. All mutation of one session happens
//! on its owning shard's thread, so per-stream frame order (and
//! therefore verdict and switch-log bit-identity with a standalone run)
//! is structural, not locked.

use crate::metrics::{FleetMetrics, StreamMetrics};
use safecross::{FramePrep, SafeCross, Verdict};
use safecross_tensor::Precision;
use safecross_trafficsim::Weather;
use safecross_vision::GrayFrame;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies one stream within its fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub(crate) usize);

impl StreamId {
    /// The stream's index in fleet order (the order of
    /// [`open_stream`](crate::FleetServer::open_stream) calls).
    pub fn index(&self) -> usize {
        self.0
    }

    /// The id of the `index`-th stream opened on a fleet. Fleet
    /// accessors reject indices no `open_stream` call ever returned.
    pub fn from_index(index: usize) -> Self {
        StreamId(index)
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// Serving counters of one stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Frames the feed offered.
    pub fed: u64,
    /// Frames accepted into the admission queue.
    pub admitted: u64,
    /// Frames dropped on admission because the queue was full
    /// (drop-oldest: the *evicted* frames are counted here).
    pub shed_overflow: u64,
    /// Frames shed at scheduling time for exceeding the age deadline.
    pub shed_stale: u64,
    /// Frames whose outcome was delivered.
    pub completed: u64,
    /// Verdicts that survived the confidence gate.
    pub verdicts: u64,
    /// Of those, verdicts that warned against turning.
    pub danger_verdicts: u64,
    /// High-water mark of the admission queue.
    pub queue_peak: u64,
}

impl StreamStats {
    /// Total frames this stream lost to load shedding.
    pub fn shed(&self) -> u64 {
        self.shed_overflow + self.shed_stale
    }

    /// Counter-wise difference against an earlier snapshot (peaks are
    /// carried over, not subtracted).
    pub(crate) fn delta(&self, earlier: &StreamStats) -> StreamStats {
        StreamStats {
            fed: self.fed - earlier.fed,
            admitted: self.admitted - earlier.admitted,
            shed_overflow: self.shed_overflow - earlier.shed_overflow,
            shed_stale: self.shed_stale - earlier.shed_stale,
            completed: self.completed - earlier.completed,
            verdicts: self.verdicts - earlier.verdicts,
            danger_verdicts: self.danger_verdicts - earlier.danger_verdicts,
            queue_peak: self.queue_peak,
        }
    }
}

/// One frame waiting in the admission queue.
pub(crate) struct PendingFrame {
    pub frame: GrayFrame,
    pub admitted: Instant,
}

/// A prepared frame parked until its classification arrives.
struct ParkedFrame {
    prep: FramePrep,
    admitted: Instant,
}

pub(crate) struct StreamSession {
    pub inner: SafeCross,
    queue: VecDeque<PendingFrame>,
    /// Sequence number the next prepared frame will get.
    prepared: u64,
    /// Sequence number of the next frame to complete, in order.
    next_complete: u64,
    /// Prepared frames awaiting completion, keyed by sequence.
    parked: BTreeMap<u64, ParkedFrame>,
    /// Raw classification results awaiting in-order delivery.
    resolved: BTreeMap<u64, Option<Verdict>>,
    /// Clips dispatched to the executor and not yet resolved.
    pub inflight: usize,
    /// The stream is high-priority until its prepared-frame counter
    /// reaches this value.
    hot_until: u64,
    /// The precision this stream's clips classify at (fixed at open
    /// time via [`crate::StreamSpec::with_precision`]). Rides on every
    /// dispatched [`crate::executor::ClipJob`] and so keys the batch
    /// grouping: int8 and f32 streams never share a stacked forward.
    pub precision: Precision,
    pub stats: StreamStats,
    metrics: StreamMetrics,
}

impl StreamSession {
    pub(crate) fn new(inner: SafeCross, metrics: StreamMetrics, precision: Precision) -> Self {
        StreamSession {
            inner,
            queue: VecDeque::new(),
            prepared: 0,
            next_complete: 0,
            parked: BTreeMap::new(),
            resolved: BTreeMap::new(),
            inflight: 0,
            hot_until: 0,
            precision,
            stats: StreamStats::default(),
            metrics,
        }
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The checkpoint this session's frames for `weather` classify
    /// under: the weather label until a continual-learning promotion
    /// rebinds the scene to an adapted challenger. Drives batch
    /// grouping, so a promoted stream never shares a stacked forward
    /// with streams still on the base checkpoint.
    pub(crate) fn model_for(&self, weather: Weather) -> Arc<str> {
        self.inner
            .scene_model_name(weather)
            .unwrap_or_else(|| Arc::from(weather.label()))
    }

    /// Whether this stream is currently scheduled at high priority: a
    /// danger verdict or model switch promoted it for the next
    /// `priority_hold` frames.
    pub(crate) fn is_hot(&self) -> bool {
        self.prepared < self.hot_until
    }

    /// Accepts one frame from the feed. With shedding enabled and the
    /// queue full, the *oldest* queued frame is evicted first — a
    /// real-time feed is always better served by its freshest data.
    pub(crate) fn admit(
        &mut self,
        frame: GrayFrame,
        shedding: bool,
        capacity: usize,
        fleet: &FleetMetrics,
    ) {
        self.stats.fed += 1;
        if shedding && self.queue.len() >= capacity {
            self.queue.pop_front();
            self.stats.shed_overflow += 1;
            self.metrics.shed_overflow.inc();
            fleet.shed_overflow.inc();
        }
        self.queue.push_back(PendingFrame {
            frame,
            admitted: Instant::now(),
        });
        self.stats.admitted += 1;
        fleet.admitted.inc();
        let depth = self.queue.len() as u64;
        self.stats.queue_peak = self.stats.queue_peak.max(depth);
        self.metrics.queue_depth.set(depth as f64);
        self.metrics.queue_high_water.set_max(depth as f64);
    }

    /// Pops the next frame to process, shedding any that outlived the
    /// age deadline — a stale frame is counted and dropped, never
    /// processed.
    pub(crate) fn pop_fresh(
        &mut self,
        deadline: Option<Duration>,
        shedding: bool,
        fleet: &FleetMetrics,
    ) -> Option<PendingFrame> {
        while let Some(pending) = self.queue.pop_front() {
            if shedding {
                if let Some(deadline) = deadline {
                    if pending.admitted.elapsed() > deadline {
                        self.stats.shed_stale += 1;
                        self.metrics.shed_stale.inc();
                        fleet.shed_stale.inc();
                        continue;
                    }
                }
            }
            self.metrics.queue_depth.set(self.queue.len() as f64);
            return Some(pending);
        }
        self.metrics.queue_depth.set(0.0);
        None
    }

    /// Runs the pre-classification half of the frame path and assigns
    /// the frame its completion sequence number. A scene switch
    /// promotes the stream to high priority for the next `hold`
    /// frames.
    pub(crate) fn prepare(&mut self, frame: &GrayFrame, hold: u64) -> (u64, FramePrep) {
        let seq = self.prepared;
        self.prepared += 1;
        let prep = self.inner.prepare_frame(frame);
        if prep.scene_switch.is_some() {
            self.hot_until = self.hot_until.max(seq + 1 + hold);
        }
        (seq, prep)
    }

    /// Parks a prepared frame until its raw verdict arrives.
    pub(crate) fn park(&mut self, seq: u64, prep: FramePrep, admitted: Instant) {
        self.parked.insert(seq, ParkedFrame { prep, admitted });
    }

    /// Records the raw classification result for sequence `seq`.
    pub(crate) fn resolve(&mut self, seq: u64, raw: Option<Verdict>) {
        self.resolved.insert(seq, raw);
    }

    /// Delivers every contiguously-completed frame, in sequence order,
    /// through the session's own `complete_frame` — so verdict
    /// recording order is identical to a standalone sequential run no
    /// matter how the executor interleaved the batches. Danger verdicts
    /// promote the stream for `hold` further frames. Observed
    /// admission-to-completion ages (ms) are appended to `ages`.
    pub(crate) fn deliver_ready(
        &mut self,
        hold: u64,
        fleet: &FleetMetrics,
        ages: &mut Vec<f64>,
    ) {
        while let Some(raw) = self.resolved.remove(&self.next_complete) {
            let parked = self
                .parked
                .remove(&self.next_complete)
                .expect("resolved frame was never parked");
            let outcome = self.inner.complete_frame(parked.prep, raw);
            if let Some(v) = outcome.verdict {
                self.stats.verdicts += 1;
                if v.is_warning() {
                    self.stats.danger_verdicts += 1;
                    self.hot_until = self.hot_until.max(self.prepared + hold);
                }
            }
            let age_ms = parked.admitted.elapsed().as_secs_f64() * 1e3;
            ages.push(age_ms);
            fleet.frame_age_ms.observe_ms(age_ms);
            fleet.completed.inc();
            self.metrics.completed.inc();
            self.stats.completed += 1;
            self.next_complete += 1;
        }
    }

    /// True when no prepared frame is awaiting delivery.
    pub(crate) fn is_settled(&self) -> bool {
        self.parked.is_empty() && self.resolved.is_empty() && self.inflight == 0
    }
}
