//! safecross-serve: a multi-intersection serving front for SafeCross.
//!
//! A city deploys one SafeCross pipeline per signalized intersection;
//! running each on a dedicated machine wastes most of an accelerator.
//! This crate multiplexes N independent intersection streams over a
//! shard-per-core runtime without giving up the property the rest of
//! the workspace is built around: **per-stream results are
//! bit-identical to a standalone sequential run.**
//!
//! The layer cake, bottom to top:
//!
//! - session layer (internal) — one stream's full SafeCross state
//!   (scene voting, VP background model, segment buffer, model
//!   switcher) plus its admission queue and completion reorder buffer.
//!   A session is an inert state machine: no thread, no lock, no
//!   blocking call — which is what lets one process hold 10k of them.
//! - sources ([`FrameSource`]) — every feed shape (pre-rendered
//!   vectors, paced live stand-ins, replay-timed, arbitrary iterators)
//!   behind one non-blocking poll contract, so `run`, `run_reference`,
//!   and trace replay share a single ingestion signature.
//! - shards (internal) — streams are partitioned `i % shards` across
//!   [`ServeConfig::shards`] threads. Each shard owns its partition's
//!   admission, shedding, priority scheduling, and same-(checkpoint,
//!   precision) micro-batching, executes batches as one stacked forward
//!   pass
//!   (eval-mode layers are row-independent, so batching never changes
//!   a verdict bit), and steals batches from other shards' queues when
//!   its own runs dry. Completions route back to the owning shard, so
//!   per-stream sequencing stays structural.
//! - [`FleetServer`] — [`FleetServer::open_stream`] hands out typed
//!   [`StreamHandle`]s; admission control (bounded per-stream queues,
//!   drop-oldest), load shedding (frame-age deadline), and two-level
//!   priority scheduling (danger verdicts and model switches jump the
//!   line) keep one stalled or flooded stream from starving the rest.
//!
//! # Quick start
//!
//! ```
//! use safecross::SafeCrossConfig;
//! use safecross_serve::{paced_feed, FleetServer, ServeConfig, StreamSpec};
//! use safecross_tensor::TensorRng;
//! use safecross_trafficsim::Weather;
//! use safecross_videoclass::SlowFastLite;
//! use safecross_vision::GrayFrame;
//! use std::time::Duration;
//!
//! let config = ServeConfig::builder()
//!     .shards(2)
//!     .shedding(false) // lossless: every frame completes
//!     .stream(SafeCrossConfig {
//!         min_confidence: 0.0,
//!         ..SafeCrossConfig::default()
//!     })
//!     .build()?;
//! let mut fleet = FleetServer::new(config)?;
//! let mut rng = TensorRng::seed_from(7);
//! fleet.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng))?;
//! let cams: Vec<_> = (0..4)
//!     .map(|_| fleet.open_stream(StreamSpec::new()))
//!     .collect::<Result<_, _>>()?;
//!
//! let feeds = (0..4)
//!     .map(|i| {
//!         let frames: Vec<GrayFrame> = (0..40)
//!             .map(|t| GrayFrame::filled(320, 240, ((i * 40 + t) % 251) as u8))
//!             .collect();
//!         paced_feed(frames, Duration::ZERO)
//!     })
//!     .collect();
//! let report = fleet.run(feeds)?;
//! assert_eq!(report.completed, 4 * 40);
//! for cam in &cams {
//!     assert!(cam.stats(&fleet).completed > 0);
//! }
//! println!("{report}");
//! # Ok::<(), safecross_serve::ServeError>(())
//! ```
//!
//! # Continual learning
//!
//! A [`LearnHook`] installed via [`FleetServer::set_learn_hook`] rides
//! the verdict path of every sharded run: each classified clip is
//! offered to the hook for harvesting, and challenger checkpoints the
//! learner promotes are activated by the owning shard between frames
//! (see the `safecross-learn` crate for the concrete
//! harvester/trainer/canary subsystem).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapt;
mod config;
mod executor;
mod fault;
mod metrics;
mod server;
mod session;
mod source;

pub use adapt::{HarvestSample, LearnHook, Promotion, PromotionOutcome};
pub use config::{ServeConfig, ServeConfigBuilder, ServeError, MAX_QUEUE_CAPACITY, MAX_SHARDS};
pub use fault::{FaultHook, WorkerAction};
pub use server::{
    AgeProfile, FleetReport, FleetServer, StreamHandle, StreamReport, StreamSpec,
};
pub use safecross_tensor::Precision;
pub use session::{StreamId, StreamStats};
pub use source::{
    paced_feed, BoxedSource, FrameFeed, FrameSource, IntoFrameSource, IterSource, PacedSource,
    SourcePoll, TimedSource, VecSource,
};
