//! safecross-serve: a multi-intersection serving front for SafeCross.
//!
//! A city deploys one SafeCross pipeline per signalized intersection;
//! running each on a dedicated machine wastes most of an accelerator.
//! This crate multiplexes N independent intersection streams over a
//! shared inference pool without giving up the property the rest of
//! the workspace is built around: **per-stream results are
//! bit-identical to a standalone sequential run.**
//!
//! The layer cake, bottom to top:
//!
//! - session layer (internal) — one stream's full SafeCross state
//!   (scene voting, VP background model, segment buffer, model
//!   switcher) plus its admission queue and completion reorder buffer.
//!   Every session mutates only on the scheduler thread, so per-stream
//!   sequencing is structural.
//! - executor (internal) — a batcher that groups compatible clips
//!   (same weather model) into micro-batches under a size cap and
//!   linger deadline, and a worker pool running each micro-batch as one
//!   stacked forward pass. Eval-mode layers are row-independent, so
//!   batching never changes a verdict bit.
//! - [`FleetServer`] — admission control (bounded per-stream queues,
//!   drop-oldest), load shedding (frame-age deadline), and two-level
//!   priority scheduling (danger verdicts and model switches jump the
//!   line). One stalled or flooded stream never starves the rest.
//!
//! # Quick start
//!
//! ```
//! use safecross::SafeCrossConfig;
//! use safecross_serve::{paced_feed, FleetServer, ServeConfig};
//! use safecross_tensor::TensorRng;
//! use safecross_trafficsim::Weather;
//! use safecross_videoclass::SlowFastLite;
//! use safecross_vision::GrayFrame;
//! use std::time::Duration;
//!
//! let config = ServeConfig::builder()
//!     .workers(2)
//!     .shedding(false) // lossless: every frame completes
//!     .stream(SafeCrossConfig {
//!         min_confidence: 0.0,
//!         ..SafeCrossConfig::default()
//!     })
//!     .build()?;
//! let mut fleet = FleetServer::new(config)?;
//! let mut rng = TensorRng::seed_from(7);
//! fleet.register_model(Weather::Daytime, SlowFastLite::new(2, &mut rng))?;
//! let streams: Vec<_> = (0..4).map(|_| fleet.add_stream()).collect::<Result<_, _>>()?;
//!
//! let feeds = (0..4)
//!     .map(|i| {
//!         let frames: Vec<GrayFrame> = (0..40)
//!             .map(|t| GrayFrame::filled(320, 240, ((i * 40 + t) % 251) as u8))
//!             .collect();
//!         paced_feed(frames, Duration::ZERO)
//!     })
//!     .collect();
//! let report = fleet.run(feeds)?;
//! assert_eq!(report.completed, 4 * 40);
//! println!("{report}");
//! # Ok::<(), safecross_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod executor;
mod fault;
mod metrics;
mod server;
mod session;

pub use config::{ServeConfig, ServeConfigBuilder, ServeError};
pub use fault::{FaultHook, WorkerAction};
pub use server::{paced_feed, AgeProfile, FleetReport, FleetServer, FrameFeed, StreamReport};
pub use session::{StreamId, StreamStats};
