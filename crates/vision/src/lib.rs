//! # safecross-vision
//!
//! Classical computer-vision building blocks for the SafeCross
//! reproduction: grayscale frames, dynamic background subtraction,
//! mathematical morphology, frame differencing, sparse (Lucas–Kanade) and
//! dense (Horn–Schunck) optical flow, connected components, and the
//! paper's Fig. 3 pipeline that maps a raw surveillance frame into the
//! compact 2-D grid representation the video classifier consumes.
//!
//! Everything here operates on CPU-resident [`GrayFrame`]s and is fully
//! deterministic, which is what lets the detection-method comparison
//! (paper Table II / Fig. 8) run as an ordinary Criterion bench.
//!
//! ## Example
//!
//! ```
//! use safecross_vision::{BackgroundSubtractor, GrayFrame};
//!
//! let mut bgs = BackgroundSubtractor::new(8, 8, 0.05, 30.0);
//! let empty = GrayFrame::filled(8, 8, 100);
//! for _ in 0..20 { bgs.apply(&empty); }
//! let mut scene = empty.clone();
//! scene.set(3, 3, 250); // a "vehicle" appears
//! let mask = bgs.apply(&scene);
//! assert!(mask.get(3, 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bgs;
mod components;
mod flow;
mod frame;
mod framediff;
mod median;
mod morphology;
mod pipeline;

pub use bgs::BackgroundSubtractor;
pub use components::{connected_components, Component};
pub use flow::{
    dense_flow, shi_tomasi_corners, sparse_flow, DenseFlowParams, FlowField, FlowVector,
    SparseFlowParams,
};
pub use frame::{BinaryFrame, GrayFrame};
pub use framediff::frame_difference;
pub use median::median_filter;
pub use morphology::{dilate, erode, opening};
pub use pipeline::{GridMapper, PreprocessConfig, Preprocessor, SegmentBuffer};

#[cfg(test)]
mod proptests;
