//! Optical flow: Shi–Tomasi corners + Lucas–Kanade (sparse) and
//! Horn–Schunck (dense).
//!
//! These are the two optical-flow baselines of the paper's detection
//! shoot-out (Table II / Fig. 8). Sparse flow only "sees" motion at
//! trackable corners — which, on noisy low-quality footage, often belong
//! to the environment rather than to vehicles. Dense flow estimates
//! motion everywhere but pays a large iterative-solver cost.

use crate::GrayFrame;

/// Motion estimate at a single tracked point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowVector {
    /// Point x coordinate (pixels).
    pub x: usize,
    /// Point y coordinate (pixels).
    pub y: usize,
    /// Horizontal displacement (pixels/frame).
    pub u: f32,
    /// Vertical displacement (pixels/frame).
    pub v: f32,
}

impl FlowVector {
    /// Motion magnitude in pixels/frame.
    pub fn magnitude(&self) -> f32 {
        (self.u * self.u + self.v * self.v).sqrt()
    }
}

/// A dense per-pixel flow field.
#[derive(Debug, Clone)]
pub struct FlowField {
    width: usize,
    height: usize,
    u: Vec<f32>,
    v: Vec<f32>,
}

impl FlowField {
    /// Field width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Field height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Horizontal flow at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn u_at(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height);
        self.u[y * self.width + x]
    }

    /// Vertical flow at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn v_at(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height);
        self.v[y * self.width + x]
    }

    /// Flow magnitude at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn magnitude_at(&self, x: usize, y: usize) -> f32 {
        let (u, v) = (self.u_at(x, y), self.v_at(x, y));
        (u * u + v * v).sqrt()
    }

    /// Mean flow magnitude inside a rectangle (clamped to bounds).
    pub fn mean_magnitude_in(&self, x0: usize, y0: usize, w: usize, h: usize) -> f32 {
        let x1 = (x0 + w).min(self.width);
        let y1 = (y0 + h).min(self.height);
        if x0 >= x1 || y0 >= y1 {
            return 0.0;
        }
        let mut sum = 0.0;
        for y in y0..y1 {
            for x in x0..x1 {
                sum += self.magnitude_at(x, y);
            }
        }
        sum / ((x1 - x0) * (y1 - y0)) as f32
    }
}

/// Parameters for [`sparse_flow`].
#[derive(Debug, Clone, Copy)]
pub struct SparseFlowParams {
    /// Maximum number of corners to track.
    pub max_corners: usize,
    /// Minimum Shi–Tomasi eigenvalue for a corner to be accepted.
    pub quality_threshold: f32,
    /// Half-width of the Lucas–Kanade window.
    pub window_radius: usize,
}

impl Default for SparseFlowParams {
    fn default() -> Self {
        SparseFlowParams {
            max_corners: 64,
            quality_threshold: 500.0,
            window_radius: 3,
        }
    }
}

/// Parameters for [`dense_flow`].
#[derive(Debug, Clone, Copy)]
pub struct DenseFlowParams {
    /// Horn–Schunck smoothness weight.
    pub alpha: f32,
    /// Number of Jacobi iterations (the dominant cost).
    pub iterations: usize,
}

impl Default for DenseFlowParams {
    fn default() -> Self {
        DenseFlowParams {
            alpha: 1.0,
            iterations: 60,
        }
    }
}

fn gradients(frame: &GrayFrame) -> (Vec<f32>, Vec<f32>) {
    let (w, h) = (frame.width(), frame.height());
    let mut ix = vec![0.0f32; w * h];
    let mut iy = vec![0.0f32; w * h];
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            ix[y * w + x] = (frame.at(x + 1, y) as f32 - frame.at(x - 1, y) as f32) * 0.5;
            iy[y * w + x] = (frame.at(x, y + 1) as f32 - frame.at(x, y - 1) as f32) * 0.5;
        }
    }
    (ix, iy)
}

/// Shi–Tomasi "good features to track": returns up to `max_corners`
/// corner locations ranked by the minimum eigenvalue of the local
/// structure tensor, with simple non-maximum suppression.
///
/// # Panics
///
/// Panics if the frame is smaller than the corner window (5x5).
pub fn shi_tomasi_corners(
    frame: &GrayFrame,
    max_corners: usize,
    quality_threshold: f32,
) -> Vec<(usize, usize)> {
    let (w, h) = (frame.width(), frame.height());
    assert!(w >= 5 && h >= 5, "frame too small for corner detection");
    let (ix, iy) = gradients(frame);
    let r = 2usize;
    let mut scores = vec![0.0f32; w * h];
    for y in r..h - r {
        for x in r..w - r {
            let (mut sxx, mut sxy, mut syy) = (0.0f32, 0.0f32, 0.0f32);
            for dy in 0..=2 * r {
                for dx in 0..=2 * r {
                    let idx = (y + dy - r) * w + (x + dx - r);
                    sxx += ix[idx] * ix[idx];
                    sxy += ix[idx] * iy[idx];
                    syy += iy[idx] * iy[idx];
                }
            }
            // Minimum eigenvalue of [[sxx, sxy], [sxy, syy]].
            let trace = sxx + syy;
            let det = sxx * syy - sxy * sxy;
            let disc = (trace * trace * 0.25 - det).max(0.0).sqrt();
            scores[y * w + x] = trace * 0.5 - disc;
        }
    }
    // Rank candidates and apply non-max suppression.
    let mut candidates: Vec<(usize, usize, f32)> = (0..w * h)
        .filter(|&i| scores[i] > quality_threshold)
        .map(|i| (i % w, i / w, scores[i]))
        .collect();
    candidates.sort_by(|a, b| b.2.total_cmp(&a.2));
    let mut picked: Vec<(usize, usize)> = Vec::new();
    let min_dist2 = 9isize; // 3px separation
    for (x, y, _) in candidates {
        if picked.len() >= max_corners {
            break;
        }
        let ok = picked.iter().all(|&(px, py)| {
            let dx = px as isize - x as isize;
            let dy = py as isize - y as isize;
            dx * dx + dy * dy >= min_dist2
        });
        if ok {
            picked.push((x, y));
        }
    }
    picked
}

/// Sparse Lucas–Kanade flow at Shi–Tomasi corners of `prev`.
///
/// Solves the 2x2 normal equations of the brightness-constancy constraint
/// inside a window around each corner. Single pyramid level — adequate
/// for frame-rate motion, and faithful to the method's failure mode on
/// noisy footage (corners latch onto static background texture).
///
/// # Panics
///
/// Panics if the frames differ in size or are smaller than 5x5.
pub fn sparse_flow(
    prev: &GrayFrame,
    curr: &GrayFrame,
    params: &SparseFlowParams,
) -> Vec<FlowVector> {
    assert_eq!(prev.width(), curr.width(), "frame width mismatch");
    assert_eq!(prev.height(), curr.height(), "frame height mismatch");
    let corners = shi_tomasi_corners(prev, params.max_corners, params.quality_threshold);
    let (w, h) = (prev.width(), prev.height());
    let (ix, iy) = gradients(prev);
    let r = params.window_radius as isize;
    let mut out = Vec::with_capacity(corners.len());
    for (cx, cy) in corners {
        let (mut sxx, mut sxy, mut syy) = (0.0f32, 0.0f32, 0.0f32);
        let (mut sxt, mut syt) = (0.0f32, 0.0f32);
        for dy in -r..=r {
            for dx in -r..=r {
                let nx = cx as isize + dx;
                let ny = cy as isize + dy;
                if nx < 1 || ny < 1 || nx >= w as isize - 1 || ny >= h as isize - 1 {
                    continue;
                }
                let idx = ny as usize * w + nx as usize;
                let it = curr.at(nx as usize, ny as usize) as f32
                    - prev.at(nx as usize, ny as usize) as f32;
                sxx += ix[idx] * ix[idx];
                sxy += ix[idx] * iy[idx];
                syy += iy[idx] * iy[idx];
                sxt += ix[idx] * it;
                syt += iy[idx] * it;
            }
        }
        let det = sxx * syy - sxy * sxy;
        if det.abs() < 1e-3 {
            continue; // aperture problem: skip untrackable point
        }
        let u = (-syy * sxt + sxy * syt) / det;
        let v = (sxy * sxt - sxx * syt) / det;
        out.push(FlowVector { x: cx, y: cy, u, v });
    }
    out
}

/// Dense Horn–Schunck optical flow.
///
/// Minimises the global energy `|∇I·w + I_t|² + α²(|∇u|² + |∇v|²)` with
/// Jacobi iterations; cost scales with `width * height * iterations`,
/// which is why this method lands two orders of magnitude above
/// background subtraction in Table II.
///
/// # Panics
///
/// Panics if the frames differ in size.
pub fn dense_flow(prev: &GrayFrame, curr: &GrayFrame, params: &DenseFlowParams) -> FlowField {
    assert_eq!(prev.width(), curr.width(), "frame width mismatch");
    assert_eq!(prev.height(), curr.height(), "frame height mismatch");
    let (w, h) = (prev.width(), prev.height());
    let (ix, iy) = gradients(prev);
    let it: Vec<f32> = prev
        .pixels()
        .iter()
        .zip(curr.pixels())
        .map(|(&a, &b)| b as f32 - a as f32)
        .collect();
    let mut u = vec![0.0f32; w * h];
    let mut v = vec![0.0f32; w * h];
    let a2 = params.alpha * params.alpha;
    let avg = |f: &[f32], x: usize, y: usize| -> f32 {
        let mut sum = 0.0;
        let mut n = 0.0;
        for (dx, dy) in [(-1isize, 0isize), (1, 0), (0, -1), (0, 1)] {
            let nx = x as isize + dx;
            let ny = y as isize + dy;
            if nx >= 0 && ny >= 0 && nx < w as isize && ny < h as isize {
                sum += f[ny as usize * w + nx as usize];
                n += 1.0;
            }
        }
        sum / n
    };
    for _ in 0..params.iterations {
        let mut nu = vec![0.0f32; w * h];
        let mut nv = vec![0.0f32; w * h];
        for y in 0..h {
            for x in 0..w {
                let idx = y * w + x;
                let ubar = avg(&u, x, y);
                let vbar = avg(&v, x, y);
                let num = ix[idx] * ubar + iy[idx] * vbar + it[idx];
                let den = a2 + ix[idx] * ix[idx] + iy[idx] * iy[idx];
                nu[idx] = ubar - ix[idx] * num / den;
                nv[idx] = vbar - iy[idx] * num / den;
            }
        }
        u = nu;
        v = nv;
    }
    FlowField {
        width: w,
        height: h,
        u,
        v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bright square on a dark background at `(x0, y0)`.
    fn square_frame(w: usize, h: usize, x0: usize, y0: usize, side: usize) -> GrayFrame {
        let mut f = GrayFrame::filled(w, h, 20);
        for y in y0..(y0 + side).min(h) {
            for x in x0..(x0 + side).min(w) {
                f.set(x, y, 220);
            }
        }
        f
    }

    #[test]
    fn corners_found_on_square() {
        let f = square_frame(20, 20, 6, 6, 8);
        let corners = shi_tomasi_corners(&f, 10, 100.0);
        assert!(!corners.is_empty());
        // All corners lie on/near the square's boundary.
        for (x, y) in corners {
            assert!((4..=16).contains(&x) && (4..=16).contains(&y), "({x},{y})");
        }
    }

    #[test]
    fn no_corners_on_flat_frame() {
        let f = GrayFrame::filled(20, 20, 128);
        assert!(shi_tomasi_corners(&f, 10, 100.0).is_empty());
    }

    #[test]
    fn sparse_flow_tracks_translation() {
        let a = square_frame(24, 24, 8, 8, 6);
        let b = square_frame(24, 24, 9, 8, 6); // moved +1 in x
        let flows = sparse_flow(&a, &b, &SparseFlowParams::default());
        assert!(!flows.is_empty());
        let mean_u: f32 = flows.iter().map(|f| f.u).sum::<f32>() / flows.len() as f32;
        let mean_v: f32 = flows.iter().map(|f| f.v).sum::<f32>() / flows.len() as f32;
        assert!(mean_u > 0.3, "mean u {mean_u}");
        assert!(mean_v.abs() < 0.3, "mean v {mean_v}");
    }

    #[test]
    fn dense_flow_concentrates_on_mover() {
        let a = square_frame(24, 24, 8, 8, 6);
        let b = square_frame(24, 24, 9, 8, 6);
        let field = dense_flow(&a, &b, &DenseFlowParams::default());
        let moving = field.mean_magnitude_in(7, 7, 9, 8);
        let still = field.mean_magnitude_in(0, 0, 5, 5);
        assert!(moving > 4.0 * still + 1e-3, "moving {moving} vs still {still}");
    }

    #[test]
    fn dense_flow_zero_for_identical_frames() {
        let a = square_frame(16, 16, 4, 4, 5);
        let field = dense_flow(&a, &a, &DenseFlowParams::default());
        assert!(field.mean_magnitude_in(0, 0, 16, 16) < 1e-4);
    }

    #[test]
    fn flow_vector_magnitude() {
        let f = FlowVector { x: 0, y: 0, u: 3.0, v: 4.0 };
        assert_eq!(f.magnitude(), 5.0);
    }

    #[test]
    fn dense_iterations_scale_cost_not_shape() {
        // More iterations must not change the qualitative answer.
        let a = square_frame(20, 20, 6, 6, 5);
        let b = square_frame(20, 20, 7, 6, 5);
        let cheap = dense_flow(&a, &b, &DenseFlowParams { alpha: 1.0, iterations: 10 });
        let costly = dense_flow(&a, &b, &DenseFlowParams { alpha: 1.0, iterations: 80 });
        assert!(cheap.mean_magnitude_in(5, 5, 8, 7) > 0.0);
        assert!(costly.mean_magnitude_in(5, 5, 8, 7) > 0.0);
    }
}
