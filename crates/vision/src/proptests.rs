//! Property-based tests on vision invariants.

use crate::{
    connected_components, dilate, erode, frame_difference, opening, BinaryFrame, GrayFrame,
    GridMapper, SegmentBuffer,
};
use proptest::prelude::*;
use safecross_tensor::Tensor;

fn arb_mask() -> impl Strategy<Value = BinaryFrame> {
    (3usize..12, 3usize..12).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<bool>(), w * h).prop_map(move |bits| {
            let mut m = BinaryFrame::new(w, h);
            for (i, b) in bits.into_iter().enumerate() {
                m.put(i % w, i / w, b);
            }
            m
        })
    })
}

fn arb_frame() -> impl Strategy<Value = GrayFrame> {
    (3usize..10, 3usize..10).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), w * h)
            .prop_map(move |px| GrayFrame::from_pixels(w, h, px))
    })
}

proptest! {
    #[test]
    fn erosion_is_anti_extensive(m in arb_mask()) {
        let e = erode(&m, 1);
        // Every set pixel of the erosion was set in the input.
        for y in 0..m.height() {
            for x in 0..m.width() {
                if e.get(x, y) {
                    prop_assert!(m.get(x, y));
                }
            }
        }
        prop_assert!(e.count() <= m.count());
    }

    #[test]
    fn dilation_is_extensive(m in arb_mask()) {
        let d = dilate(&m, 1);
        for y in 0..m.height() {
            for x in 0..m.width() {
                if m.get(x, y) {
                    prop_assert!(d.get(x, y));
                }
            }
        }
        prop_assert!(d.count() >= m.count());
    }

    #[test]
    fn opening_is_anti_extensive_and_idempotent(m in arb_mask()) {
        let o = opening(&m, 1);
        prop_assert!(o.count() <= m.count());
        prop_assert_eq!(opening(&o, 1), o);
    }

    #[test]
    fn morphology_is_monotone(m in arb_mask()) {
        // Removing pixels never grows the eroded result.
        let mut smaller = m.clone();
        'outer: for y in 0..m.height() {
            for x in 0..m.width() {
                if smaller.get(x, y) {
                    smaller.put(x, y, false);
                    break 'outer;
                }
            }
        }
        let e_big = erode(&m, 1);
        let e_small = erode(&smaller, 1);
        for y in 0..m.height() {
            for x in 0..m.width() {
                if e_small.get(x, y) {
                    prop_assert!(e_big.get(x, y));
                }
            }
        }
    }

    #[test]
    fn component_areas_sum_to_mask_count(m in arb_mask()) {
        let comps = connected_components(&m, 1);
        let total: usize = comps.iter().map(|c| c.area).sum();
        prop_assert_eq!(total, m.count());
    }

    #[test]
    fn component_bounding_boxes_contain_area(m in arb_mask()) {
        for c in connected_components(&m, 1) {
            prop_assert!(c.area <= c.width() * c.height());
            prop_assert!(c.min_x <= c.max_x && c.min_y <= c.max_y);
            prop_assert!(c.max_x < m.width() && c.max_y < m.height());
        }
    }

    #[test]
    fn frame_difference_is_symmetric(a in arb_frame()) {
        let b = GrayFrame::from_pixels(
            a.width(), a.height(),
            a.pixels().iter().map(|&p| p.wrapping_add(40)).collect(),
        );
        prop_assert_eq!(
            frame_difference(&a, &b, 20.0).count(),
            frame_difference(&b, &a, 20.0).count()
        );
    }

    #[test]
    fn segment_buffer_never_emits_short_segments(
        capacity in 1usize..12,
        pushes in 0usize..30,
    ) {
        // The classifier must never see a clip shorter than the
        // configured segment length: `as_clip` is `None` until exactly
        // `capacity` frames arrived, and full-length forever after.
        let mut buf = SegmentBuffer::new(capacity);
        for i in 0..pushes {
            prop_assert_eq!(buf.len(), i.min(capacity));
            match buf.as_clip() {
                Some(clip) => {
                    prop_assert!(i >= capacity, "clip emitted after only {i} frames");
                    prop_assert_eq!(clip.dims(), &[1, capacity, 2, 2]);
                }
                None => prop_assert!(i < capacity, "full buffer emitted nothing"),
            }
            buf.push(Tensor::full(&[2, 2], i as f32));
        }
        // After the stream: the buffer slides, keeping the newest frames.
        if pushes >= capacity {
            let clip = buf.as_clip().expect("buffer is full");
            prop_assert_eq!(clip.dims(), &[1, capacity, 2, 2]);
            // Oldest retained frame is `pushes - capacity`.
            prop_assert_eq!(clip.at(&[0, 0, 0, 0]), (pushes - capacity) as f32);
            prop_assert_eq!(clip.at(&[0, capacity - 1, 0, 0]), (pushes - 1) as f32);
        } else {
            prop_assert!(buf.as_clip().is_none());
        }
    }

    #[test]
    fn grid_values_are_densities(m in arb_mask()) {
        let grid = GridMapper::new(3, 3).map(&m);
        prop_assert!(grid.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Empty mask -> zero grid; full mask -> all-ones grid.
        if m.count() == 0 {
            prop_assert_eq!(grid.sum(), 0.0);
        }
        if m.count() == m.width() * m.height() {
            prop_assert!(grid.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
        }
    }
}
