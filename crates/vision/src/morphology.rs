//! Mathematical morphology on binary masks.

use crate::BinaryFrame;

/// Erosion with a square structuring element of `radius` (so the window is
/// `(2r+1) x (2r+1)`). A bit survives only if its whole window is set;
/// pixels whose window leaves the frame are cleared.
///
/// ```
/// use safecross_vision::{erode, BinaryFrame};
///
/// let mut m = BinaryFrame::new(5, 5);
/// m.put(2, 2, true); // isolated noise pixel
/// assert_eq!(erode(&m, 1).count(), 0);
/// ```
pub fn erode(mask: &BinaryFrame, radius: usize) -> BinaryFrame {
    if radius == 0 {
        return mask.clone();
    }
    let (w, h) = (mask.width(), mask.height());
    let mut out = BinaryFrame::new(w, h);
    let r = radius as isize;
    for y in 0..h as isize {
        'pix: for x in 0..w as isize {
            for dy in -r..=r {
                for dx in -r..=r {
                    let (nx, ny) = (x + dx, y + dy);
                    if nx < 0 || ny < 0 || nx >= w as isize || ny >= h as isize {
                        continue 'pix; // border treated as background
                    }
                    if !mask.get(nx as usize, ny as usize) {
                        continue 'pix;
                    }
                }
            }
            out.put(x as usize, y as usize, true);
        }
    }
    out
}

/// Dilation with a square structuring element of `radius`: a bit is set if
/// any bit in its window is set.
pub fn dilate(mask: &BinaryFrame, radius: usize) -> BinaryFrame {
    if radius == 0 {
        return mask.clone();
    }
    let (w, h) = (mask.width(), mask.height());
    let mut out = BinaryFrame::new(w, h);
    let r = radius as isize;
    for y in 0..h as isize {
        for x in 0..w as isize {
            if !mask.get(x as usize, y as usize) {
                continue;
            }
            for dy in -r..=r {
                for dx in -r..=r {
                    let (nx, ny) = (x + dx, y + dy);
                    if nx >= 0 && ny >= 0 && nx < w as isize && ny < h as isize {
                        out.put(nx as usize, ny as usize, true);
                    }
                }
            }
        }
    }
    out
}

/// Morphological opening: erosion followed by dilation.
///
/// This is the paper's noise filter (Sec. III-B): single-pixel camera
/// noise is erased by the erosion and — being gone — cannot be re-grown
/// by the dilation, while large structures (vehicles) survive with their
/// shape approximately restored.
pub fn opening(mask: &BinaryFrame, radius: usize) -> BinaryFrame {
    dilate(&erode(mask, radius), radius)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(w: usize, h: usize, x0: usize, y0: usize, bw: usize, bh: usize) -> BinaryFrame {
        let mut m = BinaryFrame::new(w, h);
        for y in y0..y0 + bh {
            for x in x0..x0 + bw {
                m.put(x, y, true);
            }
        }
        m
    }

    #[test]
    fn erode_shrinks_blocks() {
        let m = block(10, 10, 2, 2, 5, 5);
        let e = erode(&m, 1);
        assert_eq!(e.count(), 9); // 5x5 -> 3x3
        assert!(e.get(4, 4));
        assert!(!e.get(2, 2));
    }

    #[test]
    fn dilate_grows_blocks() {
        let m = block(10, 10, 4, 4, 2, 2);
        let d = dilate(&m, 1);
        assert_eq!(d.count(), 16); // 2x2 -> 4x4
        assert!(d.get(3, 3));
    }

    #[test]
    fn opening_removes_speckle_keeps_structure() {
        let mut m = block(12, 12, 2, 2, 6, 6);
        m.put(10, 10, true); // isolated noise
        m.put(0, 11, true); // more noise
        let o = opening(&m, 1);
        assert!(!o.get(10, 10));
        assert!(!o.get(0, 11));
        // The 6x6 block survives with substantial area.
        assert!(o.density_in(2, 2, 6, 6) > 0.8);
    }

    #[test]
    fn opening_is_idempotent() {
        let m = block(12, 12, 3, 3, 5, 4);
        let once = opening(&m, 1);
        let twice = opening(&once, 1);
        assert_eq!(once, twice);
    }

    #[test]
    fn zero_radius_is_identity() {
        let m = block(6, 6, 1, 1, 3, 3);
        assert_eq!(erode(&m, 0), m);
        assert_eq!(dilate(&m, 0), m);
    }

    #[test]
    fn erosion_dilation_duality_on_full_frame() {
        // Eroding an all-set mask clears only the border ring;
        // dilating it back refills everything.
        let mut m = BinaryFrame::new(6, 6);
        for y in 0..6 {
            for x in 0..6 {
                m.put(x, y, true);
            }
        }
        let e = erode(&m, 1);
        assert_eq!(e.count(), 16); // interior 4x4
        assert_eq!(dilate(&e, 1).count(), 36);
    }
}
