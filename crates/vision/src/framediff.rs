//! Two-frame differencing.

use crate::{BinaryFrame, GrayFrame};

/// Classic frame differencing: marks pixels whose intensity changed by
/// more than `threshold` between two consecutive frames.
///
/// Fast but, as the paper's related-work section notes, it struggles to
/// separate overlapping targets and double-detects fast movers (leading
/// and trailing edges both change). Provided as a baseline.
///
/// ```
/// use safecross_vision::{frame_difference, GrayFrame};
///
/// let a = GrayFrame::filled(3, 3, 50);
/// let mut b = a.clone();
/// b.set(1, 1, 200);
/// let mask = frame_difference(&a, &b, 30.0);
/// assert_eq!(mask.count(), 1);
/// assert!(mask.get(1, 1));
/// ```
///
/// # Panics
///
/// Panics if the frames differ in size or `threshold` is negative.
pub fn frame_difference(prev: &GrayFrame, curr: &GrayFrame, threshold: f32) -> BinaryFrame {
    assert_eq!(prev.width(), curr.width(), "frame width mismatch");
    assert_eq!(prev.height(), curr.height(), "frame height mismatch");
    assert!(threshold >= 0.0, "threshold must be non-negative");
    let mut mask = BinaryFrame::new(curr.width(), curr.height());
    for (i, (&a, &b)) in prev.pixels().iter().zip(curr.pixels()).enumerate() {
        if (a as f32 - b as f32).abs() > threshold {
            mask.put(i % curr.width(), i / curr.width(), true);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_frames_empty_mask() {
        let f = GrayFrame::filled(4, 4, 99);
        assert_eq!(frame_difference(&f, &f, 10.0).count(), 0);
    }

    #[test]
    fn detects_leading_and_trailing_edges() {
        // An object moving from x=1 to x=2 flags both positions.
        let mut a = GrayFrame::filled(4, 1, 0);
        a.set(1, 0, 255);
        let mut b = GrayFrame::filled(4, 1, 0);
        b.set(2, 0, 255);
        let mask = frame_difference(&a, &b, 100.0);
        assert!(mask.get(1, 0));
        assert!(mask.get(2, 0));
        assert_eq!(mask.count(), 2);
    }

    #[test]
    fn threshold_is_exclusive() {
        let a = GrayFrame::filled(2, 1, 100);
        let b = GrayFrame::filled(2, 1, 110);
        assert_eq!(frame_difference(&a, &b, 10.0).count(), 0);
        assert_eq!(frame_difference(&a, &b, 9.0).count(), 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn size_mismatch_panics() {
        frame_difference(&GrayFrame::new(2, 2), &GrayFrame::new(3, 2), 1.0);
    }
}
