//! Dynamic background subtraction.

use crate::{BinaryFrame, GrayFrame};

/// Running-average background subtraction with a dynamic background
/// model, the paper's chosen detection method (Sec. III-B).
///
/// The background is an exponentially weighted moving average of all
/// frames: `B <- (1 - alpha) * B + alpha * F`. A pixel is foreground when
/// `|F - B| > threshold`. Because the background keeps adapting, parked
/// vehicles melt into the background after `~1/alpha` frames — exactly
/// the behaviour the paper relies on to ignore the stationary occluder
/// while tracking vehicles moving through the blind area.
///
/// ```
/// use safecross_vision::{BackgroundSubtractor, GrayFrame};
///
/// let mut bgs = BackgroundSubtractor::new(4, 4, 0.1, 25.0);
/// let frame = GrayFrame::filled(4, 4, 80);
/// let mask = bgs.apply(&frame); // first frame initialises the model
/// assert_eq!(mask.count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct BackgroundSubtractor {
    background: Vec<f32>,
    width: usize,
    height: usize,
    alpha: f32,
    threshold: f32,
    initialised: bool,
}

impl BackgroundSubtractor {
    /// Creates a subtractor for `width x height` frames.
    ///
    /// `alpha` is the background adaptation rate in `(0, 1]`;
    /// `threshold` is the absolute intensity difference that marks
    /// foreground.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero, `alpha` is outside `(0, 1]`, or
    /// `threshold` is negative.
    pub fn new(width: usize, height: usize, alpha: f32, threshold: f32) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(threshold >= 0.0, "threshold must be non-negative");
        BackgroundSubtractor {
            background: vec![0.0; width * height],
            width,
            height,
            alpha,
            threshold,
            initialised: false,
        }
    }

    /// Processes one frame: returns the foreground mask and updates the
    /// background model.
    ///
    /// The first frame initialises the model and yields an empty mask.
    ///
    /// # Panics
    ///
    /// Panics if the frame size differs from the configured size.
    pub fn apply(&mut self, frame: &GrayFrame) -> BinaryFrame {
        assert_eq!(frame.width(), self.width, "frame width mismatch");
        assert_eq!(frame.height(), self.height, "frame height mismatch");
        let mut mask = BinaryFrame::new(self.width, self.height);
        if !self.initialised {
            for (b, &p) in self.background.iter_mut().zip(frame.pixels()) {
                *b = p as f32;
            }
            self.initialised = true;
            return mask;
        }
        for (i, (&p, b)) in frame
            .pixels()
            .iter()
            .zip(self.background.iter_mut())
            .enumerate()
        {
            let diff = (p as f32 - *b).abs();
            if diff > self.threshold {
                mask.put(i % self.width, i / self.width, true);
            }
            *b += self.alpha * (p as f32 - *b);
        }
        mask
    }

    /// A snapshot of the current background estimate.
    pub fn background(&self) -> GrayFrame {
        let pixels = self
            .background
            .iter()
            .map(|&b| b.round().clamp(0.0, 255.0) as u8)
            .collect();
        GrayFrame::from_pixels(self.width, self.height, pixels)
    }

    /// Whether the model has seen at least one frame.
    pub fn is_initialised(&self) -> bool {
        self.initialised
    }

    /// Resets the model (e.g. after a scene change).
    pub fn reset(&mut self) {
        self.initialised = false;
        self.background.iter_mut().for_each(|b| *b = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settle(bgs: &mut BackgroundSubtractor, frame: &GrayFrame, n: usize) {
        for _ in 0..n {
            bgs.apply(frame);
        }
    }

    #[test]
    fn static_scene_produces_empty_mask() {
        let mut bgs = BackgroundSubtractor::new(6, 6, 0.05, 25.0);
        let frame = GrayFrame::filled(6, 6, 120);
        settle(&mut bgs, &frame, 10);
        assert_eq!(bgs.apply(&frame).count(), 0);
    }

    #[test]
    fn moving_object_is_detected() {
        let mut bgs = BackgroundSubtractor::new(6, 6, 0.05, 25.0);
        let empty = GrayFrame::filled(6, 6, 100);
        settle(&mut bgs, &empty, 10);
        let mut with_car = empty.clone();
        with_car.set(2, 3, 240);
        with_car.set(3, 3, 240);
        let mask = bgs.apply(&with_car);
        assert!(mask.get(2, 3) && mask.get(3, 3));
        assert_eq!(mask.count(), 2);
    }

    #[test]
    fn parked_vehicle_fades_into_background() {
        let mut bgs = BackgroundSubtractor::new(4, 4, 0.2, 25.0);
        let empty = GrayFrame::filled(4, 4, 100);
        settle(&mut bgs, &empty, 5);
        let mut parked = empty.clone();
        parked.set(1, 1, 250);
        // Initially detected...
        assert!(bgs.apply(&parked).get(1, 1));
        // ...but after sitting still it becomes background (dynamic model).
        settle(&mut bgs, &parked, 40);
        assert!(!bgs.apply(&parked).get(1, 1));
    }

    #[test]
    fn sub_threshold_noise_ignored() {
        let mut bgs = BackgroundSubtractor::new(4, 4, 0.05, 30.0);
        let base = GrayFrame::filled(4, 4, 100);
        settle(&mut bgs, &base, 10);
        let noisy = GrayFrame::filled(4, 4, 120); // +20 < threshold 30
        assert_eq!(bgs.apply(&noisy).count(), 0);
    }

    #[test]
    fn background_snapshot_tracks_input() {
        let mut bgs = BackgroundSubtractor::new(2, 2, 0.5, 10.0);
        settle(&mut bgs, &GrayFrame::filled(2, 2, 200), 20);
        let bg = bgs.background();
        assert!(bg.pixels().iter().all(|&p| p >= 198));
    }

    #[test]
    fn reset_clears_model() {
        let mut bgs = BackgroundSubtractor::new(2, 2, 0.5, 10.0);
        bgs.apply(&GrayFrame::filled(2, 2, 200));
        assert!(bgs.is_initialised());
        bgs.reset();
        assert!(!bgs.is_initialised());
        // First frame after reset re-initialises silently.
        assert_eq!(bgs.apply(&GrayFrame::filled(2, 2, 10)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn invalid_alpha_panics() {
        BackgroundSubtractor::new(2, 2, 0.0, 10.0);
    }
}
