//! Grayscale and binary frame types.

use std::fmt;

/// A dense 8-bit grayscale image, row-major.
///
/// The camera substrate renders into this type and every detection method
/// consumes it. Coordinates are `(x, y)` with the origin at the top-left,
/// matching the usual image convention.
///
/// ```
/// use safecross_vision::GrayFrame;
///
/// let mut f = GrayFrame::new(4, 3);
/// f.set(1, 2, 200);
/// assert_eq!(f.at(1, 2), 200);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct GrayFrame {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl GrayFrame {
    /// Creates an all-black frame.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        GrayFrame::filled(width, height, 0)
    }

    /// Creates a frame filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        GrayFrame {
            width,
            height,
            pixels: vec![value; width * height],
        }
    }

    /// Wraps an existing pixel buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not `width * height`.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel buffer length mismatch");
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        GrayFrame {
            width,
            height,
            pixels,
        }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel intensity at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn at(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.pixels[y * self.width + x] = value;
    }

    /// Immutable pixel buffer (row-major).
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Mutable pixel buffer (row-major).
    pub fn pixels_mut(&mut self) -> &mut [u8] {
        &mut self.pixels
    }

    /// Mean intensity (useful as a cheap day/weather statistic).
    pub fn mean(&self) -> f32 {
        self.pixels.iter().map(|&p| p as f32).sum::<f32>() / self.pixels.len() as f32
    }

    /// Intensity standard deviation.
    pub fn stddev(&self) -> f32 {
        let m = self.mean();
        let var = self
            .pixels
            .iter()
            .map(|&p| {
                let d = p as f32 - m;
                d * d
            })
            .sum::<f32>()
            / self.pixels.len() as f32;
        var.sqrt()
    }

    /// Nearest-neighbour resampling to a new size.
    ///
    /// # Panics
    ///
    /// Panics if either target dimension is zero.
    pub fn resize(&self, new_width: usize, new_height: usize) -> GrayFrame {
        assert!(new_width > 0 && new_height > 0, "target dimensions must be positive");
        let mut out = GrayFrame::new(new_width, new_height);
        for y in 0..new_height {
            let sy = y * self.height / new_height;
            for x in 0..new_width {
                let sx = x * self.width / new_width;
                out.set(x, y, self.at(sx, sy));
            }
        }
        out
    }

    /// Crops a rectangle; the rectangle is clamped to the frame bounds.
    ///
    /// # Panics
    ///
    /// Panics if the clamped rectangle is empty.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> GrayFrame {
        let x1 = (x0 + w).min(self.width);
        let y1 = (y0 + h).min(self.height);
        assert!(x0 < x1 && y0 < y1, "empty crop region");
        let mut out = GrayFrame::new(x1 - x0, y1 - y0);
        for y in y0..y1 {
            for x in x0..x1 {
                out.set(x - x0, y - y0, self.at(x, y));
            }
        }
        out
    }

    /// Renders the frame as coarse ASCII art (for examples and debugging).
    pub fn to_ascii(&self, max_width: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let scale = (self.width / max_width.max(1)).max(1);
        let mut s = String::new();
        let mut y = 0;
        while y < self.height {
            let mut x = 0;
            while x < self.width {
                let v = self.at(x, y) as usize * (RAMP.len() - 1) / 255;
                s.push(RAMP[v] as char);
                x += scale;
            }
            s.push('\n');
            y += 2 * scale; // characters are ~2x taller than wide
        }
        s
    }
}

impl fmt::Debug for GrayFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GrayFrame({}x{}, mean {:.1})",
            self.width,
            self.height,
            self.mean()
        )
    }
}

/// A dense 1-bit mask, the output of background subtraction and
/// morphology.
#[derive(Clone, PartialEq, Eq)]
pub struct BinaryFrame {
    width: usize,
    height: usize,
    bits: Vec<bool>,
}

impl BinaryFrame {
    /// Creates an all-false mask.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        BinaryFrame {
            width,
            height,
            bits: vec![false; width * height],
        }
    }

    /// Mask width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mask height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Bit at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, x: usize, y: usize) -> bool {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.bits[y * self.width + x]
    }

    /// Sets the bit at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn put(&mut self, x: usize, y: usize, value: bool) {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.bits[y * self.width + x] = value;
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Fraction of set bits in a rectangular region (clamped to bounds).
    pub fn density_in(&self, x0: usize, y0: usize, w: usize, h: usize) -> f32 {
        let x1 = (x0 + w).min(self.width);
        let y1 = (y0 + h).min(self.height);
        if x0 >= x1 || y0 >= y1 {
            return 0.0;
        }
        let mut set = 0usize;
        for y in y0..y1 {
            for x in x0..x1 {
                if self.get(x, y) {
                    set += 1;
                }
            }
        }
        set as f32 / ((x1 - x0) * (y1 - y0)) as f32
    }

    /// Converts to a grayscale frame (255 for set bits).
    pub fn to_gray(&self) -> GrayFrame {
        let pixels = self.bits.iter().map(|&b| if b { 255 } else { 0 }).collect();
        GrayFrame::from_pixels(self.width, self.height, pixels)
    }
}

impl fmt::Debug for BinaryFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BinaryFrame({}x{}, {} set)",
            self.width,
            self.height,
            self.count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_frame_accessors() {
        let mut f = GrayFrame::new(3, 2);
        f.set(2, 1, 77);
        assert_eq!(f.at(2, 1), 77);
        assert_eq!(f.width(), 3);
        assert_eq!(f.height(), 2);
        assert_eq!(f.pixels().len(), 6);
    }

    #[test]
    fn statistics() {
        let f = GrayFrame::from_pixels(2, 1, vec![0, 100]);
        assert_eq!(f.mean(), 50.0);
        assert_eq!(f.stddev(), 50.0);
    }

    #[test]
    fn resize_preserves_constant_frames() {
        let f = GrayFrame::filled(10, 10, 42);
        let r = f.resize(3, 7);
        assert_eq!(r.width(), 3);
        assert_eq!(r.height(), 7);
        assert!(r.pixels().iter().all(|&p| p == 42));
    }

    #[test]
    fn resize_downsamples_structure() {
        let mut f = GrayFrame::new(8, 8);
        // Bright right half.
        for y in 0..8 {
            for x in 4..8 {
                f.set(x, y, 255);
            }
        }
        let r = f.resize(2, 2);
        assert_eq!(r.at(0, 0), 0);
        assert_eq!(r.at(1, 0), 255);
    }

    #[test]
    fn crop_clamps() {
        let f = GrayFrame::filled(5, 5, 9);
        let c = f.crop(3, 3, 10, 10);
        assert_eq!(c.width(), 2);
        assert_eq!(c.height(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        GrayFrame::new(2, 2).at(2, 0);
    }

    #[test]
    fn binary_count_and_density() {
        let mut m = BinaryFrame::new(4, 4);
        m.put(0, 0, true);
        m.put(1, 1, true);
        assert_eq!(m.count(), 2);
        assert_eq!(m.density_in(0, 0, 2, 2), 0.5);
        assert_eq!(m.density_in(2, 2, 2, 2), 0.0);
    }

    #[test]
    fn binary_to_gray() {
        let mut m = BinaryFrame::new(2, 1);
        m.put(1, 0, true);
        let g = m.to_gray();
        assert_eq!(g.pixels(), &[0, 255]);
    }

    #[test]
    fn ascii_rendering_nonempty() {
        let f = GrayFrame::filled(16, 8, 128);
        let art = f.to_ascii(8);
        assert!(art.contains('\n'));
        assert!(!art.trim().is_empty());
    }
}
