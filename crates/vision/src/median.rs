//! Median filtering — the classic salt-and-pepper denoiser, provided as
//! an alternative to morphological opening in the VP pipeline ablations.

use crate::GrayFrame;

/// 3x3 median filter. Border pixels use the median of their in-frame
/// neighbourhood, so the output has the same size as the input.
///
/// ```
/// use safecross_vision::{median_filter, GrayFrame};
///
/// let mut f = GrayFrame::filled(5, 5, 100);
/// f.set(2, 2, 255); // salt noise
/// let clean = median_filter(&f);
/// assert_eq!(clean.at(2, 2), 100);
/// ```
pub fn median_filter(frame: &GrayFrame) -> GrayFrame {
    let (w, h) = (frame.width(), frame.height());
    let mut out = GrayFrame::new(w, h);
    let mut window = [0u8; 9];
    for y in 0..h {
        for x in 0..w {
            let mut n = 0;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let nx = x as i32 + dx;
                    let ny = y as i32 + dy;
                    if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                        window[n] = frame.at(nx as usize, ny as usize);
                        n += 1;
                    }
                }
            }
            window[..n].sort_unstable();
            out.set(x, y, window[n / 2]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_frame_unchanged() {
        let f = GrayFrame::filled(7, 5, 42);
        assert_eq!(median_filter(&f), f);
    }

    #[test]
    fn removes_salt_and_pepper() {
        let mut f = GrayFrame::filled(9, 9, 128);
        f.set(3, 3, 255);
        f.set(6, 6, 0);
        let clean = median_filter(&f);
        assert_eq!(clean.at(3, 3), 128);
        assert_eq!(clean.at(6, 6), 128);
    }

    #[test]
    fn preserves_large_structures() {
        // A 4x4 bright block survives (its interior median is bright).
        let mut f = GrayFrame::filled(10, 10, 20);
        for y in 3..7 {
            for x in 3..7 {
                f.set(x, y, 220);
            }
        }
        let clean = median_filter(&f);
        assert_eq!(clean.at(4, 4), 220);
        assert_eq!(clean.at(5, 5), 220);
    }

    #[test]
    fn edges_are_softened_not_destroyed() {
        // Vertical step edge: the edge survives within one pixel.
        let mut f = GrayFrame::filled(8, 8, 10);
        for y in 0..8 {
            for x in 4..8 {
                f.set(x, y, 200);
            }
        }
        let clean = median_filter(&f);
        assert_eq!(clean.at(1, 4), 10);
        assert_eq!(clean.at(6, 4), 200);
    }

    #[test]
    fn borders_handled_without_panic() {
        let mut f = GrayFrame::filled(3, 3, 50);
        f.set(0, 0, 255);
        let clean = median_filter(&f);
        // Corner neighbourhood has 4 pixels; the median leans background.
        assert!(clean.at(0, 0) <= 60);
    }

    #[test]
    fn output_range_bounded_by_input_range() {
        let mut f = GrayFrame::filled(6, 6, 100);
        f.set(2, 2, 30);
        f.set(4, 4, 180);
        let clean = median_filter(&f);
        for &p in clean.pixels() {
            assert!((30..=180).contains(&p));
        }
    }
}
