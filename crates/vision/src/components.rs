//! Connected-component labelling on binary masks.

use crate::BinaryFrame;

/// A 4-connected foreground region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Bounding-box minimum x.
    pub min_x: usize,
    /// Bounding-box minimum y.
    pub min_y: usize,
    /// Bounding-box maximum x (inclusive).
    pub max_x: usize,
    /// Bounding-box maximum y (inclusive).
    pub max_y: usize,
    /// Number of foreground pixels.
    pub area: usize,
}

impl Component {
    /// Bounding-box width in pixels.
    pub fn width(&self) -> usize {
        self.max_x - self.min_x + 1
    }

    /// Bounding-box height in pixels.
    pub fn height(&self) -> usize {
        self.max_y - self.min_y + 1
    }

    /// Bounding-box centre `(x, y)`.
    pub fn centroid(&self) -> (f32, f32) {
        (
            (self.min_x + self.max_x) as f32 / 2.0,
            (self.min_y + self.max_y) as f32 / 2.0,
        )
    }

    /// Whether the bounding box overlaps a rectangle.
    pub fn intersects_rect(&self, x0: usize, y0: usize, w: usize, h: usize) -> bool {
        if w == 0 || h == 0 {
            return false;
        }
        self.min_x < x0 + w && self.max_x >= x0 && self.min_y < y0 + h && self.max_y >= y0
    }
}

/// Extracts 4-connected components with at least `min_area` pixels, using
/// an iterative flood fill (no recursion, so arbitrarily large blobs are
/// safe). Components are returned in raster order of their first pixel.
///
/// ```
/// use safecross_vision::{connected_components, BinaryFrame};
///
/// let mut m = BinaryFrame::new(6, 6);
/// m.put(1, 1, true);
/// m.put(2, 1, true);
/// m.put(4, 4, true);
/// let comps = connected_components(&m, 2);
/// assert_eq!(comps.len(), 1); // the singleton is below min_area
/// assert_eq!(comps[0].area, 2);
/// ```
pub fn connected_components(mask: &BinaryFrame, min_area: usize) -> Vec<Component> {
    let (w, h) = (mask.width(), mask.height());
    let mut visited = vec![false; w * h];
    let mut out = Vec::new();
    let mut stack = Vec::new();
    for start in 0..w * h {
        if visited[start] || !mask.get(start % w, start / w) {
            continue;
        }
        let mut comp = Component {
            min_x: usize::MAX,
            min_y: usize::MAX,
            max_x: 0,
            max_y: 0,
            area: 0,
        };
        stack.push(start);
        visited[start] = true;
        while let Some(idx) = stack.pop() {
            let (x, y) = (idx % w, idx / w);
            comp.area += 1;
            comp.min_x = comp.min_x.min(x);
            comp.min_y = comp.min_y.min(y);
            comp.max_x = comp.max_x.max(x);
            comp.max_y = comp.max_y.max(y);
            let mut visit = |nx: usize, ny: usize| {
                let nidx = ny * w + nx;
                if !visited[nidx] && mask.get(nx, ny) {
                    visited[nidx] = true;
                    stack.push(nidx);
                }
            };
            if x > 0 {
                visit(x - 1, y);
            }
            if x + 1 < w {
                visit(x + 1, y);
            }
            if y > 0 {
                visit(x, y - 1);
            }
            if y + 1 < h {
                visit(x, y + 1);
            }
        }
        if comp.area >= min_area {
            out.push(comp);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_from(rows: &[&str]) -> BinaryFrame {
        let h = rows.len();
        let w = rows[0].len();
        let mut m = BinaryFrame::new(w, h);
        for (y, row) in rows.iter().enumerate() {
            for (x, c) in row.chars().enumerate() {
                m.put(x, y, c == '#');
            }
        }
        m
    }

    #[test]
    fn two_separate_blobs() {
        let m = mask_from(&["##..", "##..", "...#", "...#"]);
        let comps = connected_components(&m, 1);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].area, 4);
        assert_eq!(comps[1].area, 2);
        assert_eq!(comps[0].centroid(), (0.5, 0.5));
    }

    #[test]
    fn diagonal_pixels_are_separate_under_4_connectivity() {
        let m = mask_from(&["#.", ".#"]);
        assert_eq!(connected_components(&m, 1).len(), 2);
    }

    #[test]
    fn min_area_filters() {
        let m = mask_from(&["#..", "...", "..#"]);
        assert_eq!(connected_components(&m, 2).len(), 0);
        assert_eq!(connected_components(&m, 1).len(), 2);
    }

    #[test]
    fn l_shaped_blob_is_one_component() {
        let m = mask_from(&["#..", "#..", "###"]);
        let comps = connected_components(&m, 1);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].area, 5);
        assert_eq!(comps[0].width(), 3);
        assert_eq!(comps[0].height(), 3);
    }

    #[test]
    fn rect_intersection() {
        let c = Component { min_x: 2, min_y: 2, max_x: 4, max_y: 4, area: 9 };
        assert!(c.intersects_rect(0, 0, 3, 3)); // touches at (2,2)
        assert!(!c.intersects_rect(0, 0, 2, 2));
        assert!(c.intersects_rect(4, 4, 5, 5));
        assert!(!c.intersects_rect(5, 0, 2, 10));
        assert!(!c.intersects_rect(0, 0, 0, 10));
    }

    #[test]
    fn full_frame_single_component() {
        let m = mask_from(&["###", "###"]);
        let comps = connected_components(&m, 1);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].area, 6);
    }
}
