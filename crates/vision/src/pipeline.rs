//! The paper's Fig. 3 video pre-processing (VP) pipeline.
//!
//! Raw frame → dynamic background subtraction → morphological opening →
//! remap onto a coarse 2-D occupancy grid. The grid is what the video
//! classifier trains on: the paper argues that after this reduction the
//! model only has to learn *where moving things are*, not appearance.

use crate::{opening, BackgroundSubtractor, BinaryFrame, GrayFrame};
use safecross_tensor::Tensor;
use safecross_telemetry::{Counter, Histogram, Registry};
use std::collections::VecDeque;

/// Configuration of the VP pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PreprocessConfig {
    /// Background adaptation rate.
    pub bgs_alpha: f32,
    /// Foreground intensity threshold.
    pub bgs_threshold: f32,
    /// Opening structuring-element radius (0 disables morphology — used
    /// by the Table II ablation).
    pub morph_radius: usize,
    /// Occupancy grid width.
    pub grid_width: usize,
    /// Occupancy grid height.
    pub grid_height: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            bgs_alpha: 0.02,
            bgs_threshold: 35.0,
            morph_radius: 1,
            grid_width: 20,
            grid_height: 20,
        }
    }
}

/// Maps a binary foreground mask onto a coarse occupancy grid.
///
/// Each grid cell holds the fraction of its source pixels that are
/// foreground, so the representation stays differentiable-friendly and
/// resolution-independent.
#[derive(Debug, Clone, Copy)]
pub struct GridMapper {
    grid_width: usize,
    grid_height: usize,
}

impl GridMapper {
    /// Creates a mapper producing `grid_width x grid_height` grids.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(grid_width: usize, grid_height: usize) -> Self {
        assert!(grid_width > 0 && grid_height > 0, "grid dimensions must be positive");
        GridMapper {
            grid_width,
            grid_height,
        }
    }

    /// Produces a `[grid_height, grid_width]` occupancy tensor from a
    /// mask.
    pub fn map(&self, mask: &BinaryFrame) -> Tensor {
        let mut grid = Tensor::zeros(&[self.grid_height, self.grid_width]);
        let (w, h) = (mask.width(), mask.height());
        for gy in 0..self.grid_height {
            let y0 = gy * h / self.grid_height;
            let y1 = ((gy + 1) * h / self.grid_height).max(y0 + 1).min(h);
            for gx in 0..self.grid_width {
                let x0 = gx * w / self.grid_width;
                let x1 = ((gx + 1) * w / self.grid_width).max(x0 + 1).min(w);
                let mut set = 0usize;
                for y in y0..y1 {
                    for x in x0..x1 {
                        if mask.get(x, y) {
                            set += 1;
                        }
                    }
                }
                grid.set(&[gy, gx], set as f32 / ((x1 - x0) * (y1 - y0)) as f32);
            }
        }
        grid
    }
}

/// The complete VP pipeline with persistent background state.
///
/// ```
/// use safecross_vision::{GrayFrame, PreprocessConfig, Preprocessor};
///
/// let mut vp = Preprocessor::new(32, 32, PreprocessConfig::default());
/// let grid = vp.process(&GrayFrame::filled(32, 32, 90));
/// assert_eq!(grid.dims(), &[20, 20]);
/// ```
#[derive(Debug, Clone)]
pub struct Preprocessor {
    bgs: BackgroundSubtractor,
    mapper: GridMapper,
    config: PreprocessConfig,
    telemetry: Option<VpTelemetry>,
}

/// Pre-fetched telemetry handles so the per-frame hot path never takes
/// the registry lock.
#[derive(Debug, Clone)]
struct VpTelemetry {
    frames: Counter,
    bgs_ms: Histogram,
    morph_ms: Histogram,
    remap_ms: Histogram,
}

impl Preprocessor {
    /// Creates a pipeline for `width x height` input frames.
    pub fn new(width: usize, height: usize, config: PreprocessConfig) -> Self {
        Preprocessor {
            bgs: BackgroundSubtractor::new(width, height, config.bgs_alpha, config.bgs_threshold),
            mapper: GridMapper::new(config.grid_width, config.grid_height),
            config,
            telemetry: None,
        }
    }

    /// Attaches a telemetry registry: every subsequent frame records
    /// per-stage wall time into the `vp.bgs_ms` / `vp.morph_ms` /
    /// `vp.remap_ms` histograms and counts into `vp.frames`. Timing
    /// never changes the pixel path, so instrumented and uninstrumented
    /// runs produce bit-identical grids.
    pub fn instrument(&mut self, registry: &Registry) {
        self.telemetry = Some(VpTelemetry {
            frames: registry.counter("vp.frames"),
            bgs_ms: registry.histogram("vp.bgs_ms"),
            morph_ms: registry.histogram("vp.morph_ms"),
            remap_ms: registry.histogram("vp.remap_ms"),
        });
    }

    /// Runs the full pipeline on one frame, returning the occupancy grid.
    pub fn process(&mut self, frame: &GrayFrame) -> Tensor {
        self.stages(frame).2
    }

    /// Runs the pipeline, exposing every intermediate stage (the paper's
    /// Fig. 3): raw foreground mask, opened mask, occupancy grid.
    pub fn stages(&mut self, frame: &GrayFrame) -> (BinaryFrame, BinaryFrame, Tensor) {
        match self.telemetry.clone() {
            None => {
                let raw = self.bgs.apply(frame);
                let opened = opening(&raw, self.config.morph_radius);
                let grid = self.mapper.map(&opened);
                (raw, opened, grid)
            }
            Some(tel) => {
                tel.frames.inc();
                let raw = tel.bgs_ms.time(|| self.bgs.apply(frame));
                let opened = tel
                    .morph_ms
                    .time(|| opening(&raw, self.config.morph_radius));
                let grid = tel.remap_ms.time(|| self.mapper.map(&opened));
                (raw, opened, grid)
            }
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PreprocessConfig {
        &self.config
    }

    /// Resets the background model (scene change).
    pub fn reset(&mut self) {
        self.bgs.reset();
    }
}

/// A sliding window that assembles per-frame grids into a
/// `[1, T, H, W]` clip tensor — the classifier's input format.
#[derive(Debug, Clone)]
pub struct SegmentBuffer {
    frames: VecDeque<Tensor>,
    capacity: usize,
}

impl SegmentBuffer {
    /// Creates a buffer holding `capacity` frames (the paper uses 32).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SegmentBuffer {
            frames: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Appends a grid, evicting the oldest frame when full.
    pub fn push(&mut self, grid: Tensor) {
        if self.frames.len() == self.capacity {
            self.frames.pop_front();
        }
        self.frames.push_back(grid);
    }

    /// Number of buffered frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Frames per assembled clip (the `T` of the `[1, T, H, W]` output).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the buffer holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether a full clip is available.
    pub fn is_full(&self) -> bool {
        self.frames.len() == self.capacity
    }

    /// Assembles the clip as `[1, T, H, W]` (channel-leading, ready to be
    /// stacked into a batch), or `None` until the buffer is full.
    pub fn as_clip(&self) -> Option<Tensor> {
        if !self.is_full() {
            return None;
        }
        let parts: Vec<Tensor> = self.frames.iter().cloned().collect();
        let stacked = Tensor::stack(&parts); // [T, H, W]
        let dims = stacked.dims().to_vec();
        Some(stacked.reshape(&[1, dims[0], dims[1], dims[2]]))
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.frames.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_mapper_localises_mass() {
        let mut mask = BinaryFrame::new(20, 20);
        for y in 0..10 {
            for x in 0..10 {
                mask.put(x, y, true); // top-left quadrant fully set
            }
        }
        let grid = GridMapper::new(2, 2).map(&mask);
        assert_eq!(grid.at(&[0, 0]), 1.0);
        assert_eq!(grid.at(&[0, 1]), 0.0);
        assert_eq!(grid.at(&[1, 0]), 0.0);
        assert_eq!(grid.at(&[1, 1]), 0.0);
    }

    #[test]
    fn grid_mapper_handles_non_divisible_sizes() {
        let mut mask = BinaryFrame::new(7, 5);
        mask.put(6, 4, true);
        let grid = GridMapper::new(3, 3).map(&mask);
        assert!(grid.at(&[2, 2]) > 0.0);
        assert!((grid.sum() - grid.at(&[2, 2])).abs() < 1e-6);
    }

    #[test]
    fn preprocessor_detects_motion_in_grid() {
        let mut vp = Preprocessor::new(40, 40, PreprocessConfig::default());
        let empty = GrayFrame::filled(40, 40, 90);
        for _ in 0..10 {
            vp.process(&empty);
        }
        let mut with_car = empty.clone();
        for y in 4..10 {
            for x in 4..12 {
                with_car.set(x, y, 230);
            }
        }
        let (raw, opened, grid) = vp.stages(&with_car);
        assert!(raw.count() >= opened.count());
        assert!(opened.count() > 0);
        // Mass is concentrated in the top-left of the grid.
        let top_left: f32 = (0..6)
            .flat_map(|gy| (0..7).map(move |gx| (gy, gx)))
            .map(|(gy, gx)| grid.at(&[gy, gx]))
            .sum();
        assert!((grid.sum() - top_left).abs() < 1e-6);
    }

    #[test]
    fn morphology_ablation_changes_noise_handling() {
        let noisy_cfg = PreprocessConfig { morph_radius: 0, ..Default::default() };
        let clean_cfg = PreprocessConfig::default();
        let mut vp_noisy = Preprocessor::new(30, 30, noisy_cfg);
        let mut vp_clean = Preprocessor::new(30, 30, clean_cfg);
        let empty = GrayFrame::filled(30, 30, 90);
        for _ in 0..10 {
            vp_noisy.process(&empty);
            vp_clean.process(&empty);
        }
        let mut speckled = empty.clone();
        speckled.set(5, 5, 250); // single-pixel noise
        let g_noisy = vp_noisy.process(&speckled);
        let g_clean = vp_clean.process(&speckled);
        assert!(g_noisy.sum() > 0.0);
        assert_eq!(g_clean.sum(), 0.0);
    }

    /// The safecross staged pipeline moves frames and VP state across
    /// threads; this pins the Send + Sync guarantee at the type level so
    /// a non-thread-safe field can never sneak in unnoticed.
    #[test]
    fn vp_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GrayFrame>();
        assert_send_sync::<BinaryFrame>();
        assert_send_sync::<Preprocessor>();
        assert_send_sync::<SegmentBuffer>();
        assert_send_sync::<GridMapper>();
    }

    #[test]
    fn instrumented_preprocessor_is_bit_identical_to_plain() {
        let registry = Registry::new();
        let mut plain = Preprocessor::new(40, 40, PreprocessConfig::default());
        let mut timed = Preprocessor::new(40, 40, PreprocessConfig::default());
        timed.instrument(&registry);
        for i in 0..12u8 {
            let frame = GrayFrame::filled(40, 40, 80 + i * 3);
            assert_eq!(plain.process(&frame), timed.process(&frame), "frame {i}");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("vp.frames"), Some(12));
        for stage in ["vp.bgs_ms", "vp.morph_ms", "vp.remap_ms"] {
            assert_eq!(snap.histogram(stage).map(|h| h.count), Some(12), "{stage}");
        }
    }

    #[test]
    fn segment_buffer_reports_capacity() {
        let buf = SegmentBuffer::new(7);
        assert_eq!(buf.capacity(), 7);
        assert!(buf.is_empty());
    }

    #[test]
    fn segment_buffer_slides() {
        let mut buf = SegmentBuffer::new(3);
        assert!(buf.as_clip().is_none());
        for i in 0..5 {
            buf.push(Tensor::full(&[2, 2], i as f32));
        }
        assert!(buf.is_full());
        let clip = buf.as_clip().unwrap();
        assert_eq!(clip.dims(), &[1, 3, 2, 2]);
        // Oldest two frames were evicted: values 2, 3, 4 remain.
        assert_eq!(clip.at(&[0, 0, 0, 0]), 2.0);
        assert_eq!(clip.at(&[0, 2, 1, 1]), 4.0);
        buf.clear();
        assert!(buf.is_empty());
    }
}
