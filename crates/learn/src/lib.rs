//! safecross-learn: continual learning for a SafeCross fleet.
//!
//! The paper's few-shot machinery (Sec. III-D) adapts a meta-trained
//! classifier to a new scene *offline*. This crate closes the loop
//! *online*: a fleet keeps serving while a background service watches
//! each intersection for distribution shift, adapts per-intersection
//! challenger checkpoints from the clips the incumbent struggled with,
//! and promotes a challenger only after it beats the incumbent on a
//! held-out shadow canary set.
//!
//! The pipeline, end to end:
//!
//! 1. **Harvest** — the learner rides the serving layer's
//!    [`LearnHook`](safecross_serve::LearnHook) seam: every classified
//!    clip is offered on the shard thread, and clips whose raw
//!    confidence falls below [`LearnConfig::harvest_below`] are copied
//!    into a bounded drop-oldest [`ReplayLane`] (one per stream ×
//!    weather, byte-budgeted — a flooding stream can only evict its own
//!    history). A deterministic hash split holds some clips out for
//!    the canary.
//! 2. **Adapt** — a background trainer thread (scoped to each fleet
//!    run, plus one synchronous pass at run end) drains lanes that
//!    accumulated enough support and runs the paper's inner-loop
//!    adaptation ([`safecross_fewshot::adapt_checkpoint`]) against the
//!    incumbent's stored weights, registering the challenger in the
//!    fleet's content-addressed store — unchanged layer groups
//!    deduplicate against the parent.
//! 3. **Canary & promote** — challenger and incumbent both classify
//!    the lane's held-out clips; a strict mean-confidence win queues a
//!    [`Promotion`](safecross_serve::Promotion), which the owning
//!    shard activates between frames through the switcher's pipelined
//!    swap (so a synthetic OOM rolls back to the incumbent and the
//!    learner retires the challenger). Every attempt is journaled as a
//!    [`PromotionRecord`].
//!
//! Memory stays bounded at both ends: replay lanes drop oldest by byte
//! budget, and the checkpoint store's LRU ceiling
//! ([`ModelRegistry::set_memory_ceiling`](safecross_modelswitch::ModelRegistry::set_memory_ceiling))
//! evicts retired challengers while pins and resident-layout handles
//! protect the base checkpoints and whatever is actively serving.
//!
//! Determinism: the learner owns no RNG — the holdout split and the
//! chaos seam ([`TrainerFaultHook`]) are pure SplitMix64 hashes of
//! (seed, coordinates), and adaptation itself is deterministic SGD.
//! Background-trainer *timing* is the only nondeterminism, and the
//! run-end synchronous pass gives tests a fully deterministic
//! harvest→adapt→promote path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod learner;

pub use buffer::{clip_bytes, ReplayClip, ReplayLane};
pub use learner::{
    ContinualLearner, LearnConfig, LearnStats, PromotionRecord, TrainerFaultHook,
};
