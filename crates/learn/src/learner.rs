//! The continual learner: harvester, background trainer, and the
//! shadow canary promotion gate.

use crate::buffer::{ReplayClip, ReplayLane};
use safecross::classify_with_model;
use safecross_fewshot::adapt_checkpoint;
use safecross_modelswitch::ModelRegistry;
use safecross_serve::{HarvestSample, LearnHook, Promotion, PromotionOutcome};
use safecross_telemetry::{Counter, Registry};
use safecross_tensor::{KernelScratch, Tensor};
use safecross_trafficsim::Weather;
use safecross_videoclass::{SlowFastLite, VideoClassifier};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// SplitMix64 finalizer — the same pure hash the chaos layer schedules
/// faults with. The holdout split is a function of
/// `(seed, stream, seq)`, so which harvested clips land in the canary
/// set is deterministic and independent of harvest arrival order.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain tag separating the holdout split from every other consumer
/// of the fleet seed (chaos schedules use their own tags).
const DOMAIN_HOLDOUT: u64 = 0x0000_401D;

/// Continual-learning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnConfig {
    /// Seed of the holdout split (derive it from the fleet seed so a
    /// recorded run replays byte-for-byte).
    pub seed: u64,
    /// Harvest a clip when its raw verdict confidence falls below this
    /// margin — low-confidence clips are where the incumbent is
    /// struggling and adaptation has signal.
    pub harvest_below: f32,
    /// Byte budget of each (stream, weather) replay lane; oldest clips
    /// are dropped first when a lane overflows.
    pub lane_budget_bytes: usize,
    /// Support clips a lane must accumulate before the trainer adapts.
    pub min_support: usize,
    /// Held-out clips the shadow canary grades challenger and incumbent
    /// on (fewer are used if the lane held fewer).
    pub canary_k: usize,
    /// One harvested clip in `n` is held out for the canary (hash-split
    /// by `(seed, stream, seq)`; must be ≥ 2 so support survives).
    pub holdout_period: u64,
    /// Inner-loop gradient steps of one adaptation (paper Eq. 1).
    pub adapt_steps: usize,
    /// Inner-loop learning rate.
    pub adapt_lr: f32,
    /// A challenger must beat the incumbent's mean canary confidence by
    /// more than this to be promoted — ties and noise-level wins lose.
    pub min_win: f32,
    /// Adaptation attempts allowed per (stream, weather) lane.
    pub max_generations: u32,
    /// Background trainer poll interval between passes.
    pub poll: Duration,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            seed: 0,
            harvest_below: 0.95,
            lane_budget_bytes: 8 << 20,
            min_support: 4,
            canary_k: 4,
            holdout_period: 3,
            adapt_steps: 3,
            adapt_lr: 0.05,
            min_win: 0.0,
            max_generations: 4,
            poll: Duration::from_millis(2),
        }
    }
}

/// Counters the learner maintains (mirrored to `learn.*` telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LearnStats {
    /// Clips copied into replay lanes.
    pub harvested: u64,
    /// Adaptation attempts the trainer ran to completion.
    pub adaptations: u64,
    /// Challengers the shadow canary rejected (no strict win).
    pub canary_rejects: u64,
    /// Challengers queued for promotion after a canary win.
    pub promotions_queued: u64,
    /// Adaptation attempts a [`TrainerFaultHook`] killed mid-flight.
    pub trainer_deaths: u64,
    /// Promotions the owning shard activated.
    pub activated: u64,
    /// Promotions the switcher rejected (OOM) and rolled back.
    pub rolled_back: u64,
    /// Promotions deferred because the stream left the scene.
    pub deferred: u64,
}

/// One journaled promotion attempt — the audit trail of every
/// challenger that won its canary.
#[derive(Debug, Clone, PartialEq)]
pub struct PromotionRecord {
    /// The stream the challenger was adapted for.
    pub stream: usize,
    /// The scene it challenges.
    pub weather: Weather,
    /// The challenger's checkpoint name in the store.
    pub challenger: String,
    /// The incumbent it was adapted from (and graded against).
    pub parent: String,
    /// Challenger's mean canary confidence.
    pub challenger_margin: f32,
    /// Incumbent's mean canary confidence on the same clips.
    pub incumbent_margin: f32,
    /// Held-out clips the canary graded on.
    pub canary_clips: usize,
    /// The lane's adaptation attempt number (1-based).
    pub generation: u32,
    /// How the owning shard's activation fared; `None` while the
    /// promotion is still queued.
    pub outcome: Option<PromotionOutcome>,
}

/// Chaos seam of the background trainer: consulted once per completed
/// adaptation, *after* the challenger checkpoint landed in the store
/// and *before* the canary — the widest window a real trainer crash
/// would leave a half-registered challenger behind in. A `true` return
/// simulates the death: the learner must clean the orphan out of the
/// store and carry on, losing only that attempt's work.
pub trait TrainerFaultHook: Send + Sync {
    /// Whether the trainer dies on this `(stream, weather, attempt)`
    /// adaptation. Implementations should be pure functions of their
    /// arguments (plus a seed) so chaos runs replay.
    fn kill_adaptation(&self, stream: usize, weather: Weather, attempt: u64) -> bool;
}

/// Per-lane learner bookkeeping guarded by the state mutex.
#[derive(Default)]
struct LearnState {
    lanes: HashMap<(usize, Weather), ReplayLane>,
    /// Name of the checkpoint currently serving each lane — the weather
    /// label until a promotion activates, then the challenger.
    bindings: HashMap<(usize, Weather), String>,
    /// Adaptation attempts per lane (names generations uniquely and
    /// enforces `max_generations`).
    generations: HashMap<(usize, Weather), u32>,
    /// Canary winners awaiting activation by their owning shard.
    promotions: VecDeque<Promotion>,
    records: Vec<PromotionRecord>,
    stats: LearnStats,
    /// Global adaptation attempt counter — the deterministic coordinate
    /// handed to the trainer chaos seam.
    attempts: u64,
}

/// `learn.*` telemetry handles.
struct LearnTelemetry {
    harvested: Counter,
    adaptations: Counter,
    canary_rejects: Counter,
    promotions_queued: Counter,
    trainer_deaths: Counter,
    activations: Counter,
    rollbacks: Counter,
    deferred: Counter,
}

impl LearnTelemetry {
    fn new(registry: &Registry) -> Self {
        LearnTelemetry {
            harvested: registry.counter("learn.harvested"),
            adaptations: registry.counter("learn.adaptations"),
            canary_rejects: registry.counter("learn.canary_rejects"),
            promotions_queued: registry.counter("learn.promotions_queued"),
            trainer_deaths: registry.counter("learn.trainer_deaths"),
            activations: registry.counter("learn.activations"),
            rollbacks: registry.counter("learn.rollbacks"),
            deferred: registry.counter("learn.deferred"),
        }
    }
}

/// One drained lane's adaptation work order, computed outside the
/// state lock.
struct LaneTask {
    stream: usize,
    weather: Weather,
    parent: String,
    generation: u32,
    attempt: u64,
    clips: Vec<ReplayClip>,
}

/// The continual-learning service: install it on a
/// [`FleetServer`](safecross_serve::FleetServer) via
/// `set_learn_hook(learner.clone())`.
///
/// Three cooperating parts, all behind the [`LearnHook`] seam:
///
/// 1. **Harvester** ([`LearnHook::observe`]) — runs on the shard
///    threads; copies low-margin clips into bounded per-lane replay
///    buffers (drop-oldest, byte-budgeted, one lane per stream ×
///    weather).
/// 2. **Background trainer** — a thread scoped to each sharded run
///    (plus one synchronous pass at run end, so promotions earned from
///    a run's harvest are queued deterministically before the next
///    run). Drains ready lanes, few-shot-adapts the incumbent on the
///    pseudo-labeled support set (paper Eq. 1 via
///    [`safecross_fewshot::adapt_checkpoint`]), and registers the
///    challenger in the shared store beside its parent — deduplicating
///    every layer group the adaptation left untouched.
/// 3. **Shadow canary** — before queueing a promotion, challenger and
///    incumbent both classify the lane's held-out clips; only a strict
///    win (mean confidence above the incumbent's by more than
///    [`LearnConfig::min_win`]) promotes. Losers are removed from the
///    store on the spot. Activation itself happens on the owning
///    shard through the switcher's pipelined-swap path, so a synthetic
///    OOM rolls back to the incumbent and the learner retires the
///    challenger ([`PromotionOutcome::RolledBack`]).
pub struct ContinualLearner {
    config: LearnConfig,
    store: ModelRegistry,
    /// Architecture templates per weather, used to materialize
    /// incumbents/challengers; weights are always (re)loaded from the
    /// store by name so the learner grades exactly the bits serving
    /// runs.
    templates: HashMap<Weather, SlowFastLite>,
    state: Mutex<LearnState>,
    /// Fast path for [`LearnHook::take_promotions`]: shards poll every
    /// loop iteration, and promotions are rare.
    promo_ready: AtomicUsize,
    stop: AtomicBool,
    trainer: Mutex<Option<JoinHandle<()>>>,
    fault: Mutex<Option<Arc<dyn TrainerFaultHook>>>,
    telemetry: LearnTelemetry,
    me: Weak<ContinualLearner>,
}

impl ContinualLearner {
    /// Builds the learner against a fleet's shared checkpoint store and
    /// telemetry registry. `templates` supplies one architecture
    /// template per weather the learner may adapt (clone the models
    /// registered on the fleet); weights are always resolved from the
    /// store, so the templates' parameter values never matter.
    pub fn new(
        config: LearnConfig,
        store: ModelRegistry,
        templates: HashMap<Weather, SlowFastLite>,
        registry: &Registry,
    ) -> Arc<Self> {
        assert!(config.holdout_period >= 2, "holdout_period must be >= 2");
        Arc::new_cyclic(|me| ContinualLearner {
            config,
            store,
            templates,
            state: Mutex::new(LearnState::default()),
            promo_ready: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            trainer: Mutex::new(None),
            fault: Mutex::new(None),
            telemetry: LearnTelemetry::new(registry),
            me: me.clone(),
        })
    }

    /// Installs the trainer chaos seam (see [`TrainerFaultHook`]).
    pub fn set_fault_hook(&self, hook: Arc<dyn TrainerFaultHook>) {
        *self.fault.lock().expect("fault hook poisoned") = Some(hook);
    }

    /// The learner's configuration.
    pub fn config(&self) -> &LearnConfig {
        &self.config
    }

    /// A snapshot of the learner's counters.
    pub fn stats(&self) -> LearnStats {
        self.state.lock().expect("learner state poisoned").stats
    }

    /// The promotion journal so far (queued, activated, rolled back,
    /// and deferred attempts alike).
    pub fn records(&self) -> Vec<PromotionRecord> {
        self.state
            .lock()
            .expect("learner state poisoned")
            .records
            .clone()
    }

    /// The checkpoint currently bound for a lane — the weather label
    /// until a promotion activates.
    pub fn binding(&self, stream: usize, weather: Weather) -> String {
        self.state
            .lock()
            .expect("learner state poisoned")
            .bindings
            .get(&(stream, weather))
            .cloned()
            .unwrap_or_else(|| weather.label().to_owned())
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, LearnState> {
        self.state.lock().expect("learner state poisoned")
    }

    /// Runs one synchronous training pass: drains every lane that has
    /// accumulated enough support, adapts, canaries, and queues the
    /// winners. Returns how many lanes were attempted. The background
    /// trainer calls this in a loop; tests and offline pipelines can
    /// call it directly for a fully deterministic schedule.
    pub fn train_once(&self) -> usize {
        let min_support = self.config.min_support.max(1);
        let tasks: Vec<LaneTask> = {
            let mut state = self.lock_state();
            let ready: Vec<(usize, Weather)> = state
                .lanes
                .iter()
                .filter(|((stream, weather), lane)| {
                    lane.support_len() >= min_support
                        && lane.holdout_len() >= 1
                        && state
                            .generations
                            .get(&(*stream, *weather))
                            .copied()
                            .unwrap_or(0)
                            < self.config.max_generations
                })
                .map(|(key, _)| *key)
                .collect();
            let mut ready = ready;
            // Deterministic attempt order regardless of hash-map
            // iteration order.
            ready.sort_unstable_by_key(|(stream, weather)| (*stream, weather.label()));
            ready
                .into_iter()
                .map(|(stream, weather)| {
                    let generation = {
                        let g = state.generations.entry((stream, weather)).or_insert(0);
                        *g += 1;
                        *g
                    };
                    state.attempts += 1;
                    let attempt = state.attempts;
                    let parent = state
                        .bindings
                        .get(&(stream, weather))
                        .cloned()
                        .unwrap_or_else(|| weather.label().to_owned());
                    let clips = state
                        .lanes
                        .get_mut(&(stream, weather))
                        .expect("lane listed as ready")
                        .drain();
                    LaneTask {
                        stream,
                        weather,
                        parent,
                        generation,
                        attempt,
                        clips,
                    }
                })
                .collect()
        };
        let attempted = tasks.len();
        for task in tasks {
            self.adapt_lane(task);
        }
        attempted
    }

    /// Materializes the model named `name` for `weather`: architecture
    /// from the template, weights from the store (base weights when the
    /// name is not stored — mirroring the executor's eviction
    /// fallback).
    fn materialize(&self, weather: Weather, name: &str) -> Option<SlowFastLite> {
        let mut model = self.templates.get(&weather)?.clone();
        if let Some(state) = self.store.state_dict(name) {
            model.load_state_dict(&state);
        } else if let Some(state) = self.store.state_dict(weather.label()) {
            model.load_state_dict(&state);
        }
        Some(model)
    }

    /// One lane's full adaptation attempt: support stack → few-shot
    /// adapt → challenger checkpoint → shadow canary → queue or retire.
    fn adapt_lane(&self, task: LaneTask) {
        let Some(incumbent) = self.materialize(task.weather, &task.parent) else {
            return;
        };
        let support: Vec<&ReplayClip> = task.clips.iter().filter(|c| !c.holdout).collect();
        let holdout: Vec<&ReplayClip> = task
            .clips
            .iter()
            .filter(|c| c.holdout)
            .take(self.config.canary_k.max(1))
            .collect();
        if support.is_empty() || holdout.is_empty() {
            return;
        }
        let Some((stacked, labels)) = stack_support(&support) else {
            return;
        };

        let challenger_name = format!(
            "{}#s{}g{}",
            task.weather.label(),
            task.stream,
            task.generation
        );
        let (mut challenger, _manifest) = adapt_checkpoint(
            &incumbent,
            &(stacked, labels),
            self.config.adapt_steps,
            self.config.adapt_lr,
            &self.store,
            &challenger_name,
        );
        {
            let mut state = self.lock_state();
            state.stats.adaptations += 1;
        }
        self.telemetry.adaptations.inc();

        // Trainer chaos seam: a death here strands the challenger
        // checkpoint half-registered — exactly what a crashed trainer
        // process leaves behind. Recovery is the same either way:
        // remove the orphan, count the death, lose only this attempt.
        let fault = self.fault.lock().expect("fault hook poisoned").clone();
        if let Some(hook) = fault {
            if hook.kill_adaptation(task.stream, task.weather, task.attempt) {
                self.store.remove_model(&challenger_name);
                let mut state = self.lock_state();
                state.stats.trainer_deaths += 1;
                drop(state);
                self.telemetry.trainer_deaths.inc();
                return;
            }
        }

        // Shadow canary: both contenders classify the held-out clips;
        // the challenger must strictly beat the incumbent's mean
        // confidence. The holdout clips never fed the adaptation, so
        // the comparison is out-of-sample by construction.
        let mut incumbent = incumbent;
        let challenger_margin = mean_confidence(&mut challenger, &holdout, task.weather);
        let incumbent_margin = mean_confidence(&mut incumbent, &holdout, task.weather);
        if challenger_margin > incumbent_margin + self.config.min_win {
            let mut state = self.lock_state();
            state.records.push(PromotionRecord {
                stream: task.stream,
                weather: task.weather,
                challenger: challenger_name.clone(),
                parent: task.parent,
                challenger_margin,
                incumbent_margin,
                canary_clips: holdout.len(),
                generation: task.generation,
                outcome: None,
            });
            state.promotions.push_back(Promotion {
                stream: task.stream,
                weather: task.weather,
                challenger: challenger_name,
            });
            state.stats.promotions_queued += 1;
            drop(state);
            self.promo_ready.fetch_add(1, Ordering::Release);
            self.telemetry.promotions_queued.inc();
        } else {
            self.store.remove_model(&challenger_name);
            let mut state = self.lock_state();
            state.stats.canary_rejects += 1;
            drop(state);
            self.telemetry.canary_rejects.inc();
        }
    }
}

/// Stacks support clips into the `[S, C, T, H, W]` batch plus
/// pseudo-label vector [`safecross_fewshot::adapt`] expects. Clips
/// whose dims disagree with the first are skipped (a stream's clip
/// geometry is fixed, so this only guards against misuse).
fn stack_support(support: &[&ReplayClip]) -> Option<(Tensor, Vec<usize>)> {
    let first = support.first()?;
    let dims = first.clip.dims();
    let kept: Vec<&ReplayClip> = support.iter().copied().filter(|c| c.clip.dims() == dims).collect();
    let s = kept.len();
    let mut stacked = Tensor::zeros(&[s, dims[0], dims[1], dims[2], dims[3]]);
    let stride = first.clip.len();
    let mut labels = Vec::with_capacity(s);
    for (i, clip) in kept.iter().enumerate() {
        stacked.data_mut()[i * stride..(i + 1) * stride].copy_from_slice(clip.clip.data());
        labels.push(clip.label);
    }
    Some((stacked, labels))
}

/// Mean raw top-1 confidence of `model` over the held-out clips — the
/// canary score. Higher means the model is more certain on exactly the
/// clips the incumbent struggled with.
fn mean_confidence(model: &mut SlowFastLite, clips: &[&ReplayClip], weather: Weather) -> f32 {
    let mut scratch = KernelScratch::new();
    let sum: f32 = clips
        .iter()
        .map(|c| classify_with_model(model, &c.clip, weather, &mut scratch).confidence)
        .sum();
    sum / clips.len() as f32
}

impl LearnHook for ContinualLearner {
    fn on_run_start(&self) {
        self.stop.store(false, Ordering::Release);
        let Some(me) = self.me.upgrade() else { return };
        let poll = self.config.poll;
        let handle = thread::spawn(move || {
            while !me.stop.load(Ordering::Acquire) {
                me.train_once();
                thread::sleep(poll);
            }
        });
        *self.trainer.lock().expect("trainer handle poisoned") = Some(handle);
    }

    fn on_run_end(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.trainer.lock().expect("trainer handle poisoned").take() {
            handle.join().expect("trainer thread panicked");
        }
        // Final synchronous pass: whatever this run harvested is
        // adapted and canaried *now*, so the resulting promotions are
        // queued before the next run's first frame — the deterministic
        // between-runs promotion path.
        self.train_once();
    }

    fn observe(&self, sample: HarvestSample<'_>) {
        if sample.verdict.confidence >= self.config.harvest_below {
            return;
        }
        let holdout = mix(
            self.config.seed ^ DOMAIN_HOLDOUT ^ ((sample.stream as u64) << 32) ^ sample.seq,
        )
        .is_multiple_of(self.config.holdout_period);
        let budget = self.config.lane_budget_bytes;
        let mut state = self.lock_state();
        state
            .lanes
            .entry((sample.stream, sample.weather))
            .or_insert_with(|| ReplayLane::new(budget))
            .push(ReplayClip {
                seq: sample.seq,
                label: sample.verdict.class.index(),
                holdout,
                clip: sample.clip.clone(),
            });
        state.stats.harvested += 1;
        drop(state);
        self.telemetry.harvested.inc();
    }

    fn take_promotions(&self, shard: usize, shard_count: usize) -> Vec<Promotion> {
        if self.promo_ready.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let mut state = self.lock_state();
        let mut taken = Vec::new();
        let mut keep = VecDeque::with_capacity(state.promotions.len());
        while let Some(promo) = state.promotions.pop_front() {
            if promo.stream % shard_count == shard {
                taken.push(promo);
            } else {
                keep.push_back(promo);
            }
        }
        state.promotions = keep;
        if !taken.is_empty() {
            self.promo_ready.fetch_sub(taken.len(), Ordering::Release);
        }
        taken
    }

    fn promotion_result(&self, promotion: &Promotion, outcome: PromotionOutcome) {
        let mut state = self.lock_state();
        if let Some(record) = state
            .records
            .iter_mut()
            .rev()
            .find(|r| r.challenger == promotion.challenger && r.outcome.is_none())
        {
            record.outcome = Some(outcome);
        }
        match outcome {
            PromotionOutcome::Activated => {
                state.bindings.insert(
                    (promotion.stream, promotion.weather),
                    promotion.challenger.clone(),
                );
                state.stats.activated += 1;
                drop(state);
                self.telemetry.activations.inc();
            }
            PromotionOutcome::RolledBack => {
                state.stats.rolled_back += 1;
                drop(state);
                // The switcher already restored the incumbent; the
                // challenger has no user left, so retire its blobs.
                self.store.remove_model(&promotion.challenger);
                self.telemetry.rollbacks.inc();
            }
            PromotionOutcome::Deferred => {
                state.stats.deferred += 1;
                drop(state);
                // The stream left the scene before activation; drop the
                // challenger rather than binding a model the stream is
                // not running. A later harvest round can re-earn it.
                self.store.remove_model(&promotion.challenger);
                self.telemetry.deferred.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safecross::Verdict;
    use safecross_dataset::Class;
    use safecross_tensor::TensorRng;

    fn learner_with(config: LearnConfig) -> Arc<ContinualLearner> {
        let mut rng = TensorRng::seed_from(5);
        let model = SlowFastLite::new(2, &mut rng);
        let store = ModelRegistry::new();
        store.register_model(Weather::Rain.label(), &model.state_groups());
        store.pin_model(Weather::Rain.label());
        let mut templates = HashMap::new();
        templates.insert(Weather::Rain, model);
        ContinualLearner::new(config, store, templates, &Registry::disabled())
    }

    fn sample_clip(rng: &mut TensorRng) -> Tensor {
        rng.uniform(&[1, 32, 20, 20], 0.0, 1.0)
    }

    fn observe_clip(learner: &ContinualLearner, stream: usize, seq: u64, clip: &Tensor, conf: f32) {
        learner.observe(HarvestSample {
            stream,
            weather: Weather::Rain,
            seq,
            verdict: Verdict {
                class: Class::Danger,
                confidence: conf,
                weather: Weather::Rain,
            },
            clip,
        });
    }

    #[test]
    fn confident_clips_are_not_harvested() {
        let learner = learner_with(LearnConfig {
            harvest_below: 0.8,
            ..LearnConfig::default()
        });
        let mut rng = TensorRng::seed_from(6);
        let clip = sample_clip(&mut rng);
        observe_clip(&learner, 0, 0, &clip, 0.99);
        assert_eq!(learner.stats().harvested, 0);
        observe_clip(&learner, 0, 1, &clip, 0.5);
        assert_eq!(learner.stats().harvested, 1);
    }

    #[test]
    fn holdout_split_is_deterministic() {
        let config = LearnConfig::default();
        let hold = |seed: u64, stream: usize, seq: u64| {
            mix(seed ^ DOMAIN_HOLDOUT ^ ((stream as u64) << 32) ^ seq)
                .is_multiple_of(config.holdout_period)
        };
        for seq in 0..200 {
            assert_eq!(hold(3, 1, seq), hold(3, 1, seq));
        }
        // The split actually splits: some in, some out.
        let held = (0..200).filter(|&s| hold(3, 1, s)).count();
        assert!(held > 0 && held < 200, "degenerate holdout split: {held}");
    }

    #[test]
    fn trainer_waits_for_min_support() {
        let learner = learner_with(LearnConfig {
            min_support: 64,
            ..LearnConfig::default()
        });
        let mut rng = TensorRng::seed_from(7);
        for seq in 0..8 {
            let clip = sample_clip(&mut rng);
            observe_clip(&learner, 0, seq, &clip, 0.5);
        }
        assert_eq!(learner.train_once(), 0);
        assert_eq!(learner.stats().adaptations, 0);
    }

    #[test]
    fn adaptation_respects_generation_cap() {
        let learner = learner_with(LearnConfig {
            min_support: 2,
            max_generations: 1,
            min_win: f32::INFINITY, // force canary rejects: attempts still count
            ..LearnConfig::default()
        });
        let mut rng = TensorRng::seed_from(8);
        for round in 0..2u64 {
            for seq in 0..12 {
                let clip = sample_clip(&mut rng);
                observe_clip(&learner, 0, round * 100 + seq, &clip, 0.5);
            }
            learner.train_once();
        }
        let stats = learner.stats();
        assert_eq!(stats.adaptations, 1, "generation cap ignored");
        assert_eq!(stats.canary_rejects, 1);
        // Rejected challengers never linger in the store.
        assert_eq!(learner.store.model_count(), 1);
    }

    #[test]
    fn rolled_back_promotions_retire_the_challenger() {
        let learner = learner_with(LearnConfig {
            min_support: 2,
            min_win: -1.0, // any margin wins: force a queued promotion
            ..LearnConfig::default()
        });
        let mut rng = TensorRng::seed_from(9);
        for seq in 0..12 {
            let clip = sample_clip(&mut rng);
            observe_clip(&learner, 0, seq, &clip, 0.5);
        }
        learner.train_once();
        assert_eq!(learner.stats().promotions_queued, 1);
        let promos = learner.take_promotions(0, 1);
        assert_eq!(promos.len(), 1);
        assert!(learner.store.contains(&promos[0].challenger));
        // The trainer calibrates every challenger for int8 serving as
        // part of registration, and retiring it retires the sidecar.
        assert!(learner.store.has_quantized(&promos[0].challenger));
        assert!(learner.store.quantized_bytes() > 0);
        learner.promotion_result(&promos[0], PromotionOutcome::RolledBack);
        assert!(!learner.store.contains(&promos[0].challenger));
        assert!(!learner.store.has_quantized(&promos[0].challenger));
        assert_eq!(learner.binding(0, Weather::Rain), Weather::Rain.label());
        let records = learner.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].outcome, Some(PromotionOutcome::RolledBack));
    }

    #[test]
    fn take_promotions_routes_by_owning_shard() {
        let learner = learner_with(LearnConfig {
            min_support: 2,
            min_win: -1.0,
            ..LearnConfig::default()
        });
        let mut rng = TensorRng::seed_from(10);
        for stream in 0..2usize {
            for seq in 0..12 {
                let clip = sample_clip(&mut rng);
                observe_clip(&learner, stream, seq, &clip, 0.5);
            }
        }
        learner.train_once();
        assert_eq!(learner.stats().promotions_queued, 2);
        let shard0 = learner.take_promotions(0, 2);
        let shard1 = learner.take_promotions(1, 2);
        assert_eq!(shard0.len(), 1);
        assert_eq!(shard1.len(), 1);
        assert_eq!(shard0[0].stream % 2, 0);
        assert_eq!(shard1[0].stream % 2, 1);
        assert!(learner.take_promotions(0, 2).is_empty());
    }

    #[test]
    fn trainer_death_cleans_the_orphan_checkpoint() {
        struct AlwaysKill;
        impl TrainerFaultHook for AlwaysKill {
            fn kill_adaptation(&self, _: usize, _: Weather, _: u64) -> bool {
                true
            }
        }
        let learner = learner_with(LearnConfig {
            min_support: 2,
            min_win: -1.0,
            ..LearnConfig::default()
        });
        learner.set_fault_hook(Arc::new(AlwaysKill));
        let mut rng = TensorRng::seed_from(11);
        for seq in 0..12 {
            let clip = sample_clip(&mut rng);
            observe_clip(&learner, 0, seq, &clip, 0.5);
        }
        learner.train_once();
        let stats = learner.stats();
        assert_eq!(stats.trainer_deaths, 1);
        assert_eq!(stats.promotions_queued, 0);
        // Only the pinned base checkpoint survives, and the store's
        // accounting balances.
        assert_eq!(learner.store.model_count(), 1);
        assert_eq!(
            learner.store.logical_bytes(),
            learner.store.stored_bytes() + learner.store.dedup_bytes()
        );
    }
}
