//! Bounded replay buffers for harvested clips.
//!
//! One [`ReplayLane`] holds the hard clips harvested from a single
//! (stream, weather) pair: a byte-budgeted drop-oldest ring. Harvesting
//! is unbounded over a fleet's lifetime, so the lane must bound memory
//! structurally — when a push would exceed the budget, the *oldest*
//! clips are evicted first (the newest evidence of a distribution shift
//! is always the most valuable).
//!
//! Lanes are deliberately dumb: no locking, no cross-lane state. The
//! learner keys a map by `(stream, weather)`, so one flooding stream
//! can only ever evict its own history — per-stream isolation is
//! structural, mirroring the serving layer's admission queues.

use safecross_tensor::Tensor;
use std::collections::VecDeque;

/// Bytes a clip occupies in a lane (its `f32` payload; the few words of
/// metadata around it are noise at clip sizes).
pub fn clip_bytes(clip: &Tensor) -> usize {
    clip.len() * std::mem::size_of::<f32>()
}

/// One harvested clip: the tensor, its pseudo-label (the raw verdict's
/// class — self-training uses the incumbent's own predictions), and
/// whether the holdout split reserved it for canary evaluation.
#[derive(Debug, Clone)]
pub struct ReplayClip {
    /// Per-stream completion sequence number of the source frame.
    pub seq: u64,
    /// Pseudo-label: the class index the incumbent predicted.
    pub label: usize,
    /// Reserved for the canary holdout set — never used as adaptation
    /// support, so the canary never grades the challenger on clips it
    /// trained on.
    pub holdout: bool,
    /// The `[C, T, H, W]` occupancy clip.
    pub clip: Tensor,
}

/// A byte-budgeted drop-oldest buffer of harvested clips for one
/// (stream, weather) lane.
#[derive(Debug)]
pub struct ReplayLane {
    budget: usize,
    bytes: usize,
    dropped: u64,
    clips: VecDeque<ReplayClip>,
}

impl ReplayLane {
    /// An empty lane with a `budget`-byte ceiling.
    pub fn new(budget: usize) -> Self {
        ReplayLane {
            budget,
            bytes: 0,
            dropped: 0,
            clips: VecDeque::new(),
        }
    }

    /// Appends a clip, evicting from the front until the lane fits its
    /// budget again. The newest clip always survives, even when it
    /// alone exceeds the budget — so `bytes() <= budget()` holds
    /// whenever the lane holds more than one clip.
    pub fn push(&mut self, clip: ReplayClip) {
        self.bytes += clip_bytes(&clip.clip);
        self.clips.push_back(clip);
        while self.bytes > self.budget && self.clips.len() > 1 {
            let evicted = self.clips.pop_front().expect("len > 1");
            self.bytes -= clip_bytes(&evicted.clip);
            self.dropped += 1;
        }
    }

    /// The lane's byte ceiling.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Clips currently held.
    pub fn len(&self) -> usize {
        self.clips.len()
    }

    /// Whether the lane is empty.
    pub fn is_empty(&self) -> bool {
        self.clips.is_empty()
    }

    /// Clips evicted by the drop-oldest policy so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Held clips available as adaptation support (not holdout).
    pub fn support_len(&self) -> usize {
        self.clips.iter().filter(|c| !c.holdout).count()
    }

    /// Held clips reserved for canary evaluation.
    pub fn holdout_len(&self) -> usize {
        self.clips.iter().filter(|c| c.holdout).count()
    }

    /// Iterates the held clips, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &ReplayClip> {
        self.clips.iter()
    }

    /// Takes every held clip (oldest first), leaving the lane empty.
    /// The eviction counter survives — it describes the lane's history,
    /// not its contents.
    pub fn drain(&mut self) -> Vec<ReplayClip> {
        self.bytes = 0;
        self.clips.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clip_of(seq: u64, elems: usize) -> ReplayClip {
        ReplayClip {
            seq,
            label: (seq % 2) as usize,
            holdout: seq.is_multiple_of(3),
            clip: Tensor::full(&[1, 1, 1, elems], seq as f32),
        }
    }

    #[test]
    fn drop_oldest_keeps_the_newest_clips() {
        // Budget fits exactly two 16-element clips.
        let mut lane = ReplayLane::new(2 * 16 * 4);
        for seq in 0..5 {
            lane.push(clip_of(seq, 16));
        }
        assert_eq!(lane.len(), 2);
        assert_eq!(lane.dropped(), 3);
        let seqs: Vec<u64> = lane.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert!(lane.bytes() <= lane.budget());
    }

    #[test]
    fn oversized_clip_survives_alone() {
        let mut lane = ReplayLane::new(8);
        lane.push(clip_of(0, 16));
        lane.push(clip_of(1, 64));
        assert_eq!(lane.len(), 1);
        assert_eq!(lane.iter().next().map(|c| c.seq), Some(1));
    }

    #[test]
    fn drain_empties_but_keeps_history() {
        let mut lane = ReplayLane::new(16 * 4);
        for seq in 0..3 {
            lane.push(clip_of(seq, 16));
        }
        let taken = lane.drain();
        assert_eq!(taken.len(), 1);
        assert!(lane.is_empty());
        assert_eq!(lane.bytes(), 0);
        assert_eq!(lane.dropped(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The lane never exceeds its byte budget (except the documented
        /// single-oversized-clip case), accounting matches the held
        /// clips exactly, order is oldest-first, and pushed = held +
        /// dropped.
        #[test]
        fn lane_is_bounded_and_accounts_exactly(
            budget_clips in 1usize..8,
            pushes in proptest::collection::vec((1usize..48, any::<bool>()), 1..64),
        ) {
            let unit = 16usize; // elements per size step
            let budget = budget_clips * unit * 4;
            let mut lane = ReplayLane::new(budget);
            for (seq, (steps, holdout)) in pushes.iter().enumerate() {
                lane.push(ReplayClip {
                    seq: seq as u64,
                    label: seq % 2,
                    holdout: *holdout,
                    clip: Tensor::zeros(&[1, 1, 1, steps * unit]),
                });
                prop_assert!(
                    lane.bytes() <= lane.budget() || lane.len() == 1,
                    "lane over budget with multiple clips"
                );
            }
            let held: usize = lane.iter().map(|c| clip_bytes(&c.clip)).sum();
            prop_assert!(lane.bytes() == held, "byte accounting drifted");
            prop_assert!(
                lane.len() as u64 + lane.dropped() == pushes.len() as u64,
                "clips neither held nor counted dropped"
            );
            let seqs: Vec<u64> = lane.iter().map(|c| c.seq).collect();
            prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]), "order not oldest-first");
            prop_assert!(lane.support_len() + lane.holdout_len() == lane.len());
        }

        /// Lanes keyed per (stream, weather) are fully isolated: a
        /// flooding lane evicts only its own clips.
        #[test]
        fn lanes_are_isolated_per_stream(
            ops in proptest::collection::vec((0usize..4, 0u8..3, 1usize..8), 1..128),
        ) {
            let unit = 16usize;
            let budget = 3 * unit * 4;
            let mut lanes: HashMap<(usize, u8), ReplayLane> = HashMap::new();
            let mut pushed: HashMap<(usize, u8), u64> = HashMap::new();
            for (seq, (stream, weather, steps)) in ops.iter().enumerate() {
                let key = (*stream, *weather);
                lanes.entry(key).or_insert_with(|| ReplayLane::new(budget)).push(ReplayClip {
                    seq: seq as u64,
                    label: 0,
                    holdout: false,
                    clip: Tensor::zeros(&[1, 1, 1, steps * unit]),
                });
                *pushed.entry(key).or_insert(0) += 1;
            }
            for (key, lane) in &lanes {
                prop_assert!(
                    lane.len() as u64 + lane.dropped() == pushed[key],
                    "lane gained or lost another lane's clips"
                );
                prop_assert!(lane.bytes() <= lane.budget() || lane.len() == 1);
            }
        }
    }
}
