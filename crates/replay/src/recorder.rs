//! Capturing a fleet run into a [`Trace`].
//!
//! The recorder captures *inputs* (frames, arrival times, config, the
//! model seed) as they are fed, and *outputs* (verdicts, switch logs,
//! telemetry events) after the run. It never touches the serving hot
//! path: recording a frame is a clone into a growing log, and output
//! capture reads the fleet's already-public accessors.

use crate::trace::{ModelSpec, RecordedFrame, RecordedOutputs, RecordedSwitch, Trace};
use safecross_serve::{FleetReport, FleetServer, ServeConfig, ServeError, StreamSpec};
use safecross_telemetry::Registry;
use safecross_tensor::TensorRng;
use safecross_videoclass::SlowFastLite;
use safecross_vision::GrayFrame;
use std::time::Duration;

/// Incrementally builds a [`Trace`] while a fleet run is assembled.
#[derive(Debug)]
pub struct TraceRecorder {
    serve: ServeConfig,
    models: ModelSpec,
    streams: Vec<Vec<RecordedFrame>>,
    outputs: RecordedOutputs,
    events_from_seq: u64,
    events: Vec<safecross_telemetry::Event>,
}

impl TraceRecorder {
    /// Starts a recording for a fleet with the given configuration and
    /// model build recipe.
    pub fn new(serve: ServeConfig, models: ModelSpec) -> Self {
        TraceRecorder {
            serve,
            models,
            streams: Vec::new(),
            outputs: RecordedOutputs::default(),
            events_from_seq: 0,
            events: Vec::new(),
        }
    }

    /// Registers one more stream; returns its index in the trace.
    /// Call once per [`FleetServer::open_stream`], in the same order.
    pub fn add_stream(&mut self) -> usize {
        self.streams.push(Vec::new());
        self.streams.len() - 1
    }

    /// Records one input frame for `stream` with its arrival time
    /// (microseconds from run start).
    ///
    /// # Panics
    ///
    /// If `stream` was not registered with [`TraceRecorder::add_stream`].
    pub fn record_frame(&mut self, stream: usize, arrival_us: u64, frame: &GrayFrame) {
        self.streams[stream].push(RecordedFrame {
            arrival_us,
            frame: frame.clone(),
        });
    }

    /// Records a whole pre-rendered feed for `stream`, with arrival
    /// timestamps spaced `interval` apart — the schedule
    /// [`paced_feed`](safecross_serve::paced_feed) would produce.
    pub fn record_feed(&mut self, stream: usize, frames: &[GrayFrame], interval: Duration) {
        let step = interval.as_micros() as u64;
        for (i, frame) in frames.iter().enumerate() {
            self.record_frame(stream, i as u64 * step, frame);
        }
    }

    /// Marks the telemetry sequence number recording starts at, so
    /// [`TraceRecorder::record_journal`] captures only this run's
    /// events. Call just before the run with the journal's next
    /// sequence value (e.g. current `events().len() as u64`).
    pub fn journal_from(&mut self, seq: u64) {
        self.events_from_seq = seq;
    }

    /// Captures the run's outputs — per-stream verdict sequences and
    /// switch logs — from the fleet, bit-exact.
    ///
    /// # Errors
    ///
    /// [`ServeError`] if the fleet has fewer streams than the trace.
    pub fn record_outputs(&mut self, fleet: &FleetServer) -> Result<(), ServeError> {
        if fleet.streams() < self.streams.len() {
            return Err(ServeError::UnknownStream {
                stream: fleet.streams(),
                streams: fleet.streams(),
            });
        }
        self.outputs.verdicts.clear();
        self.outputs.switches.clear();
        let handles = fleet.handles();
        for handle in handles.iter().take(self.streams.len()) {
            self.outputs
                .verdicts
                .push(handle.verdicts(fleet).to_vec());
            let switches = handle.session(fleet).with_switch_log(|log| {
                log.iter()
                    .map(|r| RecordedSwitch {
                        model: r.model.clone(),
                        frame: r.frame,
                        latency_ms: r.latency_ms,
                        setup_ms: r.breakdown.setup_ms,
                        transmit_ms: r.breakdown.transmit_ms,
                        compute_ms: r.breakdown.compute_ms,
                    })
                    .collect()
            });
            self.outputs.switches.push(switches);
        }
        Ok(())
    }

    /// Bridges the telemetry journal into the trace: every event at or
    /// after the sequence set by [`TraceRecorder::journal_from`].
    pub fn record_journal(&mut self, registry: &Registry) {
        self.events = registry.events_since(self.events_from_seq);
    }

    /// Finalises the recording.
    pub fn finish(self) -> Trace {
        Trace {
            serve: self.serve,
            models: self.models,
            streams: self.streams,
            outputs: self.outputs,
            events: self.events,
        }
    }
}

/// Builds the fleet a [`ModelSpec`] describes: one shared `TensorRng`
/// seeded with `spec.seed`, one [`SlowFastLite`] drawn per weather in
/// `spec.weathers` order. This is the workspace-wide model
/// construction convention (`shared_models` in the equivalence tests),
/// so a spec plus a seed reconstructs bit-identical weights.
///
/// # Errors
///
/// Any [`ServeError`] from fleet construction or model registration.
pub fn fleet_from_spec(serve: ServeConfig, spec: &ModelSpec) -> Result<FleetServer, ServeError> {
    let mut fleet = FleetServer::new(serve)?;
    let mut rng = TensorRng::seed_from(spec.seed);
    for &weather in &spec.weathers {
        fleet.register_model(weather, SlowFastLite::new(spec.classes, &mut rng))?;
    }
    Ok(fleet)
}

/// Records a complete reference run in one call: builds a fleet from
/// the configuration and model spec, runs
/// [`FleetServer::run_reference`] over the feeds, and captures inputs,
/// outputs, and the telemetry journal into a finished [`Trace`].
///
/// `interval` is the arrival spacing stamped on every stream's frames
/// (the reference executor is clock-free, so the stamps document the
/// recorded schedule rather than altering results).
///
/// # Errors
///
/// Any [`ServeError`] from fleet construction or the run itself.
pub fn record_reference_run(
    serve: ServeConfig,
    spec: &ModelSpec,
    feeds: Vec<Vec<GrayFrame>>,
    interval: Duration,
) -> Result<(Trace, FleetReport), ServeError> {
    let mut fleet = fleet_from_spec(serve, spec)?;
    let mut recorder = TraceRecorder::new(serve, spec.clone());
    recorder.journal_from(fleet.telemetry().events().len() as u64);
    for feed in &feeds {
        let stream = recorder.add_stream();
        fleet.open_stream(StreamSpec::new())?;
        recorder.record_feed(stream, feed, interval);
    }
    let report = fleet.run_reference(feeds)?;
    recorder.record_outputs(&fleet)?;
    recorder.record_journal(fleet.telemetry());
    Ok((recorder.finish(), report))
}
