//! Replaying a [`Trace`] and checking bit-identity.
//!
//! Replay rebuilds the recorded fleet from the trace's configuration
//! and model seed, feeds the recorded frames through the deterministic
//! reference executor, and compares every verdict and switch-log entry
//! against the recorded outputs **bit-exactly** (`f32`/`f64` values are
//! compared as bits, so an `0.1 + 0.2`-style drift anywhere in the
//! pipeline is caught, not rounded away).

use crate::recorder::fleet_from_spec;
use crate::trace::{RecordedSwitch, Trace};
use safecross::Verdict;
use safecross_serve::{FleetServer, ServeError, StreamSpec};
use std::fmt;

/// Where a replay diverged from the recorded outputs.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// A stream produced a different number of verdicts.
    VerdictCount {
        /// Which stream.
        stream: usize,
        /// Verdicts in the recording.
        recorded: usize,
        /// Verdicts the replay produced.
        replayed: usize,
    },
    /// A verdict differs (class, confidence bits, or weather).
    Verdict {
        /// Which stream.
        stream: usize,
        /// Index in the stream's verdict sequence.
        index: usize,
        /// The recorded verdict.
        recorded: Box<Verdict>,
        /// What the replay produced instead.
        replayed: Box<Verdict>,
    },
    /// A stream produced a different number of switch-log entries.
    SwitchCount {
        /// Which stream.
        stream: usize,
        /// Entries in the recording.
        recorded: usize,
        /// Entries the replay produced.
        replayed: usize,
    },
    /// A switch-log entry differs (model, frame, or latency bits).
    Switch {
        /// Which stream.
        stream: usize,
        /// Index in the stream's switch log.
        index: usize,
        /// The recorded entry.
        recorded: Box<RecordedSwitch>,
        /// What the replay produced instead.
        replayed: Box<RecordedSwitch>,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::VerdictCount { stream, recorded, replayed } => write!(
                f,
                "stream {stream}: {recorded} verdicts recorded, {replayed} replayed"
            ),
            Divergence::Verdict { stream, index, recorded, replayed } => write!(
                f,
                "stream {stream} verdict {index}: recorded {recorded:?}, replayed {replayed:?}"
            ),
            Divergence::SwitchCount { stream, recorded, replayed } => write!(
                f,
                "stream {stream}: {recorded} switches recorded, {replayed} replayed"
            ),
            Divergence::Switch { stream, index, recorded, replayed } => write!(
                f,
                "stream {stream} switch {index}: recorded {recorded:?}, replayed {replayed:?}"
            ),
        }
    }
}

/// Why a replay failed.
#[derive(Debug)]
pub enum ReplayError {
    /// The rebuilt fleet rejected the trace (configuration error).
    Serve(ServeError),
    /// The replay ran but its outputs differ from the recording.
    Diverged(Divergence),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Serve(e) => write!(f, "replay could not run: {e}"),
            ReplayError::Diverged(d) => write!(f, "replay diverged: {d}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Serve(e) => Some(e),
            ReplayError::Diverged(_) => None,
        }
    }
}

impl From<ServeError> for ReplayError {
    fn from(e: ServeError) -> Self {
        ReplayError::Serve(e)
    }
}

/// What a successful replay verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Streams replayed.
    pub streams: usize,
    /// Frames replayed across all streams.
    pub frames: usize,
    /// Verdicts compared bit-exactly.
    pub verdicts_checked: usize,
    /// Switch-log entries compared bit-exactly.
    pub switches_checked: usize,
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replayed {} frames over {} streams: {} verdicts and {} switches bit-identical",
            self.frames, self.streams, self.verdicts_checked, self.switches_checked
        )
    }
}

/// Rebuilds the fleet a trace describes — configuration from the
/// trace, models from the recorded seed, one stream per recorded
/// stream — ready for [`FleetServer::run_reference`].
///
/// # Errors
///
/// Any [`ServeError`] from construction.
pub fn build_fleet(trace: &Trace) -> Result<FleetServer, ServeError> {
    let mut fleet = fleet_from_spec(trace.serve, &trace.models)?;
    for _ in 0..trace.streams.len() {
        fleet.open_stream(StreamSpec::new())?;
    }
    Ok(fleet)
}

fn verdict_bits_equal(a: &Verdict, b: &Verdict) -> bool {
    a.class == b.class
        && a.confidence.to_bits() == b.confidence.to_bits()
        && a.weather == b.weather
}

fn switch_bits_equal(a: &RecordedSwitch, b: &RecordedSwitch) -> bool {
    a.model == b.model
        && a.frame == b.frame
        && a.latency_ms.to_bits() == b.latency_ms.to_bits()
        && a.setup_ms.to_bits() == b.setup_ms.to_bits()
        && a.transmit_ms.to_bits() == b.transmit_ms.to_bits()
        && a.compute_ms.to_bits() == b.compute_ms.to_bits()
}

/// Replays a trace through the reference executor and asserts
/// bit-identity of every verdict and switch-log entry against the
/// recorded outputs.
///
/// # Errors
///
/// [`ReplayError::Serve`] if the fleet cannot be rebuilt or run;
/// [`ReplayError::Diverged`] with the first [`Divergence`] if the
/// replayed outputs are not bit-identical to the recording.
pub fn replay_trace(trace: &Trace) -> Result<ReplayReport, ReplayError> {
    let mut fleet = build_fleet(trace)?;
    let feeds: Vec<Vec<_>> = trace
        .streams
        .iter()
        .map(|s| s.iter().map(|rf| rf.frame.clone()).collect())
        .collect();
    fleet.run_reference(feeds)?;

    let mut verdicts_checked = 0;
    let mut switches_checked = 0;
    let handles = fleet.handles();
    for (stream, handle) in handles.iter().enumerate() {
        let recorded_verdicts = trace
            .outputs
            .verdicts
            .get(stream)
            .map(Vec::as_slice)
            .unwrap_or_default();
        let replayed_verdicts = handle.verdicts(&fleet);
        if recorded_verdicts.len() != replayed_verdicts.len() {
            return Err(ReplayError::Diverged(Divergence::VerdictCount {
                stream,
                recorded: recorded_verdicts.len(),
                replayed: replayed_verdicts.len(),
            }));
        }
        for (index, (rec, rep)) in recorded_verdicts
            .iter()
            .zip(replayed_verdicts.iter())
            .enumerate()
        {
            if !verdict_bits_equal(rec, rep) {
                return Err(ReplayError::Diverged(Divergence::Verdict {
                    stream,
                    index,
                    recorded: Box::new(*rec),
                    replayed: Box::new(*rep),
                }));
            }
            verdicts_checked += 1;
        }

        let recorded_switches = trace
            .outputs
            .switches
            .get(stream)
            .map(Vec::as_slice)
            .unwrap_or_default();
        let replayed_switches: Vec<RecordedSwitch> =
            handle.session(&fleet).with_switch_log(|log| {
                log.iter()
                    .map(|r| RecordedSwitch {
                        model: r.model.clone(),
                        frame: r.frame,
                        latency_ms: r.latency_ms,
                        setup_ms: r.breakdown.setup_ms,
                        transmit_ms: r.breakdown.transmit_ms,
                        compute_ms: r.breakdown.compute_ms,
                    })
                    .collect()
            });
        if recorded_switches.len() != replayed_switches.len() {
            return Err(ReplayError::Diverged(Divergence::SwitchCount {
                stream,
                recorded: recorded_switches.len(),
                replayed: replayed_switches.len(),
            }));
        }
        for (index, (rec, rep)) in recorded_switches
            .iter()
            .zip(replayed_switches.iter())
            .enumerate()
        {
            if !switch_bits_equal(rec, rep) {
                return Err(ReplayError::Diverged(Divergence::Switch {
                    stream,
                    index,
                    recorded: Box::new(rec.clone()),
                    replayed: Box::new(rep.clone()),
                }));
            }
            switches_checked += 1;
        }
    }

    Ok(ReplayReport {
        streams: trace.streams.len(),
        frames: trace.frame_count(),
        verdicts_checked,
        switches_checked,
    })
}
