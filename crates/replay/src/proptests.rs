//! Property tests over the trace format: arbitrary fleet inputs round
//! trip through bytes bit-identically, and corrupted or truncated byte
//! streams come back as typed errors, never panics.

use crate::trace::{ModelSpec, RecordedFrame, RecordedOutputs, RecordedSwitch, Trace};
use proptest::prelude::*;
use safecross::Verdict;
use safecross_dataset::Class;
use safecross_serve::ServeConfig;
use safecross_telemetry::{Event, Value};
use safecross_trafficsim::Weather;
use safecross_vision::GrayFrame;

/// Builds a trace from flat generator output: per-stream frame specs
/// (width/height bounded small to keep cases fast), verdict specs, and
/// one event.
fn trace_from(
    streams: Vec<Vec<(u8, u64)>>,
    dims: (usize, usize),
    verdicts: Vec<Vec<(bool, u32)>>,
    switches: Vec<(String, u64, u64)>,
    event_fields: Vec<(String, u64)>,
) -> Trace {
    let (w, h) = dims;
    let streams: Vec<Vec<RecordedFrame>> = streams
        .into_iter()
        .map(|frames| {
            frames
                .into_iter()
                .map(|(fill, arrival_us)| RecordedFrame {
                    arrival_us,
                    frame: GrayFrame::filled(w, h, fill),
                })
                .collect()
        })
        .collect();
    let n = streams.len();
    let mut outputs = RecordedOutputs {
        verdicts: verdicts
            .into_iter()
            .map(|vs| {
                vs.into_iter()
                    .map(|(danger, conf_bits)| Verdict {
                        class: Class::from_index(usize::from(!danger)),
                        // Any finite f32 bit pattern must survive; use
                        // the raw bits but keep NaN out of PartialEq
                        // comparisons by mapping to a finite value.
                        confidence: {
                            let c = f32::from_bits(conf_bits);
                            if c.is_finite() { c } else { 0.25 }
                        },
                        weather: Weather::ALL[(conf_bits % 3) as usize],
                    })
                    .collect()
            })
            .take(n)
            .collect(),
        switches: Vec::new(),
    };
    outputs.verdicts.resize(n, Vec::new());
    outputs.switches = vec![Vec::new(); n];
    if n > 0 {
        outputs.switches[0] = switches
            .into_iter()
            .map(|(model, frame, bits)| RecordedSwitch {
                model,
                frame,
                latency_ms: f64::from_bits(bits & 0x7FEF_FFFF_FFFF_FFFF),
                setup_ms: 0.125,
                transmit_ms: 3.5,
                compute_ms: f64::from_bits(bits.rotate_left(17) & 0x7FEF_FFFF_FFFF_FFFF),
            })
            .collect();
    }
    Trace {
        serve: ServeConfig::builder().build().expect("default config valid"),
        models: ModelSpec {
            seed: 7,
            classes: 2,
            weathers: Weather::ALL.to_vec(),
        },
        streams,
        outputs,
        events: vec![Event {
            seq: 3,
            name: "soak.iteration".into(),
            fields: event_fields
                .into_iter()
                .map(|(name, v)| (name, Value::U64(v)))
                .collect(),
        }],
    }
}

proptest! {
    #[test]
    fn arbitrary_traces_round_trip_bit_identically(
        streams in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), 0u64..10_000_000), 0..6),
            1..4,
        ),
        w in 1usize..24, h in 1usize..24,
        verdicts in proptest::collection::vec(
            proptest::collection::vec((any::<bool>(), any::<u32>()), 0..5),
            0..4,
        ),
        switches in proptest::collection::vec(
            (any::<u64>(), 0u64..1000, any::<u64>()), 0..4,
        ),
        fields in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..4),
    ) {
        let switches = switches
            .into_iter()
            .map(|(tag, frame, bits)| (format!("model-{}", tag % 1000), frame, bits))
            .collect();
        let fields = fields
            .into_iter()
            .map(|(tag, v)| (format!("field_{}", tag % 100), v))
            .collect();
        let trace = trace_from(streams, (w, h), verdicts, switches, fields);
        let bytes = trace.to_bytes();
        let decoded = Trace::from_bytes(&bytes).expect("own bytes always parse");
        // Bit-identity: re-encoding the decoded trace reproduces the
        // exact byte stream (the format is canonical), and every field
        // that affects replay survives.
        prop_assert_eq!(&decoded.to_bytes(), &bytes);
        prop_assert_eq!(decoded.streams.len(), trace.streams.len());
        for (a, b) in decoded.streams.iter().zip(&trace.streams) {
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(&decoded.outputs, &trace.outputs);
        prop_assert_eq!(&decoded.events, &trace.events);
        prop_assert_eq!(&decoded.models, &trace.models);
    }

    #[test]
    fn corrupting_any_byte_is_a_typed_error_never_a_panic(
        flip_at_frac in 0.0f64..1.0,
        xor in 1u8..255,
    ) {
        let trace = trace_from(
            vec![vec![(17, 0), (40, 1000)], vec![(99, 0)]],
            (8, 6),
            vec![vec![(true, 12345)]],
            vec![("rain".into(), 4, 77)],
            vec![("iter".into(), 9)],
        );
        let mut bytes = trace.to_bytes();
        let at = ((bytes.len() - 1) as f64 * flip_at_frac) as usize;
        bytes[at] ^= xor;
        // Whatever byte was flipped, the reader reports an error —
        // most corruption trips the trailer hash; flips inside the
        // trailer itself or the header surface as other TraceError
        // variants. None of them panic.
        prop_assert!(Trace::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncating_at_any_point_is_a_typed_error(cut_frac in 0.0f64..1.0) {
        let trace = trace_from(
            vec![vec![(1, 0), (2, 50), (3, 100)]],
            (10, 10),
            vec![vec![(false, 777)]],
            vec![],
            vec![],
        );
        let bytes = trace.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(Trace::from_bytes(&bytes[..cut]).is_err());
    }
}
