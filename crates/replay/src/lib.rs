//! safecross-replay: deterministic record/replay and chaos testing for
//! SafeCross fleet runs.
//!
//! The rest of the workspace is built around one invariant: a fleet
//! run's per-stream verdicts and switch logs are **bit-identical** to a
//! standalone sequential run. That makes every fleet run perfectly
//! reproducible from its inputs — and this crate makes the inputs
//! portable:
//!
//! - [`TraceRecorder`] captures a run's full input (per-stream frames
//!   with arrival timestamps, fleet configuration, model seed) plus the
//!   outputs it produced into a [`Trace`], serialised as a compact
//!   versioned binary log with an FNV-1a content-hash trailer
//!   ([`Trace::to_bytes`]). Record at an intersection, replay in CI.
//! - [`replay`](replay_trace) feeds a trace back through the
//!   deterministic reference executor and asserts bit-identity against
//!   the recorded verdicts and switch logs, reporting the first
//!   [`Divergence`] when the code under test has drifted.
//! - [`minimize`] shrinks a failing trace to a (1-)minimal frame subset
//!   with delta debugging, so a multi-minute soak failure becomes a
//!   handful of frames somebody can read.
//! - [`FaultPlan`] and [`chaos_feeds`] inject deterministic,
//!   seed-scheduled faults — worker deaths, forced `switch_to` OOM,
//!   stalled / flooding / clock-skewed streams — behind the fault seams
//!   in `safecross-serve` and `safecross-modelswitch`; [`run_soak`]
//!   drives them for minutes under a memory ceiling.
//!
//! Everything is deterministic by construction: fault schedules are
//! pure hashes of `(seed, site, index)`, the recorder captures seeds
//! rather than weights, and no code path consults ambient entropy or
//! wall-clock time for decisions (`tests/determinism_audit.rs` pins
//! this down).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod minimize;
mod recorder;
mod replayer;
mod trace;

#[cfg(test)]
mod proptests;

pub use chaos::{
    chaos_feeds, run_soak, ChaosConfig, FaultPlan, FeedChaos, SoakConfig, SoakError, SoakReport,
};
pub use minimize::minimize;
pub use recorder::{fleet_from_spec, record_reference_run, TraceRecorder};
pub use replayer::{build_fleet, replay_trace, Divergence, ReplayError, ReplayReport};
pub use trace::{
    ModelSpec, RecordedFrame, RecordedOutputs, RecordedSwitch, Trace, TraceError, TRACE_VERSION,
};
